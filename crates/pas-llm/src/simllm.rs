//! The deterministic simulated chat model.
//!
//! `SimLlm` is the workspace substitute for the paper's main models. Its
//! response to an input is a pure function of `(profile, input text)`:
//!
//! 1. Recover the underlying prompt's latent [`PromptMeta`] through the
//!    shared [`World`] (the analogue of comprehension).
//! 2. Detect which [`Aspect`]s the input text mentions — the original
//!    prompt's explicit constraints *plus whatever a complement appended*.
//! 3. Decide coverage per required aspect: mentioned aspects are honoured
//!    with probability `instruction_following`; unstated ones only with
//!    `spontaneous_coverage`. This gap is the entire mechanism by which
//!    prompt augmentation helps, mirroring the paper's claim.
//! 4. Resolve logic traps: a trap is avoided reliably only when the input
//!    warns about it (Case Study 1).
//! 5. Realize the decision as text using the aspect lexicon, so downstream
//!    judges can score the response from its text alone.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_text::hash::fx_hash_str;
use pas_text::top_keywords;

use crate::chat::ChatModel;
use crate::profile::ModelProfile;
use crate::world::{detect_aspects, Aspect, AspectSet, World};

/// Marker phrase a response contains when its final answer is sound.
/// Judges detect correctness from this text, not from hidden state.
pub const CORRECT_MARKER: &str = "after verifying each premise the conclusion stands";
/// Marker phrase a response contains when it answered hastily/incorrectly.
pub const INCORRECT_MARKER: &str = "on a surface reading one might conclude";
/// One unit of answer polish: a grounded supporting sentence. A response
/// carries between zero and [`POLISH_LEVELS`] of these; judges read the
/// count as overall answer quality (fluency, grounding, coherence) — the
/// stable per-model component a GPT-4 judge perceives beyond checklist
/// coverage.
pub const POLISH_MARKER: &str = "supported by established evidence";
/// Maximum polish units a response carries.
pub const POLISH_LEVELS: usize = 8;
/// Chinese counterpart of [`CORRECT_MARKER`].
pub const CORRECT_MARKER_ZH: &str = "经逐项核实结论成立";
/// Chinese counterpart of [`INCORRECT_MARKER`].
pub const INCORRECT_MARKER_ZH: &str = "表面上看似乎";
/// Chinese counterpart of [`POLISH_MARKER`].
pub const POLISH_MARKER_ZH: &str = "有充分证据支持";

/// A simulated chat model bound to a capability profile and a world.
#[derive(Clone)]
pub struct SimLlm {
    profile: ModelProfile,
    world: Arc<World>,
}

impl SimLlm {
    /// Creates a model from a profile and a shared world.
    pub fn new(profile: ModelProfile, world: Arc<World>) -> Self {
        SimLlm { profile, world }
    }

    /// Convenience constructor by canonical profile name.
    ///
    /// # Panics
    /// Panics when the name has no profile; use
    /// [`ModelProfile::named`] to probe first.
    pub fn named(name: &str, world: Arc<World>) -> Self {
        let profile =
            ModelProfile::named(name).unwrap_or_else(|| panic!("no profile named '{name}'"));
        SimLlm::new(profile, world)
    }

    /// The model's profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn rng_for(&self, input: &str) -> StdRng {
        StdRng::seed_from_u64(fx_hash_str(input) ^ self.profile.seed_salt.rotate_left(17))
    }

    /// Decides which aspects the response will cover.
    fn plan_coverage(
        &self,
        required: AspectSet,
        mentioned: AspectSet,
        rng: &mut StdRng,
    ) -> AspectSet {
        // Instruction overload dilutes compliance: a prompt demanding many
        // things at once gets each of them honoured less reliably (the
        // failure mode over-extended APEs cause, per the paper's critic).
        let dilution = if mentioned.len() > 4 { 4.0 / mentioned.len() as f32 } else { 1.0 };
        let mut covered = AspectSet::EMPTY;
        for a in required.iter() {
            let p = if mentioned.contains(a) {
                self.profile.instruction_following * dilution
            } else {
                self.profile.spontaneous_coverage
            };
            if rng.random::<f32>() < p {
                covered.insert(a);
            }
        }
        // Mentioned-but-unneeded aspects are also (usually) honoured; they
        // lengthen the answer without improving it — the failure mode the
        // critic calls "superfluous additions".
        for a in mentioned.minus(required).iter() {
            if a != Aspect::TrapWarning && rng.random::<f32>() < self.profile.instruction_following
            {
                covered.insert(a);
            }
        }
        covered
    }

    fn realize(
        &self,
        language: pas_text::lang::Language,
        topic: &str,
        covered: AspectSet,
        correct: bool,
        polish: usize,
        rng: &mut StdRng,
    ) -> String {
        use pas_text::lang::Language;
        let mut out = String::new();
        let zh = language == Language::Chinese;
        if zh {
            out.push_str(&format!("关于 {topic} ："));
        } else {
            out.push_str(&format!("Regarding {topic}: "));
        }
        for a in covered.iter() {
            if zh {
                out.push_str(a.coverage_phrase_zh());
                out.push_str(&format!("，围绕 {topic} 展开。"));
            } else {
                out.push_str(a.coverage_phrase());
                out.push_str(&format!(" concerning {topic}. "));
            }
        }
        for _ in 0..polish.min(POLISH_LEVELS) {
            if zh {
                out.push_str(&format!("对 {topic} 的论述{POLISH_MARKER_ZH}。"));
            } else {
                out.push_str(&format!("The treatment of {topic} is {POLISH_MARKER}. "));
            }
        }
        // Filler proportional to verbosity models the model's natural length.
        let filler_sentences = ((covered.len().max(1) as f32)
            * self.profile.verbosity
            * (0.8 + 0.4 * rng.random::<f32>()))
        .round() as usize;
        for i in 0..filler_sentences {
            if zh {
                out.push_str(&format!("补充说明{}进一步展开 {topic} 的细节。", i + 1));
            } else {
                out.push_str(&format!(
                    "Further observation {} expands on {topic} with supporting detail. ",
                    i + 1
                ));
            }
        }
        match (zh, correct) {
            (true, true) => out.push_str(&format!("总之，{CORRECT_MARKER_ZH}，{topic} 如上。")),
            (true, false) => {
                out.push_str(&format!("总之，{INCORRECT_MARKER_ZH}相反，{topic} 如上。"))
            }
            (false, true) => out.push_str(&format!("In conclusion, {CORRECT_MARKER} for {topic}.")),
            (false, false) => out
                .push_str(&format!("In conclusion, {INCORRECT_MARKER} the opposite for {topic}.")),
        }
        out
    }
}

impl ChatModel for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn chat(&self, input: &str) -> String {
        let mut rng = self.rng_for(input);
        let mentioned = detect_aspects(input);
        let meta = self.world.lookup(input);

        let (required, trap, ambiguity, topic, understood, language) = match meta {
            Some(m) => (m.required, m.trap, m.ambiguity, m.topic.clone(), true, m.language),
            None => {
                // Unregistered input — the model never saw this request and
                // can only answer generically: treat the mentioned aspects
                // as the requirement and derive a topic from the text.
                let topic = top_keywords(input, 3).join(" ");
                (
                    mentioned,
                    false,
                    0.5,
                    if topic.is_empty() { "the request".into() } else { topic },
                    false,
                    pas_text::lang::detect_language(input),
                )
            }
        };

        let covered = self.plan_coverage(required, mentioned, &mut rng);

        // Trap resolution: warned models almost always slow down and check;
        // unwarned models fall back on their intrinsic resistance.
        let trap_avoided = !trap
            || if mentioned.contains(Aspect::TrapWarning) {
                rng.random::<f32>() < (self.profile.instruction_following + 0.05).min(0.97)
            } else {
                rng.random::<f32>() < self.profile.trap_resistance
            };

        // Correctness: capability, minus ambiguity that nobody resolved,
        // plus a small bonus when the answer works step by step.
        let ambiguity_penalty =
            if covered.contains(Aspect::Context) { 0.0 } else { 0.25 * ambiguity };
        let step_bonus = if covered.contains(Aspect::StepByStep) { 0.07 } else { 0.0 };
        let mut p_correct =
            (self.profile.capability + step_bonus - ambiguity_penalty).clamp(0.02, 0.98);
        if !understood {
            // A generic answer to a misread request rarely nails the
            // specific question the user actually asked.
            p_correct *= 0.40;
        }
        // Anchoring: an input that already asserts "the answer is …" (a
        // direct-answer APE) tempts the model to echo the supplied answer
        // instead of solving — and such pre-baked answers are usually
        // shallow or wrong for a non-trivial question.
        let canon_input = pas_text::normalize_for_dedup(input);
        if canon_input.contains("the answer is")
            || canon_input.contains("no further analysis is needed")
        {
            p_correct *= 0.45;
        }
        let correct = trap_avoided && rng.random::<f32>() < p_correct;

        // Polish: the stable per-model quality component, lightly jittered.
        let polish_latent =
            (self.profile.capability + (rng.random::<f32>() - 0.5) * 0.10).clamp(0.0, 1.0);
        let polish = (polish_latent * POLISH_LEVELS as f32).round() as usize;

        self.realize(language, &topic, covered, correct, polish, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Category, PromptMeta};
    use pas_text::lang::Language;

    fn world_with(prompt: &str, required: AspectSet, trap: bool) -> Arc<World> {
        let mut w = World::new();
        w.register(
            prompt,
            PromptMeta {
                category: Category::Reasoning,
                required,
                explicit: AspectSet::EMPTY,
                ambiguity: 0.3,
                trap,
                language: Language::English,
                topic: "birds on the tree".into(),
            },
        );
        Arc::new(w)
    }

    const PROMPT: &str =
        "If there are ten birds on a tree and one is shot how many are on the ground";

    #[test]
    fn responses_are_deterministic() {
        let w = world_with(PROMPT, AspectSet::EMPTY, false);
        let m = SimLlm::named("gpt-4-0613", w);
        assert_eq!(m.chat(PROMPT), m.chat(PROMPT));
    }

    #[test]
    fn different_models_differ_on_same_input() {
        let w = world_with(PROMPT, AspectSet::EMPTY, false);
        let a = SimLlm::named("gpt-4-turbo-2024-04-09", Arc::clone(&w));
        let b = SimLlm::named("gpt-3.5-turbo-1106", w);
        assert_ne!(a.chat(PROMPT), b.chat(PROMPT));
    }

    #[test]
    fn trap_warning_in_input_flips_outcomes_in_aggregate() {
        // Across many trap prompts, the warned inputs must produce far more
        // correct answers than unwarned ones for a weak model.
        let mut warned_correct = 0;
        let mut unwarned_correct = 0;
        let n = 200;
        for i in 0..n {
            let prompt = format!("Trap question number {i} about birds on a tree, how many remain");
            let w = world_with(&prompt, AspectSet::EMPTY, true);
            let m = SimLlm::named("gpt-3.5-turbo-1106", w);
            let warned = format!("{prompt}. Watch for the logic trap and hidden assumptions.");
            if m.chat(&warned).contains(CORRECT_MARKER) {
                warned_correct += 1;
            }
            if m.chat(&prompt).contains(CORRECT_MARKER) {
                unwarned_correct += 1;
            }
        }
        assert!(
            warned_correct > unwarned_correct + n / 10,
            "warned {warned_correct} vs unwarned {unwarned_correct}"
        );
    }

    #[test]
    fn mentioned_aspects_get_covered_more_often() {
        let required: AspectSet = [Aspect::Depth, Aspect::Examples].into_iter().collect();
        let mut plain_cov = 0;
        let mut asked_cov = 0;
        for i in 0..200 {
            let prompt = format!("Question {i} about thermal conduction in ancient pottery");
            let w = world_with(&prompt, required, false);
            let m = SimLlm::named("gpt-4-0613", w);
            let asked = format!(
                "{prompt}. Provide a detailed analysis in depth and include concrete examples."
            );
            plain_cov += detect_aspects(&m.chat(&prompt)).intersection(required).len();
            asked_cov += detect_aspects(&m.chat(&asked)).intersection(required).len();
        }
        assert!(
            asked_cov as f64 > plain_cov as f64 * 1.5,
            "asked {asked_cov} vs plain {plain_cov}"
        );
    }

    #[test]
    fn unregistered_input_still_answers() {
        let m = SimLlm::named("gpt-4-0613", Arc::new(World::new()));
        let out = m.chat("Tell me about rust lifetimes please reason step by step");
        assert!(!out.is_empty());
        assert!(out.contains("rust") || out.contains("lifetimes"));
    }

    #[test]
    fn response_mentions_topic() {
        let w = world_with(PROMPT, AspectSet::EMPTY, false);
        let m = SimLlm::named("qwen2-72b-chat", w);
        assert!(m.chat(PROMPT).contains("birds on the tree"));
    }

    #[test]
    fn verbosity_raises_length() {
        // gpt-4-1106 (verbosity 1.15) vs gpt-3.5 (0.75) over many prompts.
        let mut long_total = 0usize;
        let mut short_total = 0usize;
        for i in 0..100 {
            let prompt = format!("Prompt {i} asking for a thorough treatment of soil chemistry");
            let required: AspectSet =
                [Aspect::Depth, Aspect::Completeness, Aspect::Context].into_iter().collect();
            let w = world_with(&prompt, required, false);
            let verbose = SimLlm::named("gpt-4-1106-preview", Arc::clone(&w));
            let terse = SimLlm::named("gpt-3.5-turbo-1106", w);
            long_total += verbose.chat(&prompt).split_whitespace().count();
            short_total += terse.chat(&prompt).split_whitespace().count();
        }
        assert!(long_total > short_total, "{long_total} vs {short_total}");
    }
}

//! Property tests for the cluster's distributed-state machinery.
//!
//! Part 1 — rendezvous-hash placement: load balance stays within a
//! bound, and membership changes disturb only the minimal set of keys.
//!
//! Part 2 — the round-2 replication battery (DESIGN.md §15):
//!
//! (a) *anti-entropy convergence* — after any seeded drop/partition
//!     schedule plus a quiet period, every live candidate replica of a
//!     key holds the identical entry;
//! (b) *write-fanout safety* — versioned inserts are idempotent and
//!     monotone, so a replica never serves a stale version no matter how
//!     replication messages duplicate or reorder;
//! (c) *gossip view convergence* — all live nodes' membership views
//!     agree with each other and with ground truth after heartbeat
//!     quiescence, and the detector never falsely kills a live reachable
//!     node;
//! (d) *in-band rebalance equivalence* — final cache contents are
//!     byte-identical whether a hand-off raced traffic through a chaotic
//!     transfer lane or ran clean and instant.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_cluster::{fleet_workloads, hrw, Cluster, ClusterConfig, Membership, NodeStatus};
use pas_core::PromptOptimizer;
use pas_fault::{FaultProfile, MsgLane, NetFaultProfile};
use pas_gateway::{
    cache_embedder, GatewayConfig, Request, SemanticCache, SemanticCacheConfig, WorkloadConfig,
};

fn keys(n: usize, salt: u64) -> Vec<String> {
    (0..n).map(|i| format!("prompt {salt}-{i} about topic {}", i % 17)).collect()
}

/// A toy deterministic optimizer: response is a pure function of the
/// prompt, so any two correct serves of one prompt agree byte-for-byte.
#[derive(Clone)]
struct Suffix;

impl PromptOptimizer for Suffix {
    fn name(&self) -> &str {
        "suffix"
    }
    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} [augmented]")
    }
    fn requires_human_labels(&self) -> bool {
        false
    }
    fn llm_agnostic(&self) -> bool {
        true
    }
    fn task_agnostic(&self) -> bool {
        true
    }
}

fn quiet_gateway() -> GatewayConfig {
    let mut g = GatewayConfig::default();
    g.fault.profile = FaultProfile::none();
    g
}

fn workloads_for(nodes: usize, per_node: usize, seed: u64) -> Vec<Vec<Request>> {
    let base =
        WorkloadConfig { requests: per_node, universe: 40, seed, ..WorkloadConfig::default() };
    fleet_workloads(&base, nodes)
}

fn traffic_end(workloads: &[Vec<Request>]) -> u64 {
    workloads.iter().flat_map(|w| w.iter().map(|r| r.arrival_ms)).max().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Across 1–16 nodes, no node owns more than ~3x its fair share of a
    // reasonably large key set (HRW balance is binomial around the
    // mean; 3x is a comfortable bound at 600 keys).
    #[test]
    fn load_stays_within_bound(nodes in 1usize..=16, salt in 0u64..1000) {
        let live: Vec<u32> = (0..nodes as u32).collect();
        let keys = keys(600, salt);
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for k in &keys {
            *counts.entry(hrw::owner(k, &live).unwrap()).or_default() += 1;
        }
        let fair = keys.len() as f64 / nodes as f64;
        for (&node, &count) in &counts {
            prop_assert!(
                (count as f64) <= fair * 3.0,
                "node {} owns {} of {} keys (fair share {:.1})",
                node, count, keys.len(), fair
            );
        }
    }

    // A join only inserts the joiner into candidate lists: every key
    // either keeps its exact candidate list, or gains the joiner while
    // preserving the relative order of all incumbents. Keys that change
    // owner change it *to the joiner* only.
    #[test]
    fn join_disturbs_only_keys_the_joiner_wins(nodes in 2usize..=12, salt in 0u64..1000) {
        let joiner = nodes as u32; // a node id not yet in the set
        let before: Vec<u32> = (0..nodes as u32).collect();
        let mut after = before.clone();
        after.push(joiner);
        for k in &keys(300, salt) {
            let old = hrw::candidates(k, &before, 3);
            let new = hrw::candidates(k, &after, 3);
            // Incumbent relative order is preserved: `new` minus the
            // joiner is a prefix of `old`.
            let survivors: Vec<u32> = new.iter().copied().filter(|&n| n != joiner).collect();
            prop_assert_eq!(&old[..survivors.len()], &survivors[..]);
            let (old_owner, new_owner) =
                (hrw::owner(k, &before).unwrap(), hrw::owner(k, &after).unwrap());
            prop_assert!(
                new_owner == old_owner || new_owner == joiner,
                "ownership may move only to the joiner (was {}, now {})",
                old_owner, new_owner
            );
        }
    }

    // A leave only reassigns the leaver's keys: every key the leaver did
    // not own keeps its owner, and the survivors' relative candidate
    // order never changes.
    #[test]
    fn leave_reassigns_only_the_leavers_keys(
        nodes in 2usize..=12,
        leaver_ix in 0usize..12,
        salt in 0u64..1000,
    ) {
        let before: Vec<u32> = (0..nodes as u32).collect();
        let leaver = before[leaver_ix % nodes];
        let after: Vec<u32> = before.iter().copied().filter(|&n| n != leaver).collect();
        for k in &keys(300, salt) {
            let old = hrw::candidates(k, &before, 3);
            let new = hrw::candidates(k, &after, 3);
            // Survivor relative order is preserved.
            let survivors: Vec<u32> = old.iter().copied().filter(|&n| n != leaver).collect();
            prop_assert_eq!(&new[..survivors.len().min(new.len())], &survivors[..survivors.len().min(new.len())]);
            let old_owner = hrw::owner(k, &before).unwrap();
            if old_owner != leaver {
                prop_assert_eq!(hrw::owner(k, &after), Some(old_owner));
            } else {
                // The leaver's keys go to its runner-up.
                prop_assert_eq!(hrw::owner(k, &after), old.iter().copied().find(|&n| n != leaver).or(after.first().copied()));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Round-2 battery: replication, anti-entropy, gossip, in-band rebalance.
// Fleet soaks are heavier than pure HRW math, so these blocks run fewer
// cases; every case is still fully deterministic given its inputs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // (a) Anti-entropy convergence: under replication-lane drops, serve
    // drops, a mid-traffic partition, and optionally a hard crash, a
    // quiet period of AE rotations leaves every live candidate replica
    // of every candidate-held key holding the identical entry.
    #[test]
    fn anti_entropy_converges_candidate_replicas(
        nodes in 3usize..=5,
        seed in 0u64..500,
        net_seed in 0u64..500,
        repl_drop in 0.0f32..0.6,
        serve_drop in 0.0f32..0.25,
        island in 0u32..5,
        crash_sel in 0u32..2,
    ) {
        let island = island % nodes as u32;
        let crash_one = crash_sel == 1;
        let workloads = workloads_for(nodes, 70, seed);
        let t_end = traffic_end(&workloads);
        let ae = 15u64;
        let mut cfg = ClusterConfig {
            nodes,
            replication: 2,
            gateway: quiet_gateway(),
            // The AE and transfer lanes stay clean so convergence is
            // guaranteed by rotation, not luck; chaos hits the fanout
            // and serve lanes plus a partition inside the traffic window.
            net: NetFaultProfile::none()
                .with_partition(t_end / 4, t_end / 2, vec![island])
                .with_lane(MsgLane::Replicate, repl_drop, 0.1)
                .with_lane(MsgLane::Serve, serve_drop, 0.0),
            net_seed: 0x4e72 ^ net_seed,
            ae_interval_ms: ae,
            quiet_ms: ae * (nodes as u64 * 4 + 4),
            ..ClusterConfig::default()
        };
        if crash_one {
            let victim = (island + 1) % nodes as u32;
            cfg.script = vec![(t_end / 2, Membership::Crash(victim))];
        }
        let mut cluster = Cluster::new(cfg, |_, _| Suffix);
        let (_, report) = cluster.run(&workloads);
        prop_assert_eq!(report.errors(), 0, "chaos must never lose a request");
        prop_assert!(report.ae_digests > 0, "sweeps must actually run");

        let live: Vec<u32> = (0..nodes as u32).filter(|&n| cluster.is_live(n)).collect();
        let mut held: BTreeMap<String, BTreeMap<u32, (String, u64)>> = BTreeMap::new();
        for &n in &live {
            for (p, r, v) in cluster.cache_entries(n) {
                held.entry(p).or_default().insert(n, (r, v));
            }
        }
        for (prompt, holders) in &held {
            let cands = hrw::candidates(prompt, &live, 2);
            let holding: Vec<u32> =
                cands.iter().copied().filter(|c| holders.contains_key(c)).collect();
            if holding.is_empty() {
                continue; // only stale non-candidate donors hold it
            }
            prop_assert_eq!(
                &holding, &cands,
                "every live candidate must hold {:?} once any does", prompt
            );
            let copies: BTreeSet<&(String, u64)> =
                cands.iter().map(|c| &holders[c]).collect();
            prop_assert_eq!(copies.len(), 1, "replica copies of {:?} must be identical", prompt);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // (b) Write-fanout safety: applying any multiset of versioned
    // replication messages — duplicated wholesale and arbitrarily
    // reordered — produces the same digest as the clean stream, and the
    // served copy is always the highest version seen, never a stale one.
    #[test]
    fn versioned_inserts_are_idempotent_and_monotone(
        raw_ops in proptest::collection::vec(0u64..1000, 1..40),
        perm_seed in 0u64..1000,
    ) {
        // The vendored proptest has no tuple strategies; derive the
        // (key, version) pair from one raw draw instead.
        let ops: Vec<(usize, u64)> =
            raw_ops.iter().map(|&r| ((r % 6) as usize, 1 + (r / 7) % 4)).collect();
        let cfg = SemanticCacheConfig::default();
        let mut clean = SemanticCache::new(cfg.clone(), cache_embedder(&cfg));
        let mut chaotic = SemanticCache::new(cfg.clone(), cache_embedder(&cfg));

        let msgs: Vec<(String, String, u64)> = ops
            .iter()
            .map(|&(k, v)| (format!("prompt {k}"), format!("resp {k} v{v}"), v))
            .collect();
        let mut highest: BTreeMap<String, u64> = BTreeMap::new();
        for (p, r, v) in &msgs {
            let applied = clean.insert_versioned(p, r, *v);
            let best = highest.entry(p.clone()).or_insert(0);
            prop_assert_eq!(applied, *v > *best, "apply iff strictly newer");
            *best = (*best).max(*v);
            // Monotone: the served version never regresses below the max.
            prop_assert_eq!(clean.version_of(p), Some(*best));
        }

        // The chaotic replica sees every message twice, shuffled.
        let mut storm: Vec<(String, String, u64)> =
            msgs.iter().cloned().chain(msgs.iter().cloned()).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in 0..storm.len() {
            let j = i + rng.random_range(0..storm.len() - i);
            storm.swap(i, j);
        }
        for (p, r, v) in &storm {
            chaotic.insert_versioned(p, r, *v);
        }

        prop_assert_eq!(clean.digest(), chaotic.digest(), "digests must converge");
        for (p, best) in &highest {
            let want = Some((format!("resp {} v{best}", &p["prompt ".len()..]), *best));
            prop_assert_eq!(
                clean.peek(p).map(|(r, v)| (r.to_string(), v)),
                want.clone(),
                "clean replica serves the max version"
            );
            prop_assert_eq!(
                chaotic.peek(p).map(|(r, v)| (r.to_string(), v)),
                want,
                "chaotic replica never serves a stale version"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // (c) Gossip view convergence: after heartbeat quiescence every live
    // node's membership view agrees with every other's and with scripted
    // ground truth — leavers and crashers are Dead everywhere, survivors
    // Alive everywhere — and the detector never falsely kills a live,
    // reachable node (drops only delay convergence, they cannot corrupt
    // it).
    #[test]
    fn gossip_views_converge_after_quiescence(
        nodes in 3usize..=5,
        seed in 0u64..500,
        net_seed in 0u64..500,
        gossip_drop in 0.0f32..0.2,
        churn in 0usize..3,
    ) {
        let workloads = workloads_for(nodes, 60, seed);
        let t_end = traffic_end(&workloads);
        let interval = 16u64;
        let dead_rounds = 20u64;
        let victim = nodes as u32 - 1;
        let script = match churn {
            1 => vec![(t_end / 2, Membership::Leave(victim))],
            2 => vec![(t_end / 2, Membership::Crash(victim))],
            _ => Vec::new(),
        };
        let cfg = ClusterConfig {
            nodes,
            replication: 2,
            gateway: quiet_gateway(),
            net: NetFaultProfile::none().with_lane(MsgLane::Gossip, gossip_drop, 0.05),
            net_seed: 0x9055 ^ net_seed,
            gossip_interval_ms: interval,
            gossip_fanout: 2,
            gossip_suspect_rounds: 10,
            gossip_dead_rounds: dead_rounds,
            quiet_ms: interval * (dead_rounds + 8),
            script,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(cfg, |_, _| Suffix);
        let (_, report) = cluster.run(&workloads);
        prop_assert_eq!(report.errors(), 0);
        prop_assert!(report.gossip_heartbeats > 0, "the detector must actually gossip");
        prop_assert_eq!(
            report.gossip_false_deaths, 0,
            "no live reachable node may ever be marked dead"
        );

        let live: Vec<u32> = (0..nodes as u32).filter(|&n| cluster.is_live(n)).collect();
        let views: Vec<Vec<(u32, NodeStatus)>> =
            live.iter().map(|&n| cluster.membership_view(n)).collect();
        for (i, v) in views.iter().enumerate().skip(1) {
            prop_assert_eq!(v, &views[0], "node {} disagrees with node {}", live[i], live[0]);
        }
        for &(peer, status) in &views[0] {
            prop_assert_eq!(
                status == NodeStatus::Alive,
                cluster.is_live(peer),
                "peer {} status {:?} must match ground truth", peer, status
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // (d) In-band rebalance equivalence: a leave's hand-off racing live
    // traffic through a chaotic transfer lane (drops, duplicates, slow
    // pacing) ends with byte-identical responses and per-node cache
    // contents as the same hand-off run clean and instant — fanout plus
    // anti-entropy make the move's delivery schedule unobservable.
    #[test]
    fn in_band_rebalance_is_equivalent_to_quiescent_move(
        nodes in 3usize..=5,
        seed in 0u64..500,
        net_seed in 0u64..500,
        transfer_drop in 0.0f32..0.4,
        transfer_dup in 0.0f32..0.5,
        pace in 1u64..6,
    ) {
        let workloads = workloads_for(nodes, 80, seed);
        let t_end = traffic_end(&workloads);
        let ae = 15u64;
        let base = |net: NetFaultProfile, pace_ms: u64| ClusterConfig {
            nodes,
            replication: 2,
            gateway: quiet_gateway(),
            net,
            net_seed: 0x7a4e ^ net_seed,
            ae_interval_ms: ae,
            quiet_ms: ae * (nodes as u64 * 4 + 4),
            transfer_pace_ms: pace_ms,
            script: vec![(t_end / 2, Membership::Leave(1))],
            ..ClusterConfig::default()
        };
        let chaotic = base(
            NetFaultProfile::none().with_lane(MsgLane::Transfer, transfer_drop, transfer_dup),
            pace,
        );
        let quiescent = base(NetFaultProfile::none(), 0);

        let mut racing = Cluster::new(chaotic, |_, _| Suffix);
        let (ra, rep_a) = racing.run(&workloads);
        let mut clean = Cluster::new(quiescent, |_, _| Suffix);
        let (rb, rep_b) = clean.run(&workloads);
        prop_assert_eq!(rep_a.errors(), 0);
        prop_assert_eq!(rep_b.errors(), 0);
        prop_assert_eq!(ra, rb, "responses must not depend on how the move travelled");
        for n in 0..nodes as u32 {
            prop_assert_eq!(
                racing.cache_entries(n),
                clean.cache_entries(n),
                "node {} contents must be byte-identical", n
            );
        }
    }
}

//! Property tests for rendezvous-hash placement: load balance stays
//! within a bound, and membership changes disturb only the minimal set
//! of keys.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pas_cluster::hrw;

fn keys(n: usize, salt: u64) -> Vec<String> {
    (0..n).map(|i| format!("prompt {salt}-{i} about topic {}", i % 17)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Across 1–16 nodes, no node owns more than ~3x its fair share of a
    // reasonably large key set (HRW balance is binomial around the
    // mean; 3x is a comfortable bound at 600 keys).
    #[test]
    fn load_stays_within_bound(nodes in 1usize..=16, salt in 0u64..1000) {
        let live: Vec<u32> = (0..nodes as u32).collect();
        let keys = keys(600, salt);
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for k in &keys {
            *counts.entry(hrw::owner(k, &live).unwrap()).or_default() += 1;
        }
        let fair = keys.len() as f64 / nodes as f64;
        for (&node, &count) in &counts {
            prop_assert!(
                (count as f64) <= fair * 3.0,
                "node {} owns {} of {} keys (fair share {:.1})",
                node, count, keys.len(), fair
            );
        }
    }

    // A join only inserts the joiner into candidate lists: every key
    // either keeps its exact candidate list, or gains the joiner while
    // preserving the relative order of all incumbents. Keys that change
    // owner change it *to the joiner* only.
    #[test]
    fn join_disturbs_only_keys_the_joiner_wins(nodes in 2usize..=12, salt in 0u64..1000) {
        let joiner = nodes as u32; // a node id not yet in the set
        let before: Vec<u32> = (0..nodes as u32).collect();
        let mut after = before.clone();
        after.push(joiner);
        for k in &keys(300, salt) {
            let old = hrw::candidates(k, &before, 3);
            let new = hrw::candidates(k, &after, 3);
            // Incumbent relative order is preserved: `new` minus the
            // joiner is a prefix of `old`.
            let survivors: Vec<u32> = new.iter().copied().filter(|&n| n != joiner).collect();
            prop_assert_eq!(&old[..survivors.len()], &survivors[..]);
            let (old_owner, new_owner) =
                (hrw::owner(k, &before).unwrap(), hrw::owner(k, &after).unwrap());
            prop_assert!(
                new_owner == old_owner || new_owner == joiner,
                "ownership may move only to the joiner (was {}, now {})",
                old_owner, new_owner
            );
        }
    }

    // A leave only reassigns the leaver's keys: every key the leaver did
    // not own keeps its owner, and the survivors' relative candidate
    // order never changes.
    #[test]
    fn leave_reassigns_only_the_leavers_keys(
        nodes in 2usize..=12,
        leaver_ix in 0usize..12,
        salt in 0u64..1000,
    ) {
        let before: Vec<u32> = (0..nodes as u32).collect();
        let leaver = before[leaver_ix % nodes];
        let after: Vec<u32> = before.iter().copied().filter(|&n| n != leaver).collect();
        for k in &keys(300, salt) {
            let old = hrw::candidates(k, &before, 3);
            let new = hrw::candidates(k, &after, 3);
            // Survivor relative order is preserved.
            let survivors: Vec<u32> = old.iter().copied().filter(|&n| n != leaver).collect();
            prop_assert_eq!(&new[..survivors.len().min(new.len())], &survivors[..survivors.len().min(new.len())]);
            let old_owner = hrw::owner(k, &before).unwrap();
            if old_owner != leaver {
                prop_assert_eq!(hrw::owner(k, &after), Some(old_owner));
            } else {
                // The leaver's keys go to its runner-up.
                prop_assert_eq!(hrw::owner(k, &after), old.iter().copied().find(|&n| n != leaver).or(after.first().copied()));
            }
        }
    }
}

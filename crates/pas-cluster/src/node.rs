//! One simulated gateway node: the single-node serving core (semantic
//! cache + replica pool + bounded queue + micro-batching) lifted out of
//! `pas_gateway::Gateway` so the cluster loop can run N of them against
//! one shared [`EventHeap`].
//!
//! A node never talks to the network itself — it only serves what the
//! cluster enqueues on it and schedules its own `CacheServe`/`BatchDone`
//! events. Cross-node concerns (routing, hedging, responses, accounting
//! at the ingress) live in [`crate::cluster`].

use std::collections::VecDeque;

use pas_core::PromptOptimizer;
use pas_fault::FaultConfig;
use pas_gateway::{
    cache_embedder, EventHeap, GatewayCache, GatewayConfig, GatewayReport, ReplicaPool,
    ReplicaReport, SemanticCache,
};

use crate::cluster::{Ev, ReqCtx};
use crate::gossip::View;

/// Derivation lane for per-node fault seeds: every node's replica pool
/// draws its chaos from `derive(gateway.fault.seed, [NODE_FAULT_LANE,
/// node])`, so no two nodes fault on correlated schedules.
pub(crate) const NODE_FAULT_LANE: u64 = 0xc105;

/// One queued request on a node. `cacheable` is false for passthrough
/// serves (full-partition fallbacks, rescues) — a non-owner must not
/// install entries it was never assigned.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Item {
    pub req: usize,
    pub cacheable: bool,
}

/// A simulated gateway node.
pub(crate) struct Node<O: PromptOptimizer> {
    pub id: u32,
    pub live: bool,
    /// True after a `Membership::Crash` took the node down hard: pending
    /// serve events at it are discarded (no graceful drain happened) and
    /// orphaned local requests are re-driven by client retry.
    pub crashed: bool,
    /// This node's local membership view (the gossip failure detector);
    /// routing consults it instead of ground truth when gossip is on.
    pub view: View,
    /// Anti-entropy round counter: drives the round-robin peer rotation.
    pub ae_round: u64,
    pub cache: GatewayCache,
    pub pool: ReplicaPool<O>,
    pub queue: VecDeque<Item>,
    pub report: GatewayReport,
    base_hits: u64,
    base_near: u64,
    base_misses: u64,
    base_evictions: u64,
}

impl<O: PromptOptimizer> Node<O> {
    /// Builds node `id` with a fresh cache and a pool whose fault seed is
    /// derived per node (decorrelated chaos across the fleet).
    pub fn new(id: u32, config: &GatewayConfig, optimizers: Vec<O>) -> Self {
        assert!(!optimizers.is_empty(), "node needs at least one replica");
        assert!(config.batch_max > 0, "batch_max must be positive");
        let fault = FaultConfig {
            seed: pas_par::derive_seed_path(config.fault.seed, &[NODE_FAULT_LANE, u64::from(id)]),
            ..config.fault.clone()
        };
        let embedder = cache_embedder(&config.cache);
        let cache = SemanticCache::new(config.cache.clone(), embedder);
        let pool = ReplicaPool::new(optimizers, &fault, &config.replica_profiles);
        Node {
            id,
            live: true,
            crashed: false,
            view: View::new(id, &[]),
            ae_round: 0,
            cache,
            pool,
            queue: VecDeque::new(),
            report: GatewayReport::default(),
            base_hits: 0,
            base_near: 0,
            base_misses: 0,
            base_evictions: 0,
        }
    }

    /// Resets the per-run report and pins the cache-counter baseline (the
    /// cache is cumulative and survives across runs; the report holds this
    /// run's delta, exactly like `Gateway::run`).
    pub fn begin_run(&mut self) {
        self.report = GatewayReport {
            per_replica: vec![ReplicaReport::default(); self.pool.len()],
            ..GatewayReport::default()
        };
        self.base_hits = self.cache.hits();
        self.base_near = self.cache.near_hits();
        self.base_misses = self.cache.misses();
        self.base_evictions = self.cache.evictions();
    }

    /// Fills the delta/absolute fields the loop doesn't maintain online.
    pub fn end_run(&mut self, now: u64) {
        self.report.exact_hits = self.cache.hits() - self.base_hits;
        self.report.near_hits = self.cache.near_hits() - self.base_near;
        self.report.misses = self.cache.misses() - self.base_misses;
        self.report.evictions = self.cache.evictions() - self.base_evictions;
        self.report.sim_duration_ms = now;
        for (r, faults) in self.report.per_replica.iter_mut().zip(self.pool.fault_reports()) {
            r.faults = faults;
        }
    }

    /// Pops up to `batch_max` queued items, dedupes their prompts
    /// (first-occurrence order), gives every unique prompt a second-chance
    /// batched cache probe, serves the remaining uniques through the pool
    /// in parallel (the loop's only parallel region), and schedules the
    /// `CacheServe`/`BatchDone` events. Mirrors `Gateway::dispatch`.
    pub fn dispatch(
        &mut self,
        reqs: &[ReqCtx],
        cfg: &GatewayConfig,
        now: u64,
        events: &mut EventHeap<Ev>,
    ) {
        let take = self.queue.len().min(cfg.batch_max);
        if take == 0 {
            return;
        }
        let members: Vec<Item> = self.queue.drain(..take).collect();
        let mut unique: Vec<&str> = Vec::new();
        let unique_of: Vec<usize> = members
            .iter()
            .map(|it| {
                let p = reqs[it.req].prompt.as_str();
                match unique.iter().position(|&q| q == p) {
                    Some(u) => u,
                    None => {
                        unique.push(p);
                        unique.len() - 1
                    }
                }
            })
            .collect();

        // Second-chance probe: an earlier batch (or a rebalance hand-off)
        // may have cached the prompt while these items queued.
        let cached = self.cache.lookup_batch(&unique);
        let mut live_unique: Vec<&str> = Vec::new();
        let remap: Vec<Option<usize>> = cached
            .iter()
            .enumerate()
            .map(|(u, c)| {
                if c.is_none() {
                    live_unique.push(unique[u]);
                    Some(live_unique.len() - 1)
                } else {
                    None
                }
            })
            .collect();
        let mut hit_members = Vec::new();
        let mut live_members = Vec::new();
        let mut live_unique_of = Vec::new();
        for (k, it) in members.iter().enumerate() {
            match &cached[unique_of[k]] {
                Some(response) => hit_members.push((it.req, response.clone())),
                None => {
                    live_members.push(*it);
                    live_unique_of.push(remap[unique_of[k]].expect("missed uniques are live"));
                }
            }
        }
        if !hit_members.is_empty() {
            self.report.batch_hits += hit_members.len() as u64;
            events.push(
                now + cfg.cache_hit_cost_ms,
                Ev::CacheServe { node: self.id, members: hit_members },
            );
        }
        if live_unique.is_empty() {
            return;
        }

        let replica = self.pool.route();
        self.pool.begin(replica, live_unique.len() as u64);
        let pool = &self.pool;
        let outcomes = pas_par::par_map(&live_unique, |_, p| pool.try_serve(replica, p));
        self.report.batches += 1;
        self.report.batched_prompts += live_unique.len() as u64;
        let cost = cfg.batch_overhead_ms + cfg.per_prompt_cost_ms * live_unique.len() as u64;
        events.push(
            now + cost,
            Ev::BatchDone {
                node: self.id,
                replica,
                members: live_members,
                unique_of: live_unique_of,
                outcomes,
            },
        );
    }
}

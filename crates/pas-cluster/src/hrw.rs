//! Rendezvous (highest-random-weight) hashing for shard placement.
//!
//! Every `(node, key)` pair gets a deterministic 64-bit score; a key's
//! *candidate list* is the live nodes sorted by score, best first, and its
//! *primary owner* is the head of that list. Because each node's score for
//! a key never depends on which other nodes exist, membership changes are
//! minimally disruptive by construction: joining node `j` only inserts `j`
//! into lists at its own score position (every other relative order is
//! unchanged), and a leave only promotes the next-best candidate for the
//! keys the leaver held. The proptests in `tests/properties.rs` pin both
//! facts plus a load-balance bound across 1–16 nodes.
//!
//! Hashing is plain integer arithmetic (FNV-1a over the key bytes, a
//! splitmix64 finalizer over the pair), so placement is bit-identical on
//! every platform — part of the cluster determinism contract.

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the key bytes — stable, allocation-free, endian-agnostic.
pub fn key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The rendezvous score of `node` for a pre-hashed key. Higher wins.
pub fn score(node: u32, key_hash: u64) -> u64 {
    mix(key_hash ^ mix(u64::from(node) ^ 0x4852_5748)) // "HRWH"
}

/// The top-`r` candidate nodes for `key` among `live`, best first. Ties
/// (astronomically unlikely) break toward the lower node id, keeping the
/// order total. Returns fewer than `r` nodes when fewer are live, and an
/// empty vec for an empty membership.
pub fn candidates(key: &str, live: &[u32], r: usize) -> Vec<u32> {
    let kh = key_hash(key);
    let mut ranked: Vec<u32> = live.to_vec();
    ranked.sort_by_key(|&n| (std::cmp::Reverse(score(n, kh)), n));
    ranked.truncate(r);
    ranked
}

/// The primary owner of `key` among `live` (`None` for an empty
/// membership).
pub fn owner(key: &str, live: &[u32]) -> Option<u32> {
    let kh = key_hash(key);
    live.iter().copied().min_by_key(|&n| (std::cmp::Reverse(score(n, kh)), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_matches_candidate_head() {
        let live = [0u32, 1, 2, 3, 4];
        for i in 0..200 {
            let key = format!("prompt {i}");
            assert_eq!(owner(&key, &live), Some(candidates(&key, &live, 3)[0]));
        }
        assert_eq!(owner("x", &[]), None);
        assert!(candidates("x", &[], 2).is_empty());
    }

    #[test]
    fn candidates_are_distinct_live_nodes() {
        let live = [3u32, 7, 9];
        let c = candidates("some key", &live, 5);
        assert_eq!(c.len(), 3, "r beyond membership clamps");
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), c.len());
        assert!(c.iter().all(|n| live.contains(n)));
    }

    #[test]
    fn placement_is_stable_and_membership_order_independent() {
        let a = candidates("k", &[0, 1, 2, 3], 2);
        let b = candidates("k", &[3, 1, 0, 2], 2);
        assert_eq!(a, b, "candidate order is a function of scores, not input order");
        assert_eq!(a, candidates("k", &[0, 1, 2, 3], 2));
    }
}

//! Fleet-level accounting: per-node [`GatewayReport`]s folded through the
//! existing associative merge, plus cluster-only counters for routing,
//! hedging, network chaos, and rebalancing.
//!
//! Like every report in the workspace, [`ClusterReport::merge`] is
//! associative with `Default` as the identity — shard/window reports fold
//! into one fleet report in any grouping, which is what lets the CI job
//! byte-diff folded reports across worker-thread counts.

use serde::{Deserialize, Serialize};

use pas_gateway::GatewayReport;

/// Everything one cluster run did. `fleet` is the fold of `per_node`;
/// both are kept so dashboards can show the fleet headline *and* per-node
/// skew.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Nodes configured (max under merge).
    pub nodes: u64,
    /// Per-node gateway reports folded into one (the associative
    /// [`GatewayReport::merge`]).
    pub fleet: GatewayReport,
    /// Per-node gateway reports, indexed by node id.
    pub per_node: Vec<GatewayReport>,
    /// Requests whose ingress was not a candidate and were sent to one.
    pub forwards: u64,
    /// Backup probes fired after the hedge delay elapsed unanswered.
    pub hedges_fired: u64,
    /// Requests whose winning response came from a hedge target rather
    /// than the primary forward.
    pub hedges_won: u64,
    /// Requests completed by the local rescue timer after the hedge chain
    /// exhausted every candidate.
    pub rescues: u64,
    /// Requests served locally because every candidate link was
    /// partitioned at arrival (full-partition degradation).
    pub local_fallbacks: u64,
    /// Arrivals at a dead ingress redirected to the key's primary owner.
    pub redirects: u64,
    /// Messages refused at send time because the link was partitioned.
    pub net_cut: u64,
    /// Messages dropped in flight by the network schedule.
    pub net_drops: u64,
    /// Messages duplicated in flight by the network schedule.
    pub net_duplicates: u64,
    /// Membership changes processed (joins + leaves).
    pub rebalances: u64,
    /// Cache entries handed to a new primary owner across all rebalances.
    pub rebalance_moved: u64,
}

impl ClusterReport {
    /// Requests that arrived but were never answered. The cluster's
    /// zero-error guarantee pins this to 0 at the end of every run —
    /// partitions, drops, and node departures included.
    pub fn errors(&self) -> u64 {
        self.fleet.requests.saturating_sub(self.fleet.completed)
    }

    /// Fleet-wide completed requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        self.fleet.throughput_rps()
    }

    /// Folds `other` into `self`: gateway reports merge (fleet whole,
    /// per-node index-wise), counters sum, node counts max. Associative,
    /// with [`ClusterReport::default`] as the identity.
    pub fn merge(&mut self, other: &ClusterReport) {
        self.nodes = self.nodes.max(other.nodes);
        self.fleet.merge(&other.fleet);
        if self.per_node.len() < other.per_node.len() {
            self.per_node.resize(other.per_node.len(), GatewayReport::default());
        }
        for (mine, theirs) in self.per_node.iter_mut().zip(&other.per_node) {
            mine.merge(theirs);
        }
        self.forwards += other.forwards;
        self.hedges_fired += other.hedges_fired;
        self.hedges_won += other.hedges_won;
        self.rescues += other.rescues;
        self.local_fallbacks += other.local_fallbacks;
        self.redirects += other.redirects;
        self.net_cut += other.net_cut;
        self.net_drops += other.net_drops;
        self.net_duplicates += other.net_duplicates;
        self.rebalances += other.rebalances;
        self.rebalance_moved += other.rebalance_moved;
    }

    /// Two-paragraph human summary for CLI/bin output.
    pub fn render_summary(&self) -> String {
        format!(
            concat!(
                "fleet of {} nodes: {}\n",
                "cluster: {} forwards, {} hedges fired ({} won), {} rescues, ",
                "{} local fallbacks, {} redirects; ",
                "net: {} cut, {} dropped, {} duplicated; ",
                "{} rebalances moved {} entries; {} errors"
            ),
            self.nodes,
            self.fleet.render_summary(),
            self.forwards,
            self.hedges_fired,
            self.hedges_won,
            self.rescues,
            self.local_fallbacks,
            self.redirects,
            self.net_cut,
            self.net_drops,
            self.net_duplicates,
            self.rebalances,
            self.rebalance_moved,
            self.errors(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(seed: u64) -> ClusterReport {
        let f = |k: u64| (seed.rotate_left(k as u32).wrapping_mul(k + 3)) % 300;
        let mut node =
            GatewayReport { requests: f(1), completed: f(1), ..GatewayReport::default() };
        node.latency.record(f(2));
        ClusterReport {
            nodes: 1 + seed % 4,
            fleet: node.clone(),
            per_node: vec![node],
            forwards: f(3),
            hedges_fired: f(4),
            hedges_won: f(5),
            rescues: f(6),
            local_fallbacks: f(7),
            redirects: f(8),
            net_cut: f(9),
            net_drops: f(10),
            net_duplicates: f(11),
            rebalances: f(12),
            rebalance_moved: f(13),
        }
    }

    #[test]
    fn merge_is_associative_with_identity() {
        for seed in [2u64, 77, 0xbeef] {
            let (a, b, c) = (arb(seed), arb(seed ^ 5), arb(seed ^ 999));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right);

            let mut id = ClusterReport::default();
            id.merge(&a);
            assert_eq!(id, a);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = arb(11);
        let json = serde_json::to_string(&r).unwrap();
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn errors_counts_the_completion_gap() {
        let mut r = ClusterReport::default();
        r.fleet.requests = 10;
        r.fleet.completed = 10;
        assert_eq!(r.errors(), 0);
        r.fleet.completed = 7;
        assert_eq!(r.errors(), 3);
        assert!(r.render_summary().contains("3 errors"));
    }
}

//! Fleet-level accounting: per-node [`GatewayReport`]s folded through the
//! existing associative merge, plus cluster-only counters for routing,
//! hedging, network chaos, and rebalancing.
//!
//! Like every report in the workspace, [`ClusterReport::merge`] is
//! associative with `Default` as the identity — shard/window reports fold
//! into one fleet report in any grouping, which is what lets the CI job
//! byte-diff folded reports across worker-thread counts.

use serde::{Deserialize, Serialize};

use pas_gateway::GatewayReport;

/// Everything one cluster run did. `fleet` is the fold of `per_node`;
/// both are kept so dashboards can show the fleet headline *and* per-node
/// skew.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Nodes configured (max under merge).
    pub nodes: u64,
    /// Per-node gateway reports folded into one (the associative
    /// [`GatewayReport::merge`]).
    pub fleet: GatewayReport,
    /// Per-node gateway reports, indexed by node id.
    pub per_node: Vec<GatewayReport>,
    /// Requests whose ingress was not a candidate and were sent to one.
    pub forwards: u64,
    /// Backup probes fired after the hedge delay elapsed unanswered.
    pub hedges_fired: u64,
    /// Requests whose winning response came from a hedge target rather
    /// than the primary forward.
    pub hedges_won: u64,
    /// Requests completed by the local rescue timer after the hedge chain
    /// exhausted every candidate.
    pub rescues: u64,
    /// Requests served locally because every candidate link was
    /// partitioned at arrival (full-partition degradation).
    pub local_fallbacks: u64,
    /// Arrivals at a dead ingress redirected to the key's primary owner.
    pub redirects: u64,
    /// Messages refused at send time because the link was partitioned.
    pub net_cut: u64,
    /// Messages dropped in flight by the network schedule.
    pub net_drops: u64,
    /// Messages duplicated in flight by the network schedule.
    pub net_duplicates: u64,
    /// Membership changes processed (joins + leaves).
    pub rebalances: u64,
    /// Hand-off entries that arrived at their new primary (counted at
    /// delivery — in-band transfers ride the simulated network and can be
    /// dropped, in which case anti-entropy repairs them instead).
    pub rebalance_moved: u64,
    /// Per-entry hand-off transfer messages put on the wire.
    pub transfers_sent: u64,
    /// Nodes taken down hard by `Membership::Crash` (no drain, no
    /// hand-off, no departure announcement).
    pub crashes: u64,
    /// Requests re-driven by client retry after their node crashed with
    /// them queued or in flight.
    pub crash_retries: u64,
    /// Replication messages fanned out to candidate replicas on insert.
    pub repl_sent: u64,
    /// Replication messages that installed or upgraded an entry.
    pub repl_applied: u64,
    /// Replication messages that were no-ops at the replica (already at
    /// the same or a newer version — duplicates are idempotent).
    pub repl_stale: u64,
    /// Anti-entropy digests sent (one per sweep at a live node with a
    /// live peer).
    pub ae_digests: u64,
    /// Entries pushed by anti-entropy repair that installed or upgraded.
    pub ae_repairs: u64,
    /// Simulated time of the last applied repair (max under merge): the
    /// convergence stamp a bench compares against a partition-heal time.
    pub ae_last_repair_ms: u64,
    /// Gossip heartbeats put on the wire (periodic rounds + join bursts).
    pub gossip_heartbeats: u64,
    /// Local-view transitions into `Suspect`.
    pub gossip_suspects: u64,
    /// Local-view transitions into `Dead`.
    pub gossip_deaths: u64,
    /// `Dead` verdicts passed on nodes that were actually live and
    /// reachable at that instant — the detector's false-positive count.
    pub gossip_false_deaths: u64,
}

impl ClusterReport {
    /// Requests that arrived but were never answered. The cluster's
    /// zero-error guarantee pins this to 0 at the end of every run —
    /// partitions, drops, and node departures included.
    pub fn errors(&self) -> u64 {
        self.fleet.requests.saturating_sub(self.fleet.completed)
    }

    /// Fleet-wide completed requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        self.fleet.throughput_rps()
    }

    /// Folds `other` into `self`: gateway reports merge (fleet whole,
    /// per-node index-wise), counters sum, node counts max. Associative,
    /// with [`ClusterReport::default`] as the identity.
    pub fn merge(&mut self, other: &ClusterReport) {
        self.nodes = self.nodes.max(other.nodes);
        self.fleet.merge(&other.fleet);
        if self.per_node.len() < other.per_node.len() {
            self.per_node.resize(other.per_node.len(), GatewayReport::default());
        }
        for (mine, theirs) in self.per_node.iter_mut().zip(&other.per_node) {
            mine.merge(theirs);
        }
        self.forwards += other.forwards;
        self.hedges_fired += other.hedges_fired;
        self.hedges_won += other.hedges_won;
        self.rescues += other.rescues;
        self.local_fallbacks += other.local_fallbacks;
        self.redirects += other.redirects;
        self.net_cut += other.net_cut;
        self.net_drops += other.net_drops;
        self.net_duplicates += other.net_duplicates;
        self.rebalances += other.rebalances;
        self.rebalance_moved += other.rebalance_moved;
        self.transfers_sent += other.transfers_sent;
        self.crashes += other.crashes;
        self.crash_retries += other.crash_retries;
        self.repl_sent += other.repl_sent;
        self.repl_applied += other.repl_applied;
        self.repl_stale += other.repl_stale;
        self.ae_digests += other.ae_digests;
        self.ae_repairs += other.ae_repairs;
        self.ae_last_repair_ms = self.ae_last_repair_ms.max(other.ae_last_repair_ms);
        self.gossip_heartbeats += other.gossip_heartbeats;
        self.gossip_suspects += other.gossip_suspects;
        self.gossip_deaths += other.gossip_deaths;
        self.gossip_false_deaths += other.gossip_false_deaths;
    }

    /// Two-paragraph human summary for CLI/bin output.
    pub fn render_summary(&self) -> String {
        format!(
            concat!(
                "fleet of {} nodes: {}\n",
                "cluster: {} forwards, {} hedges fired ({} won), {} rescues, ",
                "{} local fallbacks, {} redirects; ",
                "net: {} cut, {} dropped, {} duplicated; ",
                "{} rebalances moved {}/{} entries; {} crashes ({} retries); ",
                "repl: {} sent, {} applied, {} stale; ",
                "ae: {} digests, {} repairs (last @{}ms); ",
                "gossip: {} heartbeats, {} suspects, {} deaths ({} false); ",
                "{} errors"
            ),
            self.nodes,
            self.fleet.render_summary(),
            self.forwards,
            self.hedges_fired,
            self.hedges_won,
            self.rescues,
            self.local_fallbacks,
            self.redirects,
            self.net_cut,
            self.net_drops,
            self.net_duplicates,
            self.rebalances,
            self.rebalance_moved,
            self.transfers_sent,
            self.crashes,
            self.crash_retries,
            self.repl_sent,
            self.repl_applied,
            self.repl_stale,
            self.ae_digests,
            self.ae_repairs,
            self.ae_last_repair_ms,
            self.gossip_heartbeats,
            self.gossip_suspects,
            self.gossip_deaths,
            self.gossip_false_deaths,
            self.errors(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(seed: u64) -> ClusterReport {
        let f = |k: u64| (seed.rotate_left(k as u32).wrapping_mul(k + 3)) % 300;
        let mut node =
            GatewayReport { requests: f(1), completed: f(1), ..GatewayReport::default() };
        node.latency.record(f(2));
        ClusterReport {
            nodes: 1 + seed % 4,
            fleet: node.clone(),
            per_node: vec![node],
            forwards: f(3),
            hedges_fired: f(4),
            hedges_won: f(5),
            rescues: f(6),
            local_fallbacks: f(7),
            redirects: f(8),
            net_cut: f(9),
            net_drops: f(10),
            net_duplicates: f(11),
            rebalances: f(12),
            rebalance_moved: f(13),
            transfers_sent: f(14),
            crashes: f(15),
            crash_retries: f(16),
            repl_sent: f(17),
            repl_applied: f(18),
            repl_stale: f(19),
            ae_digests: f(20),
            ae_repairs: f(21),
            ae_last_repair_ms: f(22),
            gossip_heartbeats: f(23),
            gossip_suspects: f(24),
            gossip_deaths: f(25),
            gossip_false_deaths: f(26),
        }
    }

    #[test]
    fn merge_is_associative_with_identity() {
        for seed in [2u64, 77, 0xbeef] {
            let (a, b, c) = (arb(seed), arb(seed ^ 5), arb(seed ^ 999));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right);

            let mut id = ClusterReport::default();
            id.merge(&a);
            assert_eq!(id, a);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = arb(11);
        let json = serde_json::to_string(&r).unwrap();
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn errors_counts_the_completion_gap() {
        let mut r = ClusterReport::default();
        r.fleet.requests = 10;
        r.fleet.completed = 10;
        assert_eq!(r.errors(), 0);
        r.fleet.completed = 7;
        assert_eq!(r.errors(), 3);
        assert!(r.render_summary().contains("3 errors"));
    }
}

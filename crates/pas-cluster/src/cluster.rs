//! The multi-node discrete-event loop: HRW-sharded routing, hedged
//! cross-shard forwards, seeded network chaos, membership changes with
//! state hand-off, and fleet accounting.
//!
//! One [`EventHeap`] drives the whole fleet. Requests arrive at their
//! workload's node (the *ingress*); the key's HRW candidate list decides
//! where they are served:
//!
//! - ingress ∈ candidates → served locally (lookup, queue, batch — the
//!   single-node path from `pas-gateway`, now per node).
//! - otherwise → *forwarded* to the first reachable candidate. A hedge
//!   timer arms: if no response lands within `hedge_ms`, a backup probe
//!   goes to the next candidate (first response wins, losers are
//!   discarded on arrival). When the candidate chain is exhausted, a
//!   rescue timer serves the request locally as passthrough — so every
//!   request completes even if the network eats every message.
//! - every candidate link partitioned → immediate *local fallback*
//!   (served through the local pool, not cached locally): the
//!   full-partition degradation analogue of the plug-and-play guarantee.
//!
//! Membership changes are scripted, simulated-time events. A leave drains
//! the node's queue (graceful decommission), then hands the keys it
//! *primaries* to their new owners; a join pulls primaries over the same
//! way. Hand-off travels through real `pas-store` segment logs when
//! [`ClusterConfig::handoff_dir`] is set — written, closed, reopened, and
//! replayed — and the resulting cluster state is identical to the
//! in-memory path.
//!
//! Round 2 adds the replication plane, all riding the same heap:
//!
//! - *Write-fanout*: when a candidate installs a cache entry it pushes a
//!   replication message to every other HRW candidate, so hedged reads at
//!   replicas hit warm caches and a leave no longer goes cold.
//! - *Anti-entropy*: periodic sweeps exchange merkle-lite digests
//!   (`(entry_hash, version)` lists) between candidate peers in a
//!   round-robin rotation; missing or stale entries are pushed back as
//!   repairs, so replicas converge after drops and partitions.
//! - *In-band rebalance*: hand-off travels as per-entry transfer messages
//!   interleaved with serving traffic — big moves cost simulated time,
//!   race arrivals, and lose members to drops (anti-entropy heals those).
//! - *Gossip failure detection*: when [`ClusterConfig::gossip_interval_ms`]
//!   is set, each node keeps its own [`crate::gossip::View`] driven by
//!   seeded heartbeats, and candidate routing consults that *local* view —
//!   nodes legitimately disagree while the epidemic converges. A
//!   [`Membership::Crash`] announces nothing; peers time it out.
//!
//! Determinism: the loop is serial; parallelism exists only inside a
//! node's batch dispatch (`pas_par::par_map`, item-ordered). Network
//! fates are pure functions of `(net_seed, lane, src, dst, msg)` with
//! `msg` assigned serially *per lane* — serve traffic never shifts the
//! fate of a replication or gossip message — and all tie-breaks go
//! through the `(time, seq)` heap, so responses and the folded
//! [`ClusterReport`] are bit-identical at any worker-thread count.

use std::collections::BTreeMap;
use std::path::PathBuf;

use pas_core::PromptOptimizer;
use pas_fault::{MsgLane, NetFaultProfile, NetFaults};
use pas_gateway::{
    entry_hash, AdmissionPolicy, CacheOutcome, EventHeap, GatewayConfig, GatewayReport, Request,
    ServeOutcome, WorkloadConfig,
};
use pas_store::{Record, RecordMeta, SegmentLog, StoreConfig};

use crate::gossip::{GossipTuning, NodeStatus};
use crate::hrw;
use crate::node::{Item, Node};
use crate::report::ClusterReport;

// Aggregate counters are charged once per run from the finished report,
// following the gateway convention; golden metrics fixtures never run a
// cluster, so these names stay out of them.
static OBS_REQUESTS: pas_obs::Counter = pas_obs::Counter::new("cluster.requests");
static OBS_COMPLETED: pas_obs::Counter = pas_obs::Counter::new("cluster.completed");
static OBS_FORWARDS: pas_obs::Counter = pas_obs::Counter::new("cluster.forwards");
static OBS_HEDGES_FIRED: pas_obs::Counter = pas_obs::Counter::new("cluster.hedges.fired");
static OBS_HEDGES_WON: pas_obs::Counter = pas_obs::Counter::new("cluster.hedges.won");
static OBS_RESCUES: pas_obs::Counter = pas_obs::Counter::new("cluster.rescues");
static OBS_LOCAL_FALLBACKS: pas_obs::Counter = pas_obs::Counter::new("cluster.local_fallbacks");
static OBS_REBALANCE_MOVED: pas_obs::Counter = pas_obs::Counter::new("cluster.rebalance.moved");
static OBS_REPL_SENT: pas_obs::Counter = pas_obs::Counter::new("cluster.repl.sent");
static OBS_REPL_APPLIED: pas_obs::Counter = pas_obs::Counter::new("cluster.repl.applied");
static OBS_AE_DIGESTS: pas_obs::Counter = pas_obs::Counter::new("cluster.ae.digests");
static OBS_AE_REPAIRS: pas_obs::Counter = pas_obs::Counter::new("cluster.ae.repairs");
static OBS_GOSSIP_HEARTBEATS: pas_obs::Counter = pas_obs::Counter::new("cluster.gossip.heartbeats");
static OBS_GOSSIP_DEATHS: pas_obs::Counter = pas_obs::Counter::new("cluster.gossip.deaths");

/// Fingerprint stamped on hand-off segment logs so a stray log from some
/// other producer is rejected at open.
const HANDOFF_FINGERPRINT: u64 = 0x4a0f_f10a_d0ff_0001;

/// A scripted membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// Node joins (or rejoins) the fleet and receives its primaries.
    Join(u32),
    /// Node drains its queue, hands its primaries off, and departs.
    Leave(u32),
    /// Node dies hard: no drain, no hand-off, no departure announcement.
    /// Its queued and in-flight local work re-arrives by client retry;
    /// with gossip on, peers only learn of the death by timing it out.
    Crash(u32),
}

/// Cluster tuning knobs on top of the per-node [`GatewayConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulated gateway nodes (ids `0..nodes`).
    pub nodes: usize,
    /// HRW candidate-set size per key (primary + replicas).
    pub replication: usize,
    /// Per-node serving knobs; each node derives its own fault seed.
    pub gateway: GatewayConfig,
    /// Simulated network behaviour (latency, loss, partitions).
    pub net: NetFaultProfile,
    /// Seed for the network schedule.
    pub net_seed: u64,
    /// Delay before a backup probe goes to the next candidate.
    pub hedge_ms: u64,
    /// Delay before an exhausted hedge chain serves locally.
    pub rescue_ms: u64,
    /// Nodes built dead (they come up through a scripted `Join`).
    pub start_dead: Vec<u32>,
    /// Scripted membership changes as `(at_ms, change)` pairs.
    pub script: Vec<(u64, Membership)>,
    /// When set, rebalance hand-off is written to and replayed from
    /// `pas-store` segment logs under this directory; when `None` the
    /// same entries move in memory (identical resulting state).
    pub handoff_dir: Option<PathBuf>,
    /// Fan cache installs out to the other HRW candidates so replicas
    /// serve warm after a leave or crash.
    pub repl_fanout: bool,
    /// Anti-entropy sweep period per node; `0` disables sweeps.
    pub ae_interval_ms: u64,
    /// Gossip heartbeat period per node; `0` disables the failure
    /// detector entirely (routing then uses scripted ground truth, the
    /// round-1 behaviour).
    pub gossip_interval_ms: u64,
    /// Heartbeat targets per gossip round.
    pub gossip_fanout: usize,
    /// Rounds of heartbeat silence before a peer turns `Suspect`.
    pub gossip_suspect_rounds: u64,
    /// Rounds of heartbeat silence before a peer turns `Dead`.
    pub gossip_dead_rounds: u64,
    /// Extra simulated time past the last arrival/script event during
    /// which periodic sweeps keep re-arming — the quiet period that lets
    /// anti-entropy and gossip converge after the chaos stops.
    pub quiet_ms: u64,
    /// Spacing between consecutive transfer messages on one hand-off
    /// link: a big move occupies simulated time instead of being instant.
    pub transfer_pace_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            gateway: GatewayConfig::default(),
            net: NetFaultProfile::none(),
            net_seed: 0x4e72,
            hedge_ms: 12,
            rescue_ms: 40,
            start_dead: Vec::new(),
            script: Vec::new(),
            handoff_dir: None,
            repl_fanout: true,
            ae_interval_ms: 0,
            gossip_interval_ms: 0,
            gossip_fanout: 2,
            gossip_suspect_rounds: 8,
            gossip_dead_rounds: 16,
            quiet_ms: 0,
            transfer_pace_ms: 1,
        }
    }
}

impl ClusterConfig {
    /// Detector thresholds implied by the gossip knobs, or `None` when
    /// the detector is off.
    fn gossip_tuning(&self) -> Option<GossipTuning> {
        if self.gossip_interval_ms == 0 {
            return None;
        }
        Some(GossipTuning {
            fanout: self.gossip_fanout.max(1),
            suspect_ms: self.gossip_interval_ms * self.gossip_suspect_rounds.max(1),
            dead_ms: self.gossip_interval_ms * self.gossip_dead_rounds.max(2),
        })
    }
}

/// Per-node workloads for a fleet soak: node `n` gets `base.for_node(n)`
/// traffic — decorrelated streams, one fleet seed.
pub fn fleet_workloads(base: &WorkloadConfig, nodes: usize) -> Vec<Vec<Request>> {
    (0..nodes).map(|n| pas_gateway::generate(&base.for_node(n as u32))).collect()
}

/// Per-request simulation state.
pub(crate) struct ReqCtx {
    /// Workload coordinates (node index, position) for the response slot.
    node: usize,
    slot: usize,
    pub prompt: String,
    arrival_ms: u64,
    /// The node that accounts this request (workload node, or the primary
    /// owner when the workload node is dead).
    ingress: u32,
    candidates: Vec<u32>,
    /// The first forward target, when the request was forwarded at all.
    primary: Option<u32>,
    done: bool,
}

/// A message on the simulated network. Each variant travels on its own
/// [`MsgLane`], with its own serial message counter, so the fault fates
/// of one traffic class never shift another's.
#[derive(Clone)]
pub(crate) enum Msg {
    /// Serve `req` here (the receiver is a candidate for its key).
    Forward { req: usize },
    /// `server`'s answer for `req`, returning to the ingress.
    Response { req: usize, text: String, server: u32 },
    /// Write-fanout: install this entry at a candidate replica.
    Replicate { prompt: String, response: String, version: u64 },
    /// In-band rebalance: one hand-off entry for its new primary.
    Transfer { prompt: String, response: String, version: u64 },
    /// Anti-entropy: `from`'s sorted `(entry_hash, version)` digest.
    Digest { from: u32, entries: Vec<(u64, u64)> },
    /// Anti-entropy: an entry the digest sender was missing or held stale.
    Repair { prompt: String, response: String, version: u64 },
    /// Gossip: the sender's full view (alive stamps + departure stamps —
    /// the sender's own fresh stamp rides in `heard`, so no sender id is
    /// needed).
    Heartbeat { heard: Vec<(u32, u64)>, departed: Vec<(u32, u64)> },
    /// Gossip: `from` announces its own graceful departure at `at`.
    Departure { from: u32, at: u64 },
}

impl Msg {
    /// The traffic class this message travels on.
    fn lane(&self) -> MsgLane {
        match self {
            Msg::Forward { .. } | Msg::Response { .. } => MsgLane::Serve,
            Msg::Replicate { .. } => MsgLane::Replicate,
            Msg::Transfer { .. } => MsgLane::Transfer,
            Msg::Digest { .. } | Msg::Repair { .. } => MsgLane::AntiEntropy,
            Msg::Heartbeat { .. } | Msg::Departure { .. } => MsgLane::Gossip,
        }
    }
}

/// Cluster loop events (see module docs for the flow).
pub(crate) enum Ev {
    Arrival(usize),
    Deliver {
        dst: u32,
        msg: Msg,
    },
    Linger {
        node: u32,
        req: usize,
    },
    CacheServe {
        node: u32,
        members: Vec<(usize, String)>,
    },
    BatchDone {
        node: u32,
        replica: usize,
        members: Vec<Item>,
        unique_of: Vec<usize>,
        outcomes: Vec<ServeOutcome>,
    },
    Hedge {
        req: usize,
        next: usize,
    },
    Rescue {
        req: usize,
    },
    Membership(usize),
    /// Periodic anti-entropy sweep at `node`.
    AeSweep {
        node: u32,
    },
    /// Periodic gossip round `round` at `node`.
    GossipRound {
        node: u32,
        round: u64,
    },
}

/// The simulated fleet. Build once, [`Cluster::run`] per soak; node
/// caches stay warm across runs.
pub struct Cluster<O: PromptOptimizer> {
    config: ClusterConfig,
    nodes: Vec<Node<O>>,
    /// Simulated clock at the end of the last run — the instant at which
    /// [`Cluster::membership_view`] evaluates stamp ages.
    last_now: u64,
}

impl<O: PromptOptimizer> Cluster<O> {
    /// Builds the fleet; `optimizer(node, replica)` supplies each node's
    /// pool members.
    pub fn new(config: ClusterConfig, mut optimizer: impl FnMut(u32, usize) -> O) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        assert!(config.replication > 0, "replication must be positive");
        assert!(
            config.replication <= config.nodes,
            "replication factor {} exceeds the {}-node fleet: every key would need more \
             candidate replicas than there are nodes; lower ClusterConfig::replication or \
             grow the fleet (HRW already clamps to the live count when nodes die at runtime)",
            config.replication,
            config.nodes,
        );
        let initial_live: Vec<u32> =
            (0..config.nodes as u32).filter(|n| !config.start_dead.contains(n)).collect();
        let nodes = (0..config.nodes as u32)
            .map(|n| {
                let opts = (0..config.gateway.replicas.max(1)).map(|r| optimizer(n, r)).collect();
                let mut node = Node::new(n, &config.gateway, opts);
                node.live = !config.start_dead.contains(&n);
                if node.live {
                    // Live nodes boot knowing the initial roster; a
                    // start-dead node learns the fleet when it joins.
                    node.view.bootstrap(&initial_live, 0);
                }
                node
            })
            .collect();
        Cluster { config, nodes, last_now: 0 }
    }

    /// Number of nodes (live or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a node-less cluster (never constructed; the type permits
    /// it).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` is currently part of the fleet.
    pub fn is_live(&self, node: u32) -> bool {
        self.nodes[node as usize].live
    }

    /// Live entries in `node`'s semantic cache.
    pub fn cache_len(&self, node: u32) -> usize {
        self.nodes[node as usize].cache.len()
    }

    /// Every live `(prompt, response, version)` in `node`'s cache, sorted
    /// by prompt — the replica-convergence inspection export.
    pub fn cache_entries(&self, node: u32) -> Vec<(String, String, u64)> {
        let mut entries: Vec<(String, String, u64)> = self.nodes[node as usize]
            .cache
            .live_entries_versioned()
            .into_iter()
            .map(|(p, r, v)| (p.to_string(), r.to_string(), v))
            .collect();
        entries.sort();
        entries
    }

    /// `node`'s membership view at the end of the last run, sorted by
    /// peer id. With gossip on this is the node's *local* (possibly
    /// wrong) belief; with gossip off it is scripted ground truth.
    pub fn membership_view(&self, node: u32) -> Vec<(u32, NodeStatus)> {
        match self.config.gossip_tuning() {
            Some(t) => self.nodes[node as usize].view.statuses(self.last_now, &t),
            None => self
                .nodes
                .iter()
                .map(|n| (n.id, if n.live { NodeStatus::Alive } else { NodeStatus::Dead }))
                .collect(),
        }
    }

    /// Runs one workload per node to completion. Returns the responses
    /// (index-aligned with each node's workload) and the fleet report.
    pub fn run(&mut self, workloads: &[Vec<Request>]) -> (Vec<Vec<String>>, ClusterReport) {
        assert_eq!(workloads.len(), self.nodes.len(), "one workload per node");
        let mut span = pas_obs::span("cluster.run");
        span.items(workloads.iter().map(|w| w.len() as u64).sum());
        for node in self.nodes.iter_mut() {
            node.begin_run();
        }

        let config = &self.config;
        // Periodic sweeps re-arm only up to the horizon: the last
        // arrival/script instant plus the configured quiet period. That
        // keeps the heap finite while giving anti-entropy and gossip a
        // chaos-free convergence window at the end of the run.
        let traffic_end = workloads
            .iter()
            .flat_map(|w| w.iter().map(|r| r.arrival_ms))
            .chain(config.script.iter().map(|(at, _)| *at))
            .max()
            .unwrap_or(0);
        let mut sim = Sim {
            cfg: config,
            tuning: config.gossip_tuning(),
            horizon: traffic_end + config.quiet_ms,
            nodes: &mut self.nodes,
            reqs: Vec::new(),
            events: EventHeap::new(),
            net: NetFaults::new(config.net.clone(), config.net_seed),
            msg_seq: [0; MsgLane::ALL.len()],
            responses: workloads.iter().map(|w| vec![None; w.len()]).collect(),
            stats: ClusterReport::default(),
            handoff_changes: 0,
        };
        // Arrivals node-major: same-time ties fire lowest-node-first, a
        // pure function of the workloads.
        for (ni, workload) in workloads.iter().enumerate() {
            for (si, r) in workload.iter().enumerate() {
                let id = sim.reqs.len();
                sim.reqs.push(ReqCtx {
                    node: ni,
                    slot: si,
                    prompt: r.prompt.clone(),
                    arrival_ms: r.arrival_ms,
                    ingress: 0,
                    candidates: Vec::new(),
                    primary: None,
                    done: false,
                });
                sim.events.push(r.arrival_ms, Ev::Arrival(id));
            }
        }
        for (k, (at_ms, _)) in config.script.iter().enumerate() {
            sim.events.push(*at_ms, Ev::Membership(k));
        }
        // Per-node stagger (+id) keeps same-instant sweeps ordered by
        // node without relying on heap insertion order.
        if config.ae_interval_ms > 0 {
            for n in 0..config.nodes as u32 {
                sim.events.push(config.ae_interval_ms + u64::from(n), Ev::AeSweep { node: n });
            }
        }
        if config.gossip_interval_ms > 0 {
            for n in 0..config.nodes as u32 {
                sim.events.push(
                    config.gossip_interval_ms + u64::from(n),
                    Ev::GossipRound { node: n, round: 0 },
                );
            }
        }

        while let Some((now, ev)) = sim.events.pop() {
            sim.handle(ev, now);
        }

        let Sim { events, responses, stats: mut report, .. } = sim;
        let now = events.now();
        self.last_now = now;
        report.nodes = self.nodes.len() as u64;
        for node in self.nodes.iter_mut() {
            node.end_run(now);
            report.per_node.push(node.report.clone());
        }
        let mut fleet = GatewayReport::default();
        for r in &report.per_node {
            fleet.merge(r);
        }
        report.fleet = fleet;

        OBS_REQUESTS.add(report.fleet.requests);
        OBS_COMPLETED.add(report.fleet.completed);
        OBS_FORWARDS.add(report.forwards);
        OBS_HEDGES_FIRED.add(report.hedges_fired);
        OBS_HEDGES_WON.add(report.hedges_won);
        OBS_RESCUES.add(report.rescues);
        OBS_LOCAL_FALLBACKS.add(report.local_fallbacks);
        OBS_REBALANCE_MOVED.add(report.rebalance_moved);
        OBS_REPL_SENT.add(report.repl_sent);
        OBS_REPL_APPLIED.add(report.repl_applied);
        OBS_AE_DIGESTS.add(report.ae_digests);
        OBS_AE_REPAIRS.add(report.ae_repairs);
        OBS_GOSSIP_HEARTBEATS.add(report.gossip_heartbeats);
        OBS_GOSSIP_DEATHS.add(report.gossip_deaths);
        span.sim_ms(now);
        span.finish();

        let responses = responses
            .into_iter()
            .map(|node| node.into_iter().map(|r| r.expect("every request answered")).collect())
            .collect();
        (responses, report)
    }
}

/// Loop state for one run (borrows the cluster's nodes).
struct Sim<'a, O: PromptOptimizer> {
    cfg: &'a ClusterConfig,
    /// Detector thresholds; `None` disables gossip (ground-truth views).
    tuning: Option<GossipTuning>,
    /// Last instant at which periodic sweeps still re-arm.
    horizon: u64,
    nodes: &'a mut Vec<Node<O>>,
    reqs: Vec<ReqCtx>,
    events: EventHeap<Ev>,
    net: NetFaults,
    /// Serial message counters, one per lane — the network schedule's
    /// final coordinate. Per-lane counters mean serve traffic volume
    /// never shifts the fates of replication/gossip messages (and vice
    /// versa), which is what lets chaos sweeps vary one lane at a time.
    msg_seq: [u64; MsgLane::ALL.len()],
    responses: Vec<Vec<Option<String>>>,
    stats: ClusterReport,
    handoff_changes: u64,
}

impl<O: PromptOptimizer> Sim<'_, O> {
    fn live_ids(&self) -> Vec<u32> {
        self.nodes.iter().filter(|n| n.live).map(|n| n.id).collect()
    }

    /// The membership node `n` routes by: its own gossip view when the
    /// detector is on (stale beliefs and all), scripted ground truth
    /// otherwise. Always contains `n` itself, so candidate lists derived
    /// from it are never empty.
    fn routing_live(&self, n: u32, now: u64) -> Vec<u32> {
        match &self.tuning {
            Some(t) => self.nodes[n as usize].view.routing_live(now, t),
            None => self.live_ids(),
        }
    }

    fn handle(&mut self, ev: Ev, now: u64) {
        match ev {
            Ev::Arrival(req) => self.arrival(req, now),
            Ev::Deliver { dst, msg } => self.deliver(dst, msg, now),
            Ev::Linger { node, req } => {
                // Stale once the item left the queue (dispatched, shed, or
                // completed elsewhere); a live fire flushes the queue.
                if !self.reqs[req].done
                    && self.nodes[node as usize].queue.iter().any(|it| it.req == req)
                {
                    self.dispatch_node(node, now);
                }
            }
            Ev::CacheServe { node, members } => {
                if self.nodes[node as usize].crashed {
                    // The serve died with the node; local clients retry
                    // (forwarded requests are covered by their ingress
                    // hedge/rescue chain instead).
                    for (req, _) in members {
                        if self.reqs[req].ingress == node && !self.reqs[req].done {
                            self.retry_after_crash(req, now);
                        }
                    }
                    return;
                }
                for (req, text) in members {
                    self.complete_at(node, req, text, now);
                }
            }
            Ev::BatchDone { node, replica, members, unique_of, outcomes } => {
                if self.nodes[node as usize].crashed {
                    for it in members {
                        if self.reqs[it.req].ingress == node && !self.reqs[it.req].done {
                            self.retry_after_crash(it.req, now);
                        }
                    }
                    return;
                }
                self.batch_done(node, replica, members, unique_of, outcomes, now)
            }
            Ev::Hedge { req, next } => self.hedge(req, next, now),
            Ev::Rescue { req } => self.rescue(req, now),
            Ev::Membership(k) => self.membership(k, now),
            Ev::AeSweep { node } => self.ae_sweep(node, now),
            Ev::GossipRound { node, round } => self.gossip_round(node, round, now),
        }
    }

    fn arrival(&mut self, req: usize, now: u64) {
        self.ingest(req, now, false)
    }

    /// Re-drives a request orphaned by its node crashing: the client
    /// retries against the current fleet. Keeps the original arrival
    /// stamp (the crash delay is real latency) and does not re-count the
    /// request — the fleet saw it exactly once.
    fn retry_after_crash(&mut self, req: usize, now: u64) {
        self.reqs[req].primary = None;
        self.stats.crash_retries += 1;
        self.ingest(req, now, true);
    }

    fn ingest(&mut self, req: usize, now: u64, retry: bool) {
        let live = self.live_ids();
        if live.is_empty() {
            // Whole fleet down: the workload node answers passthrough.
            let ingress = self.reqs[req].node as u32;
            self.reqs[req].ingress = ingress;
            if !retry {
                self.nodes[ingress as usize].report.requests += 1;
            }
            self.stats.local_fallbacks += 1;
            if self.nodes[ingress as usize].crashed {
                // Even the passthrough path died: the retry degrades to
                // an immediate client-side passthrough answer.
                let text = self.reqs[req].prompt.clone();
                self.finish(req, text, now, ingress);
            } else {
                self.serve_local(ingress, req, false, now);
            }
            return;
        }
        let mut ingress = self.reqs[req].node as u32;
        if !self.nodes[ingress as usize].live {
            // Dead ingress: its clients reconnect straight to the primary
            // (ground-truth — a reconnect is a real handshake, not a
            // gossip belief).
            ingress = hrw::candidates(&self.reqs[req].prompt, &live, self.cfg.replication)[0];
            self.stats.redirects += 1;
        }
        // Routing consults the ingress node's *local* membership view;
        // with gossip on it may lag ground truth, and the hedge/rescue
        // chain absorbs any forward sent to a node that is already gone.
        let view = self.routing_live(ingress, now);
        let candidates = hrw::candidates(&self.reqs[req].prompt, &view, self.cfg.replication);
        self.reqs[req].ingress = ingress;
        self.reqs[req].candidates = candidates.clone();
        if !retry {
            self.nodes[ingress as usize].report.requests += 1;
        }

        if candidates.contains(&ingress) {
            self.serve_local(ingress, req, true, now);
        } else if let Some(pos) =
            candidates.iter().position(|&c| !self.net.partitioned(now, ingress, c))
        {
            let target = candidates[pos];
            self.reqs[req].primary = Some(target);
            self.stats.forwards += 1;
            self.send(now, ingress, target, Msg::Forward { req });
            self.events.push(now + self.cfg.hedge_ms, Ev::Hedge { req, next: pos + 1 });
        } else {
            // Every candidate unreachable: full-partition degradation.
            self.stats.local_fallbacks += 1;
            self.serve_local(ingress, req, false, now);
        }
    }

    /// Runs `req` through node `n`'s local serving path: cache lookup,
    /// admission control, queue, batch timers.
    fn serve_local(&mut self, n: u32, req: usize, cacheable: bool, now: u64) {
        let cfg = &self.cfg.gateway;
        match self.nodes[n as usize].cache.lookup(&self.reqs[req].prompt) {
            CacheOutcome::ExactHit(response) | CacheOutcome::NearHit { response, .. } => {
                self.events.push(
                    now + cfg.cache_hit_cost_ms,
                    Ev::CacheServe { node: n, members: vec![(req, response)] },
                );
            }
            CacheOutcome::Miss => {
                let node = &mut self.nodes[n as usize];
                if node.queue.len() >= cfg.queue_capacity {
                    match cfg.admission {
                        AdmissionPolicy::Reject => {
                            node.report.rejected += 1;
                            let text = self.reqs[req].prompt.clone();
                            self.complete_at(n, req, text, now);
                            return;
                        }
                        AdmissionPolicy::ShedOldest => {
                            let oldest = node.queue.pop_front().expect("full queue");
                            node.report.shed += 1;
                            let text = self.reqs[oldest.req].prompt.clone();
                            self.complete_at(n, oldest.req, text, now);
                        }
                    }
                }
                let node = &mut self.nodes[n as usize];
                node.queue.push_back(Item { req, cacheable });
                if node.queue.len() >= cfg.batch_max {
                    self.dispatch_node(n, now);
                } else {
                    self.events.push(now + cfg.batch_linger_ms, Ev::Linger { node: n, req });
                }
            }
        }
    }

    fn dispatch_node(&mut self, n: u32, now: u64) {
        self.nodes[n as usize].dispatch(&self.reqs, &self.cfg.gateway, now, &mut self.events);
    }

    fn batch_done(
        &mut self,
        n: u32,
        replica: usize,
        members: Vec<Item>,
        unique_of: Vec<usize>,
        outcomes: Vec<ServeOutcome>,
        now: u64,
    ) {
        let node = &mut self.nodes[n as usize];
        node.pool.finish(replica, outcomes.len() as u64);
        // Cache and replica accounting go per unique prompt…
        let mut installed: Vec<(usize, String)> = Vec::new();
        for (u, outcome) in outcomes.iter().enumerate() {
            let k = unique_of.iter().position(|&x| x == u).expect("owner");
            if let ServeOutcome::Served { response, replica: served_by, failovers } = outcome {
                // Install only entries this node owns (any cacheable
                // member) and only while it is part of the fleet.
                let owned = members.iter().zip(&unique_of).any(|(it, &uu)| uu == u && it.cacheable);
                if owned
                    && node.live
                    && node.cache.insert_versioned(&self.reqs[members[k].req].prompt, response, 1)
                {
                    installed.push((members[k].req, response.clone()));
                }
                node.report.failovers += failovers;
                let r = &mut node.report.per_replica[*served_by];
                r.served += 1;
                if *failovers > 0 {
                    r.failover_served += 1;
                }
            }
        }
        // …responses per member request…
        for (k, it) in members.iter().enumerate() {
            let outcome = &outcomes[unique_of[k]];
            if *outcome == ServeOutcome::Degraded {
                self.nodes[n as usize].report.degraded += 1;
            }
            let text = outcome.response_for(&self.reqs[it.req].prompt);
            self.complete_at(n, it.req, text, now);
        }
        // …then freshly installed entries fan out to the other
        // candidates, so hedged reads at replicas hit warm caches.
        if self.cfg.repl_fanout {
            for (req, response) in installed {
                self.fanout(n, req, &response, now);
            }
        }
    }

    /// Pushes a just-installed entry to every other candidate replica
    /// (per this node's own view) over the replication lane.
    fn fanout(&mut self, n: u32, req: usize, response: &str, now: u64) {
        let prompt = self.reqs[req].prompt.clone();
        let view = self.routing_live(n, now);
        let targets: Vec<u32> = hrw::candidates(&prompt, &view, self.cfg.replication)
            .into_iter()
            .filter(|&c| c != n)
            .collect();
        for dst in targets {
            self.stats.repl_sent += 1;
            self.send(
                now,
                n,
                dst,
                Msg::Replicate {
                    prompt: prompt.clone(),
                    response: response.to_string(),
                    version: 1,
                },
            );
        }
    }

    /// Node `n` finished serving `req`: answer locally or send the
    /// response back to the ingress over the network.
    fn complete_at(&mut self, n: u32, req: usize, text: String, now: u64) {
        if self.reqs[req].done {
            return; // a faster path (hedge winner, rescue) got there first
        }
        let ingress = self.reqs[req].ingress;
        if n == ingress {
            self.finish(req, text, now, n);
        } else {
            self.send(now, n, ingress, Msg::Response { req, text, server: n });
        }
    }

    /// Delivers the final answer at the ingress: response slot, completion
    /// and latency accounting, hedge-win attribution.
    fn finish(&mut self, req: usize, text: String, now: u64, server: u32) {
        let (node, slot, ingress, arrival, primary) = {
            let r = &self.reqs[req];
            (r.node, r.slot, r.ingress, r.arrival_ms, r.primary)
        };
        self.reqs[req].done = true;
        self.responses[node][slot] = Some(text);
        let report = &mut self.nodes[ingress as usize].report;
        report.completed += 1;
        report.latency.record(now - arrival);
        if primary.is_some_and(|p| server != p && server != ingress) {
            self.stats.hedges_won += 1;
        }
    }

    /// Commits a message to the network at `at` (≥ now for paced
    /// transfers): refused on a partitioned link, otherwise delivered per
    /// the seeded schedule of its lane (possibly dropped or duplicated,
    /// each copy with its own latency).
    fn send(&mut self, at: u64, src: u32, dst: u32, msg: Msg) {
        if self.net.partitioned(at, src, dst) {
            self.stats.net_cut += 1;
            return;
        }
        let lane = msg.lane();
        let seq = self.msg_seq[lane.index()];
        self.msg_seq[lane.index()] += 1;
        let copies = self.net.deliveries(lane, src, dst, seq);
        match copies.len() {
            0 => self.stats.net_drops += 1,
            1 => {}
            _ => self.stats.net_duplicates += 1,
        }
        for latency in copies {
            self.events.push(at + latency, Ev::Deliver { dst, msg: msg.clone() });
        }
    }

    fn deliver(&mut self, dst: u32, msg: Msg, now: u64) {
        match msg {
            Msg::Forward { req } => {
                // Late or duplicated copies for settled requests — and
                // anything addressed to a departed node — evaporate; the
                // ingress hedge/rescue chain covers the loss.
                if self.reqs[req].done || !self.nodes[dst as usize].live {
                    return;
                }
                self.serve_local(dst, req, true, now);
            }
            Msg::Response { req, text, server } => {
                if self.reqs[req].done {
                    return;
                }
                self.finish(req, text, now, server);
            }
            Msg::Replicate { prompt, response, version } => {
                if !self.nodes[dst as usize].live {
                    return;
                }
                // Only candidates (per the receiver's own view) hold
                // replicas; anything else evaporates.
                let view = self.routing_live(dst, now);
                if !hrw::candidates(&prompt, &view, self.cfg.replication).contains(&dst) {
                    return;
                }
                if self.nodes[dst as usize].cache.insert_versioned(&prompt, &response, version) {
                    self.stats.repl_applied += 1;
                } else {
                    // Same or newer version already present — duplicated
                    // replication messages are idempotent by design.
                    self.stats.repl_stale += 1;
                }
            }
            Msg::Transfer { prompt, response, version } => {
                if !self.nodes[dst as usize].live {
                    return;
                }
                // Counted at delivery: a transfer the network ate is not
                // "moved" (anti-entropy repairs it later). Already-warm
                // replicas still count — the entry reached its new
                // primary, which is what the counter promises.
                self.stats.rebalance_moved += 1;
                let _ =
                    self.nodes[dst as usize].cache.insert_versioned(&prompt, &response, version);
            }
            Msg::Digest { from, entries } => {
                if !self.nodes[dst as usize].live {
                    return;
                }
                self.ae_respond(dst, from, &entries, now);
            }
            Msg::Repair { prompt, response, version } => {
                if !self.nodes[dst as usize].live {
                    return;
                }
                let view = self.routing_live(dst, now);
                if !hrw::candidates(&prompt, &view, self.cfg.replication).contains(&dst) {
                    return;
                }
                if self.nodes[dst as usize].cache.insert_versioned(&prompt, &response, version) {
                    self.stats.ae_repairs += 1;
                    self.stats.ae_last_repair_ms = self.stats.ae_last_repair_ms.max(now);
                }
            }
            Msg::Heartbeat { heard, departed } => {
                if !self.nodes[dst as usize].live {
                    return;
                }
                self.nodes[dst as usize].view.merge(&heard, &departed);
            }
            Msg::Departure { from, at } => {
                if !self.nodes[dst as usize].live {
                    return;
                }
                self.nodes[dst as usize].view.note_departure(from, at);
            }
        }
    }

    fn hedge(&mut self, req: usize, next: usize, now: u64) {
        if self.reqs[req].done {
            return;
        }
        let ingress = self.reqs[req].ingress;
        let candidates = self.reqs[req].candidates.clone();
        let found = candidates
            .iter()
            .enumerate()
            .skip(next)
            .find(|&(_, &c)| self.nodes[c as usize].live && !self.net.partitioned(now, ingress, c))
            .map(|(pos, &c)| (pos, c));
        match found {
            Some((pos, c)) => {
                self.stats.hedges_fired += 1;
                self.send(now, ingress, c, Msg::Forward { req });
                self.events.push(now + self.cfg.hedge_ms, Ev::Hedge { req, next: pos + 1 });
            }
            // Chain exhausted: the rescue timer guarantees completion.
            None => self.events.push(now + self.cfg.rescue_ms, Ev::Rescue { req }),
        }
    }

    fn rescue(&mut self, req: usize, now: u64) {
        if self.reqs[req].done {
            return;
        }
        self.stats.rescues += 1;
        let ingress = self.reqs[req].ingress;
        let cacheable = self.reqs[req].candidates.contains(&ingress);
        self.serve_local(ingress, req, cacheable, now);
    }

    fn membership(&mut self, k: usize, now: u64) {
        let (_, change) = self.cfg.script[k];
        match change {
            Membership::Join(n) => {
                if self.nodes[n as usize].live {
                    return;
                }
                let old_live = self.live_ids();
                self.nodes[n as usize].live = true;
                self.nodes[n as usize].crashed = false;
                let new_live = self.live_ids();
                if self.tuning.is_some() {
                    // The joiner bootstraps from the current roster (its
                    // operator-supplied contact list) and announces
                    // itself to every member immediately, so routing
                    // starts sending it traffic without waiting a round.
                    self.nodes[n as usize].view.bootstrap(&new_live, now);
                    let (heard, departed) = self.nodes[n as usize].view.payload();
                    for &p in new_live.iter().filter(|&&p| p != n) {
                        self.stats.gossip_heartbeats += 1;
                        self.send(
                            now,
                            n,
                            p,
                            Msg::Heartbeat { heard: heard.clone(), departed: departed.clone() },
                        );
                    }
                }
                self.rebalance(&old_live, &new_live, now);
            }
            Membership::Leave(n) => {
                if !self.nodes[n as usize].live {
                    return;
                }
                // Graceful decommission: flush queued work (its batches
                // complete in flight; responses still travel), then hand
                // primaries off and depart.
                while !self.nodes[n as usize].queue.is_empty() {
                    self.dispatch_node(n, now);
                }
                if self.tuning.is_some() {
                    // Announce the departure; peers that miss it (drops,
                    // partitions) time the leaver out instead.
                    self.nodes[n as usize].view.note_departure(n, now);
                    let peers: Vec<u32> = self.live_ids().into_iter().filter(|&p| p != n).collect();
                    for p in peers {
                        self.send(now, n, p, Msg::Departure { from: n, at: now });
                    }
                }
                let old_live = self.live_ids();
                self.nodes[n as usize].live = false;
                let new_live = self.live_ids();
                self.rebalance(&old_live, &new_live, now);
            }
            Membership::Crash(n) => {
                if !self.nodes[n as usize].live {
                    return;
                }
                self.nodes[n as usize].live = false;
                self.nodes[n as usize].crashed = true;
                self.stats.crashes += 1;
                // No drain, no hand-off, no announcement. Queued work
                // dies with the node; its clients retry against the
                // surviving fleet (in-flight batch/cache events are
                // similarly retried when they fire at the corpse).
                let orphans: Vec<usize> =
                    self.nodes[n as usize].queue.drain(..).map(|it| it.req).collect();
                for req in orphans {
                    if !self.reqs[req].done {
                        self.retry_after_crash(req, now);
                    }
                }
            }
        }
    }

    /// Moves every key whose *primary* changed between the memberships to
    /// its new primary — HRW guarantees that is the minimal set. Donors
    /// keep their (now stale) copies; LRU ages them out.
    ///
    /// The move is *in-band*: each entry becomes one [`Msg::Transfer`] on
    /// the transfer lane, paced [`ClusterConfig::transfer_pace_ms`] apart
    /// per link — a big hand-off occupies simulated time, races arriving
    /// traffic, and can lose members to drops or a mid-move partition
    /// (anti-entropy repairs the survivors' gaps afterwards).
    fn rebalance(&mut self, old_live: &[u32], new_live: &[u32], now: u64) {
        self.stats.rebalances += 1;
        if new_live.is_empty() {
            return;
        }
        // Deterministic move set: donors in id order, entries in LRU
        // order, grouped per (src, dst) link.
        type MoveSet = BTreeMap<(u32, u32), Vec<(String, String, u64)>>;
        let mut moves: MoveSet = BTreeMap::new();
        for &s in old_live {
            for (prompt, response, version) in self.nodes[s as usize].cache.live_entries_versioned()
            {
                if hrw::owner(prompt, old_live) != Some(s) {
                    continue;
                }
                let new_primary = hrw::owner(prompt, new_live).expect("non-empty membership");
                if new_primary != s {
                    moves.entry((s, new_primary)).or_default().push((
                        prompt.to_string(),
                        response.to_string(),
                        version,
                    ));
                }
            }
        }
        let change = self.handoff_changes;
        self.handoff_changes += 1;
        for ((src, dst), entries) in &moves {
            let entries = match &self.cfg.handoff_dir {
                // Real hand-off: the donor writes a segment log, the
                // receiver reopens and replays it. Same bytes discipline
                // as any pas-store producer; crash legs apply.
                Some(dir) => {
                    let path = dir.join(format!("change{change:03}-n{src}-to-n{dst}"));
                    let sc =
                        StoreConfig { fingerprint: HANDOFF_FINGERPRINT, ..StoreConfig::default() };
                    let (mut log, existing) =
                        SegmentLog::open(&path, sc.clone(), None).expect("handoff log open");
                    assert!(existing.is_empty(), "handoff log must start fresh");
                    for (i, (prompt, response, version)) in entries.iter().enumerate() {
                        let record = Record::Meta {
                            id: i as u64,
                            meta: RecordMeta {
                                category: "handoff".into(),
                                degraded: false,
                                stamp: i as u64,
                                fields: vec![
                                    ("p".into(), prompt.clone()),
                                    ("r".into(), response.clone()),
                                    ("v".into(), version.to_string()),
                                ],
                            },
                        };
                        log.append(&record).expect("handoff append");
                    }
                    drop(log);
                    let (_, records) = SegmentLog::open(&path, sc, None).expect("handoff replay");
                    records
                        .iter()
                        .filter_map(|rec| match rec {
                            Record::Meta { meta, .. } => Some((
                                meta.field("p")?.to_string(),
                                meta.field("r")?.to_string(),
                                meta.field("v").and_then(|v| v.parse().ok()).unwrap_or(1),
                            )),
                            _ => None,
                        })
                        .collect()
                }
                None => entries.clone(),
            };
            for (i, (prompt, response, version)) in entries.into_iter().enumerate() {
                let at = now + self.cfg.transfer_pace_ms * i as u64;
                self.stats.transfers_sent += 1;
                self.send(at, *src, *dst, Msg::Transfer { prompt, response, version });
            }
        }
    }

    /// One anti-entropy sweep at `n`: pick the next peer in the
    /// round-robin rotation (full pair coverage every `peers` rounds, so
    /// convergence needs no luck) and send it this cache's digest.
    fn ae_sweep(&mut self, n: u32, now: u64) {
        // Re-arm first, even while down — a rejoining node resumes
        // sweeping on its own schedule.
        let next = now + self.cfg.ae_interval_ms;
        if next <= self.horizon {
            self.events.push(next, Ev::AeSweep { node: n });
        }
        if !self.nodes[n as usize].live {
            return;
        }
        let peers: Vec<u32> = self.routing_live(n, now).into_iter().filter(|&p| p != n).collect();
        if peers.is_empty() {
            return;
        }
        let round = self.nodes[n as usize].ae_round;
        self.nodes[n as usize].ae_round += 1;
        let peer = peers[(round % peers.len() as u64) as usize];
        let entries = self.nodes[n as usize].cache.digest();
        self.stats.ae_digests += 1;
        self.send(now, n, peer, Msg::Digest { from: n, entries });
    }

    /// Node `b` received `a`'s digest: push back every entry `b` holds
    /// that `a` is missing or holds stale, provided both sides are
    /// candidates for it per `b`'s view (anti-entropy replicates
    /// assignments, it does not spray the whole keyspace everywhere).
    fn ae_respond(&mut self, b: u32, a: u32, digest: &[(u64, u64)], now: u64) {
        let view = self.routing_live(b, now);
        let mut repairs: Vec<(String, String, u64)> = Vec::new();
        for (prompt, response, version) in self.nodes[b as usize].cache.live_entries_versioned() {
            let h = entry_hash(prompt);
            let theirs = digest.binary_search_by_key(&h, |e| e.0).ok().map(|i| digest[i].1);
            if theirs.is_some_and(|v| v >= version) {
                continue;
            }
            let cands = hrw::candidates(prompt, &view, self.cfg.replication);
            if cands.contains(&a) && cands.contains(&b) {
                repairs.push((prompt.to_string(), response.to_string(), version));
            }
        }
        for (prompt, response, version) in repairs {
            self.send(now, b, a, Msg::Repair { prompt, response, version });
        }
    }

    /// One gossip round at `n`: stamp self, re-derive peer statuses
    /// (counting detector transitions and false deaths), and push the
    /// whole view to a seeded pick of fanout peers.
    fn gossip_round(&mut self, n: u32, round: u64, now: u64) {
        let next = now + self.cfg.gossip_interval_ms;
        if next <= self.horizon {
            self.events.push(next, Ev::GossipRound { node: n, round: round + 1 });
        }
        if !self.nodes[n as usize].live {
            return;
        }
        let Some(t) = self.tuning else { return };
        self.nodes[n as usize].view.mark_self(now);
        let transitions = self.nodes[n as usize].view.refresh(now, &t);
        for (peer, _, status) in transitions {
            match status {
                NodeStatus::Suspect => self.stats.gossip_suspects += 1,
                NodeStatus::Dead => {
                    self.stats.gossip_deaths += 1;
                    if self.nodes[peer as usize].live && !self.net.partitioned(now, n, peer) {
                        self.stats.gossip_false_deaths += 1;
                    }
                }
                NodeStatus::Alive => {}
            }
        }
        let targets = self.nodes[n as usize].view.gossip_targets(now, &t, self.cfg.net_seed, round);
        let (heard, departed) = self.nodes[n as usize].view.payload();
        for dst in targets {
            self.stats.gossip_heartbeats += 1;
            self.send(
                now,
                n,
                dst,
                Msg::Heartbeat { heard: heard.clone(), departed: departed.clone() },
            );
        }
    }
}

//! The multi-node discrete-event loop: HRW-sharded routing, hedged
//! cross-shard forwards, seeded network chaos, membership changes with
//! state hand-off, and fleet accounting.
//!
//! One [`EventHeap`] drives the whole fleet. Requests arrive at their
//! workload's node (the *ingress*); the key's HRW candidate list decides
//! where they are served:
//!
//! - ingress ∈ candidates → served locally (lookup, queue, batch — the
//!   single-node path from `pas-gateway`, now per node).
//! - otherwise → *forwarded* to the first reachable candidate. A hedge
//!   timer arms: if no response lands within `hedge_ms`, a backup probe
//!   goes to the next candidate (first response wins, losers are
//!   discarded on arrival). When the candidate chain is exhausted, a
//!   rescue timer serves the request locally as passthrough — so every
//!   request completes even if the network eats every message.
//! - every candidate link partitioned → immediate *local fallback*
//!   (served through the local pool, not cached locally): the
//!   full-partition degradation analogue of the plug-and-play guarantee.
//!
//! Membership changes are scripted, simulated-time events. A leave drains
//! the node's queue (graceful decommission), then hands the keys it
//! *primaries* to their new owners; a join pulls primaries over the same
//! way. Hand-off travels through real `pas-store` segment logs when
//! [`ClusterConfig::handoff_dir`] is set — written, closed, reopened, and
//! replayed — and the resulting cluster state is identical to the
//! in-memory path.
//!
//! Determinism: the loop is serial; parallelism exists only inside a
//! node's batch dispatch (`pas_par::par_map`, item-ordered). Network
//! fates are pure functions of `(net_seed, src, dst, msg)` with `msg`
//! assigned serially, and all tie-breaks go through the `(time, seq)`
//! heap — so responses and the folded [`ClusterReport`] are bit-identical
//! at any worker-thread count.

use std::collections::BTreeMap;
use std::path::PathBuf;

use pas_core::PromptOptimizer;
use pas_fault::{NetFaultProfile, NetFaults};
use pas_gateway::{
    AdmissionPolicy, CacheOutcome, EventHeap, GatewayConfig, GatewayReport, Request, ServeOutcome,
    WorkloadConfig,
};
use pas_store::{Record, RecordMeta, SegmentLog, StoreConfig};

use crate::hrw;
use crate::node::{Item, Node};
use crate::report::ClusterReport;

// Aggregate counters are charged once per run from the finished report,
// following the gateway convention; golden metrics fixtures never run a
// cluster, so these names stay out of them.
static OBS_REQUESTS: pas_obs::Counter = pas_obs::Counter::new("cluster.requests");
static OBS_COMPLETED: pas_obs::Counter = pas_obs::Counter::new("cluster.completed");
static OBS_FORWARDS: pas_obs::Counter = pas_obs::Counter::new("cluster.forwards");
static OBS_HEDGES_FIRED: pas_obs::Counter = pas_obs::Counter::new("cluster.hedges.fired");
static OBS_HEDGES_WON: pas_obs::Counter = pas_obs::Counter::new("cluster.hedges.won");
static OBS_RESCUES: pas_obs::Counter = pas_obs::Counter::new("cluster.rescues");
static OBS_LOCAL_FALLBACKS: pas_obs::Counter = pas_obs::Counter::new("cluster.local_fallbacks");
static OBS_REBALANCE_MOVED: pas_obs::Counter = pas_obs::Counter::new("cluster.rebalance.moved");

/// Fingerprint stamped on hand-off segment logs so a stray log from some
/// other producer is rejected at open.
const HANDOFF_FINGERPRINT: u64 = 0x4a0f_f10a_d0ff_0001;

/// A scripted membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// Node joins (or rejoins) the fleet and receives its primaries.
    Join(u32),
    /// Node drains its queue, hands its primaries off, and departs.
    Leave(u32),
}

/// Cluster tuning knobs on top of the per-node [`GatewayConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulated gateway nodes (ids `0..nodes`).
    pub nodes: usize,
    /// HRW candidate-set size per key (primary + replicas).
    pub replication: usize,
    /// Per-node serving knobs; each node derives its own fault seed.
    pub gateway: GatewayConfig,
    /// Simulated network behaviour (latency, loss, partitions).
    pub net: NetFaultProfile,
    /// Seed for the network schedule.
    pub net_seed: u64,
    /// Delay before a backup probe goes to the next candidate.
    pub hedge_ms: u64,
    /// Delay before an exhausted hedge chain serves locally.
    pub rescue_ms: u64,
    /// Nodes built dead (they come up through a scripted `Join`).
    pub start_dead: Vec<u32>,
    /// Scripted membership changes as `(at_ms, change)` pairs.
    pub script: Vec<(u64, Membership)>,
    /// When set, rebalance hand-off is written to and replayed from
    /// `pas-store` segment logs under this directory; when `None` the
    /// same entries move in memory (identical resulting state).
    pub handoff_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            gateway: GatewayConfig::default(),
            net: NetFaultProfile::none(),
            net_seed: 0x4e72,
            hedge_ms: 12,
            rescue_ms: 40,
            start_dead: Vec::new(),
            script: Vec::new(),
            handoff_dir: None,
        }
    }
}

/// Per-node workloads for a fleet soak: node `n` gets `base.for_node(n)`
/// traffic — decorrelated streams, one fleet seed.
pub fn fleet_workloads(base: &WorkloadConfig, nodes: usize) -> Vec<Vec<Request>> {
    (0..nodes).map(|n| pas_gateway::generate(&base.for_node(n as u32))).collect()
}

/// Per-request simulation state.
pub(crate) struct ReqCtx {
    /// Workload coordinates (node index, position) for the response slot.
    node: usize,
    slot: usize,
    pub prompt: String,
    arrival_ms: u64,
    /// The node that accounts this request (workload node, or the primary
    /// owner when the workload node is dead).
    ingress: u32,
    candidates: Vec<u32>,
    /// The first forward target, when the request was forwarded at all.
    primary: Option<u32>,
    done: bool,
}

/// A message on the simulated network.
#[derive(Clone)]
pub(crate) enum Msg {
    /// Serve `req` here (the receiver is a candidate for its key).
    Forward { req: usize },
    /// `server`'s answer for `req`, returning to the ingress.
    Response { req: usize, text: String, server: u32 },
}

/// Cluster loop events (see module docs for the flow).
pub(crate) enum Ev {
    Arrival(usize),
    Deliver {
        dst: u32,
        msg: Msg,
    },
    Linger {
        node: u32,
        req: usize,
    },
    CacheServe {
        node: u32,
        members: Vec<(usize, String)>,
    },
    BatchDone {
        node: u32,
        replica: usize,
        members: Vec<Item>,
        unique_of: Vec<usize>,
        outcomes: Vec<ServeOutcome>,
    },
    Hedge {
        req: usize,
        next: usize,
    },
    Rescue {
        req: usize,
    },
    Membership(usize),
}

/// The simulated fleet. Build once, [`Cluster::run`] per soak; node
/// caches stay warm across runs.
pub struct Cluster<O: PromptOptimizer> {
    config: ClusterConfig,
    nodes: Vec<Node<O>>,
}

impl<O: PromptOptimizer> Cluster<O> {
    /// Builds the fleet; `optimizer(node, replica)` supplies each node's
    /// pool members.
    pub fn new(config: ClusterConfig, mut optimizer: impl FnMut(u32, usize) -> O) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        assert!(config.replication > 0, "replication must be positive");
        let nodes = (0..config.nodes as u32)
            .map(|n| {
                let opts = (0..config.gateway.replicas.max(1)).map(|r| optimizer(n, r)).collect();
                let mut node = Node::new(n, &config.gateway, opts);
                node.live = !config.start_dead.contains(&n);
                node
            })
            .collect();
        Cluster { config, nodes }
    }

    /// Number of nodes (live or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a node-less cluster (never constructed; the type permits
    /// it).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` is currently part of the fleet.
    pub fn is_live(&self, node: u32) -> bool {
        self.nodes[node as usize].live
    }

    /// Live entries in `node`'s semantic cache.
    pub fn cache_len(&self, node: u32) -> usize {
        self.nodes[node as usize].cache.len()
    }

    /// Runs one workload per node to completion. Returns the responses
    /// (index-aligned with each node's workload) and the fleet report.
    pub fn run(&mut self, workloads: &[Vec<Request>]) -> (Vec<Vec<String>>, ClusterReport) {
        assert_eq!(workloads.len(), self.nodes.len(), "one workload per node");
        let mut span = pas_obs::span("cluster.run");
        span.items(workloads.iter().map(|w| w.len() as u64).sum());
        for node in self.nodes.iter_mut() {
            node.begin_run();
        }

        let config = &self.config;
        let mut sim = Sim {
            cfg: config,
            nodes: &mut self.nodes,
            reqs: Vec::new(),
            events: EventHeap::new(),
            net: NetFaults::new(config.net.clone(), config.net_seed),
            msg_seq: 0,
            responses: workloads.iter().map(|w| vec![None; w.len()]).collect(),
            stats: ClusterReport::default(),
            handoff_changes: 0,
        };
        // Arrivals node-major: same-time ties fire lowest-node-first, a
        // pure function of the workloads.
        for (ni, workload) in workloads.iter().enumerate() {
            for (si, r) in workload.iter().enumerate() {
                let id = sim.reqs.len();
                sim.reqs.push(ReqCtx {
                    node: ni,
                    slot: si,
                    prompt: r.prompt.clone(),
                    arrival_ms: r.arrival_ms,
                    ingress: 0,
                    candidates: Vec::new(),
                    primary: None,
                    done: false,
                });
                sim.events.push(r.arrival_ms, Ev::Arrival(id));
            }
        }
        for (k, (at_ms, _)) in config.script.iter().enumerate() {
            sim.events.push(*at_ms, Ev::Membership(k));
        }

        while let Some((now, ev)) = sim.events.pop() {
            sim.handle(ev, now);
        }

        let Sim { events, responses, stats: mut report, .. } = sim;
        let now = events.now();
        report.nodes = self.nodes.len() as u64;
        for node in self.nodes.iter_mut() {
            node.end_run(now);
            report.per_node.push(node.report.clone());
        }
        let mut fleet = GatewayReport::default();
        for r in &report.per_node {
            fleet.merge(r);
        }
        report.fleet = fleet;

        OBS_REQUESTS.add(report.fleet.requests);
        OBS_COMPLETED.add(report.fleet.completed);
        OBS_FORWARDS.add(report.forwards);
        OBS_HEDGES_FIRED.add(report.hedges_fired);
        OBS_HEDGES_WON.add(report.hedges_won);
        OBS_RESCUES.add(report.rescues);
        OBS_LOCAL_FALLBACKS.add(report.local_fallbacks);
        OBS_REBALANCE_MOVED.add(report.rebalance_moved);
        span.sim_ms(now);
        span.finish();

        let responses = responses
            .into_iter()
            .map(|node| node.into_iter().map(|r| r.expect("every request answered")).collect())
            .collect();
        (responses, report)
    }
}

/// Loop state for one run (borrows the cluster's nodes).
struct Sim<'a, O: PromptOptimizer> {
    cfg: &'a ClusterConfig,
    nodes: &'a mut Vec<Node<O>>,
    reqs: Vec<ReqCtx>,
    events: EventHeap<Ev>,
    net: NetFaults,
    /// Serial message counter — the network schedule's third coordinate.
    msg_seq: u64,
    responses: Vec<Vec<Option<String>>>,
    stats: ClusterReport,
    handoff_changes: u64,
}

impl<O: PromptOptimizer> Sim<'_, O> {
    fn live_ids(&self) -> Vec<u32> {
        self.nodes.iter().filter(|n| n.live).map(|n| n.id).collect()
    }

    fn handle(&mut self, ev: Ev, now: u64) {
        match ev {
            Ev::Arrival(req) => self.arrival(req, now),
            Ev::Deliver { dst, msg } => self.deliver(dst, msg, now),
            Ev::Linger { node, req } => {
                // Stale once the item left the queue (dispatched, shed, or
                // completed elsewhere); a live fire flushes the queue.
                if !self.reqs[req].done
                    && self.nodes[node as usize].queue.iter().any(|it| it.req == req)
                {
                    self.dispatch_node(node, now);
                }
            }
            Ev::CacheServe { node, members } => {
                for (req, text) in members {
                    self.complete_at(node, req, text, now);
                }
            }
            Ev::BatchDone { node, replica, members, unique_of, outcomes } => {
                self.batch_done(node, replica, members, unique_of, outcomes, now)
            }
            Ev::Hedge { req, next } => self.hedge(req, next, now),
            Ev::Rescue { req } => self.rescue(req, now),
            Ev::Membership(k) => self.membership(k, now),
        }
    }

    fn arrival(&mut self, req: usize, now: u64) {
        let live = self.live_ids();
        if live.is_empty() {
            // Whole fleet down: the workload node answers passthrough.
            let ingress = self.reqs[req].node as u32;
            self.reqs[req].ingress = ingress;
            self.nodes[ingress as usize].report.requests += 1;
            self.stats.local_fallbacks += 1;
            self.serve_local(ingress, req, false, now);
            return;
        }
        let candidates = hrw::candidates(&self.reqs[req].prompt, &live, self.cfg.replication);
        let mut ingress = self.reqs[req].node as u32;
        if !self.nodes[ingress as usize].live {
            // Dead ingress: its clients reconnect straight to the primary.
            ingress = candidates[0];
            self.stats.redirects += 1;
        }
        self.reqs[req].ingress = ingress;
        self.reqs[req].candidates = candidates.clone();
        self.nodes[ingress as usize].report.requests += 1;

        if candidates.contains(&ingress) {
            self.serve_local(ingress, req, true, now);
        } else if let Some(pos) =
            candidates.iter().position(|&c| !self.net.partitioned(now, ingress, c))
        {
            let target = candidates[pos];
            self.reqs[req].primary = Some(target);
            self.stats.forwards += 1;
            self.send(now, ingress, target, Msg::Forward { req });
            self.events.push(now + self.cfg.hedge_ms, Ev::Hedge { req, next: pos + 1 });
        } else {
            // Every candidate unreachable: full-partition degradation.
            self.stats.local_fallbacks += 1;
            self.serve_local(ingress, req, false, now);
        }
    }

    /// Runs `req` through node `n`'s local serving path: cache lookup,
    /// admission control, queue, batch timers.
    fn serve_local(&mut self, n: u32, req: usize, cacheable: bool, now: u64) {
        let cfg = &self.cfg.gateway;
        match self.nodes[n as usize].cache.lookup(&self.reqs[req].prompt) {
            CacheOutcome::ExactHit(response) | CacheOutcome::NearHit { response, .. } => {
                self.events.push(
                    now + cfg.cache_hit_cost_ms,
                    Ev::CacheServe { node: n, members: vec![(req, response)] },
                );
            }
            CacheOutcome::Miss => {
                let node = &mut self.nodes[n as usize];
                if node.queue.len() >= cfg.queue_capacity {
                    match cfg.admission {
                        AdmissionPolicy::Reject => {
                            node.report.rejected += 1;
                            let text = self.reqs[req].prompt.clone();
                            self.complete_at(n, req, text, now);
                            return;
                        }
                        AdmissionPolicy::ShedOldest => {
                            let oldest = node.queue.pop_front().expect("full queue");
                            node.report.shed += 1;
                            let text = self.reqs[oldest.req].prompt.clone();
                            self.complete_at(n, oldest.req, text, now);
                        }
                    }
                }
                let node = &mut self.nodes[n as usize];
                node.queue.push_back(Item { req, cacheable });
                if node.queue.len() >= cfg.batch_max {
                    self.dispatch_node(n, now);
                } else {
                    self.events.push(now + cfg.batch_linger_ms, Ev::Linger { node: n, req });
                }
            }
        }
    }

    fn dispatch_node(&mut self, n: u32, now: u64) {
        self.nodes[n as usize].dispatch(&self.reqs, &self.cfg.gateway, now, &mut self.events);
    }

    fn batch_done(
        &mut self,
        n: u32,
        replica: usize,
        members: Vec<Item>,
        unique_of: Vec<usize>,
        outcomes: Vec<ServeOutcome>,
        now: u64,
    ) {
        let node = &mut self.nodes[n as usize];
        node.pool.finish(replica, outcomes.len() as u64);
        // Cache and replica accounting go per unique prompt…
        for (u, outcome) in outcomes.iter().enumerate() {
            let k = unique_of.iter().position(|&x| x == u).expect("owner");
            if let ServeOutcome::Served { response, replica: served_by, failovers } = outcome {
                // Install only entries this node owns (any cacheable
                // member) and only while it is part of the fleet.
                let owned = members.iter().zip(&unique_of).any(|(it, &uu)| uu == u && it.cacheable);
                if owned && node.live {
                    node.cache.insert(&self.reqs[members[k].req].prompt, response);
                }
                node.report.failovers += failovers;
                let r = &mut node.report.per_replica[*served_by];
                r.served += 1;
                if *failovers > 0 {
                    r.failover_served += 1;
                }
            }
        }
        // …responses per member request.
        for (k, it) in members.iter().enumerate() {
            let outcome = &outcomes[unique_of[k]];
            if *outcome == ServeOutcome::Degraded {
                self.nodes[n as usize].report.degraded += 1;
            }
            let text = outcome.response_for(&self.reqs[it.req].prompt);
            self.complete_at(n, it.req, text, now);
        }
    }

    /// Node `n` finished serving `req`: answer locally or send the
    /// response back to the ingress over the network.
    fn complete_at(&mut self, n: u32, req: usize, text: String, now: u64) {
        if self.reqs[req].done {
            return; // a faster path (hedge winner, rescue) got there first
        }
        let ingress = self.reqs[req].ingress;
        if n == ingress {
            self.finish(req, text, now, n);
        } else {
            self.send(now, n, ingress, Msg::Response { req, text, server: n });
        }
    }

    /// Delivers the final answer at the ingress: response slot, completion
    /// and latency accounting, hedge-win attribution.
    fn finish(&mut self, req: usize, text: String, now: u64, server: u32) {
        let (node, slot, ingress, arrival, primary) = {
            let r = &self.reqs[req];
            (r.node, r.slot, r.ingress, r.arrival_ms, r.primary)
        };
        self.reqs[req].done = true;
        self.responses[node][slot] = Some(text);
        let report = &mut self.nodes[ingress as usize].report;
        report.completed += 1;
        report.latency.record(now - arrival);
        if primary.is_some_and(|p| server != p && server != ingress) {
            self.stats.hedges_won += 1;
        }
    }

    /// Commits a message to the network: refused on a partitioned link,
    /// otherwise delivered per the seeded schedule (possibly dropped or
    /// duplicated, each copy with its own latency).
    fn send(&mut self, now: u64, src: u32, dst: u32, msg: Msg) {
        if self.net.partitioned(now, src, dst) {
            self.stats.net_cut += 1;
            return;
        }
        let copies = self.net.deliveries(src, dst, self.msg_seq);
        self.msg_seq += 1;
        match copies.len() {
            0 => self.stats.net_drops += 1,
            1 => {}
            _ => self.stats.net_duplicates += 1,
        }
        for latency in copies {
            self.events.push(now + latency, Ev::Deliver { dst, msg: msg.clone() });
        }
    }

    fn deliver(&mut self, dst: u32, msg: Msg, now: u64) {
        match msg {
            Msg::Forward { req } => {
                // Late or duplicated copies for settled requests — and
                // anything addressed to a departed node — evaporate; the
                // ingress hedge/rescue chain covers the loss.
                if self.reqs[req].done || !self.nodes[dst as usize].live {
                    return;
                }
                self.serve_local(dst, req, true, now);
            }
            Msg::Response { req, text, server } => {
                if self.reqs[req].done {
                    return;
                }
                self.finish(req, text, now, server);
            }
        }
    }

    fn hedge(&mut self, req: usize, next: usize, now: u64) {
        if self.reqs[req].done {
            return;
        }
        let ingress = self.reqs[req].ingress;
        let candidates = self.reqs[req].candidates.clone();
        let found = candidates
            .iter()
            .enumerate()
            .skip(next)
            .find(|&(_, &c)| self.nodes[c as usize].live && !self.net.partitioned(now, ingress, c))
            .map(|(pos, &c)| (pos, c));
        match found {
            Some((pos, c)) => {
                self.stats.hedges_fired += 1;
                self.send(now, ingress, c, Msg::Forward { req });
                self.events.push(now + self.cfg.hedge_ms, Ev::Hedge { req, next: pos + 1 });
            }
            // Chain exhausted: the rescue timer guarantees completion.
            None => self.events.push(now + self.cfg.rescue_ms, Ev::Rescue { req }),
        }
    }

    fn rescue(&mut self, req: usize, now: u64) {
        if self.reqs[req].done {
            return;
        }
        self.stats.rescues += 1;
        let ingress = self.reqs[req].ingress;
        let cacheable = self.reqs[req].candidates.contains(&ingress);
        self.serve_local(ingress, req, cacheable, now);
    }

    fn membership(&mut self, k: usize, now: u64) {
        let (_, change) = self.cfg.script[k];
        match change {
            Membership::Join(n) => {
                if self.nodes[n as usize].live {
                    return;
                }
                let old_live = self.live_ids();
                self.nodes[n as usize].live = true;
                let new_live = self.live_ids();
                self.rebalance(&old_live, &new_live);
            }
            Membership::Leave(n) => {
                if !self.nodes[n as usize].live {
                    return;
                }
                // Graceful decommission: flush queued work (its batches
                // complete in flight; responses still travel), then hand
                // primaries off and depart.
                while !self.nodes[n as usize].queue.is_empty() {
                    self.dispatch_node(n, now);
                }
                let old_live = self.live_ids();
                self.nodes[n as usize].live = false;
                let new_live = self.live_ids();
                self.rebalance(&old_live, &new_live);
            }
        }
    }

    /// Moves every key whose *primary* changed between the memberships to
    /// its new primary — HRW guarantees that is the minimal set. Donors
    /// keep their (now stale) copies; LRU ages them out.
    fn rebalance(&mut self, old_live: &[u32], new_live: &[u32]) {
        self.stats.rebalances += 1;
        if new_live.is_empty() {
            return;
        }
        // Deterministic move set: donors in id order, entries in LRU
        // order, grouped per (src, dst) link.
        let mut moves: BTreeMap<(u32, u32), Vec<(String, String)>> = BTreeMap::new();
        for &s in old_live {
            for (prompt, response) in self.nodes[s as usize].cache.live_entries_lru() {
                if hrw::owner(prompt, old_live) != Some(s) {
                    continue;
                }
                let new_primary = hrw::owner(prompt, new_live).expect("non-empty membership");
                if new_primary != s {
                    moves
                        .entry((s, new_primary))
                        .or_default()
                        .push((prompt.to_string(), response.to_string()));
                }
            }
        }
        let change = self.handoff_changes;
        self.handoff_changes += 1;
        for ((src, dst), entries) in &moves {
            let entries = match &self.cfg.handoff_dir {
                // Real hand-off: the donor writes a segment log, the
                // receiver reopens and replays it. Same bytes discipline
                // as any pas-store producer; crash legs apply.
                Some(dir) => {
                    let path = dir.join(format!("change{change:03}-n{src}-to-n{dst}"));
                    let sc =
                        StoreConfig { fingerprint: HANDOFF_FINGERPRINT, ..StoreConfig::default() };
                    let (mut log, existing) =
                        SegmentLog::open(&path, sc.clone(), None).expect("handoff log open");
                    assert!(existing.is_empty(), "handoff log must start fresh");
                    for (i, (prompt, response)) in entries.iter().enumerate() {
                        let record = Record::Meta {
                            id: i as u64,
                            meta: RecordMeta {
                                category: "handoff".into(),
                                degraded: false,
                                stamp: i as u64,
                                fields: vec![
                                    ("p".into(), prompt.clone()),
                                    ("r".into(), response.clone()),
                                ],
                            },
                        };
                        log.append(&record).expect("handoff append");
                    }
                    drop(log);
                    let (_, records) = SegmentLog::open(&path, sc, None).expect("handoff replay");
                    records
                        .iter()
                        .filter_map(|rec| match rec {
                            Record::Meta { meta, .. } => {
                                Some((meta.field("p")?.to_string(), meta.field("r")?.to_string()))
                            }
                            _ => None,
                        })
                        .collect()
                }
                None => entries.clone(),
            };
            let receiver = &mut self.nodes[*dst as usize];
            for (prompt, response) in &entries {
                receiver.cache.insert(prompt, response);
            }
            self.stats.rebalance_moved += entries.len() as u64;
        }
    }
}

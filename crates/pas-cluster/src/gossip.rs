//! The seeded gossip failure detector: per-node membership views driven
//! by heartbeats over the simulated network.
//!
//! Every live node keeps a [`View`] — a map from peer id to the freshest
//! *alive-at* stamp it has heard, directly or transitively. Each gossip
//! round the node stamps itself, re-derives every peer's
//! [`NodeStatus`] from stamp age (fresh → `Alive`, stale → `Suspect`,
//! ancient → `Dead`), and pushes its whole view to a seeded pick of
//! fanout peers. Receivers merge entry-wise by `max`, so stamps only ever
//! move forward and views converge monotonically no matter how messages
//! interleave, duplicate, or drop — a dropped heartbeat delays
//! convergence, it cannot corrupt it.
//!
//! Graceful departures ride the same epidemic: the leaver announces a
//! departure stamp, and a peer is `Dead` whenever its departure stamp is
//! at least as fresh as its last alive stamp. A rejoining node's newer
//! heartbeats resurrect it. Crashes announce nothing — peers find out by
//! timeout, during which their views legitimately *disagree*; routing
//! always consults the local view only.
//!
//! Determinism: views mutate only from the serial event loop; heartbeat
//! payloads iterate `BTreeMap`s; fanout targets come from a seeded
//! partial shuffle keyed by `(net_seed, node, round)`. Nothing here
//! depends on thread count.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_par::derive_seed_path;

/// Derivation lane for gossip fanout target picks (disjoint from the
/// network-fate stream, which `pas_fault::NetFaults` derives itself).
const GOSSIP_PICK_LANE: u64 = 0x9055;

/// Sorted `(peer, stamp_ms)` pairs as carried by heartbeat payloads.
pub type Stamps = Vec<(u32, u64)>;

/// What a node's local view believes about a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub enum NodeStatus {
    /// Heard from recently (or is the node itself).
    Alive,
    /// Stale beyond the suspect threshold — still routed around softly.
    Suspect,
    /// Stale beyond the dead threshold, announced departed, or never
    /// heard of at all.
    Dead,
}

/// Detector thresholds, resolved from the cluster config (intervals are
/// multiples of the gossip period).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GossipTuning {
    /// Gossip fanout: heartbeat targets per round.
    pub fanout: usize,
    /// Stamp age beyond which a peer turns `Suspect`.
    pub suspect_ms: u64,
    /// Stamp age beyond which a peer turns `Dead`.
    pub dead_ms: u64,
}

/// One node's local membership view.
#[derive(Debug, Clone)]
pub(crate) struct View {
    self_id: u32,
    /// peer → freshest alive-at stamp learned (directly or transitively).
    heard: BTreeMap<u32, u64>,
    /// peer → freshest departure-announcement stamp.
    departed: BTreeMap<u32, u64>,
    /// Cached statuses from the last [`View::refresh`], for transition
    /// accounting and end-of-run inspection.
    status: BTreeMap<u32, NodeStatus>,
}

impl View {
    /// A view that knows `peers` (the bootstrap contact list) as alive at
    /// time 0.
    pub fn new(self_id: u32, peers: &[u32]) -> View {
        let mut v = View {
            self_id,
            heard: BTreeMap::new(),
            departed: BTreeMap::new(),
            status: BTreeMap::new(),
        };
        v.bootstrap(peers, 0);
        v
    }

    /// Re-seeds the view with `peers` alive at `now` — what a joining
    /// node learns from its operator-supplied contact list. Departure
    /// stamps survive (a fresher alive stamp outranks them anyway).
    pub fn bootstrap(&mut self, peers: &[u32], now: u64) {
        for &p in peers {
            let e = self.heard.entry(p).or_insert(0);
            *e = (*e).max(now);
            self.status.insert(p, NodeStatus::Alive);
        }
        let e = self.heard.entry(self.self_id).or_insert(0);
        *e = (*e).max(now);
        self.status.insert(self.self_id, NodeStatus::Alive);
    }

    /// Stamps this node alive at `now` (start of its own gossip round).
    pub fn mark_self(&mut self, now: u64) {
        let e = self.heard.entry(self.self_id).or_insert(0);
        *e = (*e).max(now);
    }

    /// Records a departure announcement for `node` stamped `at`.
    pub fn note_departure(&mut self, node: u32, at: u64) {
        let e = self.departed.entry(node).or_insert(0);
        *e = (*e).max(at);
    }

    /// Merges a received heartbeat payload entry-wise by `max` — the
    /// commutative, idempotent step that makes convergence monotone.
    pub fn merge(&mut self, heard: &[(u32, u64)], departed: &[(u32, u64)]) {
        for &(p, at) in heard {
            let e = self.heard.entry(p).or_insert(0);
            *e = (*e).max(at);
        }
        for &(p, at) in departed {
            self.note_departure(p, at);
        }
    }

    /// The full view as a heartbeat payload (deterministic id order).
    pub fn payload(&self) -> (Stamps, Stamps) {
        (
            self.heard.iter().map(|(&p, &at)| (p, at)).collect(),
            self.departed.iter().map(|(&p, &at)| (p, at)).collect(),
        )
    }

    /// `peer`'s status as seen from this view at `now`.
    pub fn status_of(&self, peer: u32, now: u64, t: &GossipTuning) -> NodeStatus {
        if peer == self.self_id {
            return NodeStatus::Alive;
        }
        let Some(&heard) = self.heard.get(&peer) else {
            return NodeStatus::Dead;
        };
        if self.departed.get(&peer).is_some_and(|&d| d >= heard) {
            return NodeStatus::Dead;
        }
        let age = now.saturating_sub(heard);
        if age <= t.suspect_ms {
            NodeStatus::Alive
        } else if age <= t.dead_ms {
            NodeStatus::Suspect
        } else {
            NodeStatus::Dead
        }
    }

    /// Re-derives every known peer's status, returning the transitions
    /// `(peer, old, new)` since the last refresh (for detector
    /// accounting).
    pub fn refresh(&mut self, now: u64, t: &GossipTuning) -> Vec<(u32, NodeStatus, NodeStatus)> {
        let peers: Vec<u32> = self.heard.keys().chain(self.departed.keys()).copied().collect();
        let mut transitions = Vec::new();
        for p in peers {
            let new = self.status_of(p, now, t);
            let old = self.status.insert(p, new).unwrap_or(NodeStatus::Alive);
            if old != new {
                transitions.push((p, old, new));
            }
        }
        transitions
    }

    /// Every known peer's status at `now`, sorted by id — the
    /// end-of-run inspection export.
    pub fn statuses(&self, now: u64, t: &GossipTuning) -> Vec<(u32, NodeStatus)> {
        self.heard
            .keys()
            .chain(self.departed.keys())
            .copied()
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .map(|p| (p, self.status_of(p, now, t)))
            .collect()
    }

    /// The peers this view routes to: everything `Alive` at `now`,
    /// including the node itself, sorted by id.
    pub fn routing_live(&self, now: u64, t: &GossipTuning) -> Vec<u32> {
        self.statuses(now, t)
            .into_iter()
            .filter(|&(p, s)| s == NodeStatus::Alive || p == self.self_id)
            .map(|(p, _)| p)
            .collect()
    }

    /// Seeded heartbeat targets for `round`: up to `fanout` distinct
    /// peers that are not believed `Dead` (suspects get pinged so a wrong
    /// suspicion can heal), via a partial Fisher–Yates shuffle keyed by
    /// `(seed, node, round)` — deterministic, independent of thread
    /// count, decorrelated across nodes and rounds.
    pub fn gossip_targets(&self, now: u64, t: &GossipTuning, seed: u64, round: u64) -> Vec<u32> {
        let mut eligible: Vec<u32> = self
            .statuses(now, t)
            .into_iter()
            .filter(|&(p, s)| p != self.self_id && s != NodeStatus::Dead)
            .map(|(p, _)| p)
            .collect();
        let k = t.fanout.min(eligible.len());
        let mut rng = StdRng::seed_from_u64(derive_seed_path(
            seed,
            &[GOSSIP_PICK_LANE, u64::from(self.self_id), round],
        ));
        for i in 0..k {
            let j = i + rng.random_range(0..eligible.len() - i);
            eligible.swap(i, j);
        }
        eligible.truncate(k);
        eligible.sort_unstable();
        eligible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuning() -> GossipTuning {
        GossipTuning { fanout: 2, suspect_ms: 100, dead_ms: 200 }
    }

    #[test]
    fn stamp_age_walks_alive_suspect_dead() {
        let t = tuning();
        let mut v = View::new(0, &[1, 2]);
        v.merge(&[(1, 50)], &[]);
        assert_eq!(v.status_of(1, 50, &t), NodeStatus::Alive);
        assert_eq!(v.status_of(1, 150, &t), NodeStatus::Alive);
        assert_eq!(v.status_of(1, 151, &t), NodeStatus::Suspect);
        assert_eq!(v.status_of(1, 250, &t), NodeStatus::Suspect);
        assert_eq!(v.status_of(1, 251, &t), NodeStatus::Dead);
        // The node itself never ages out.
        assert_eq!(v.status_of(0, 10_000, &t), NodeStatus::Alive);
        // Unknown peers are dead, not suspect.
        assert_eq!(v.status_of(9, 0, &t), NodeStatus::Dead);
    }

    #[test]
    fn merge_is_monotone_and_order_independent() {
        let t = tuning();
        let payloads: [&[(u32, u64)]; 3] = [&[(1, 80), (2, 10)], &[(1, 20)], &[(2, 90)]];
        let mut a = View::new(0, &[1, 2]);
        let mut b = View::new(0, &[1, 2]);
        for p in payloads {
            a.merge(p, &[]);
        }
        for p in payloads.iter().rev() {
            b.merge(p, &[]);
        }
        assert_eq!(a.payload(), b.payload(), "max-merge must commute");
        assert_eq!(a.status_of(1, 100, &t), NodeStatus::Alive);
        // A stale merge never regresses a stamp.
        a.merge(&[(1, 5)], &[]);
        assert_eq!(a.payload().0.iter().find(|e| e.0 == 1).unwrap().1, 80);
    }

    #[test]
    fn departure_kills_until_a_fresher_heartbeat_resurrects() {
        let t = tuning();
        let mut v = View::new(0, &[1]);
        v.merge(&[(1, 100)], &[(1, 100)]);
        assert_eq!(v.status_of(1, 100, &t), NodeStatus::Dead, "departure at the same stamp wins");
        v.merge(&[(1, 150)], &[]);
        assert_eq!(v.status_of(1, 150, &t), NodeStatus::Alive, "rejoin heartbeat resurrects");
    }

    #[test]
    fn refresh_reports_transitions_once() {
        let t = tuning();
        let mut v = View::new(0, &[1]);
        v.merge(&[(1, 10)], &[]);
        assert!(v.refresh(50, &t).is_empty());
        let down = v.refresh(160, &t);
        assert_eq!(down, vec![(1, NodeStatus::Alive, NodeStatus::Suspect)]);
        assert!(v.refresh(170, &t).is_empty(), "no transition, no report");
        let dead = v.refresh(400, &t);
        assert_eq!(dead, vec![(1, NodeStatus::Suspect, NodeStatus::Dead)]);
    }

    #[test]
    fn gossip_targets_are_seeded_bounded_and_skip_the_dead() {
        let t = tuning();
        let mut v = View::new(0, &[1, 2, 3, 4]);
        v.merge(&[(1, 10), (2, 10), (3, 10)], &[(4, 10)]);
        let picks = v.gossip_targets(20, &t, 0x4e72, 7);
        assert_eq!(picks, v.gossip_targets(20, &t, 0x4e72, 7), "picks must be pure");
        assert_eq!(picks.len(), 2);
        assert!(picks.iter().all(|p| [1, 2, 3].contains(p)), "dead peers are never pinged");
        // Different rounds decorrelate.
        let across: std::collections::BTreeSet<Vec<u32>> =
            (0..32).map(|r| v.gossip_targets(20, &t, 0x4e72, r)).collect();
        assert!(across.len() > 1, "rounds must not all pick the same targets");
    }

    #[test]
    fn exchanged_views_converge_to_agreement() {
        let t = tuning();
        let mut views: Vec<View> = (0..3).map(|n| View::new(n, &[0, 1, 2])).collect();
        // Node 2 departs; only node 0 hears the announcement directly.
        views[0].note_departure(2, 60);
        for round in 0..3u64 {
            let now = 70 + round;
            // The departed node stays silent; the survivors exchange.
            for n in 0..2 {
                views[n].mark_self(now);
                let (heard, departed) = views[n].payload();
                for (m, view) in views.iter_mut().enumerate().take(2) {
                    if m != n {
                        view.merge(&heard, &departed);
                    }
                }
            }
        }
        let statuses: Vec<_> = (0..2).map(|n| views[n].statuses(73, &t)).collect();
        assert_eq!(statuses[0], statuses[1], "gossiped views must agree after exchange");
        assert!(statuses[0].contains(&(2, NodeStatus::Dead)), "the departure must spread");
    }
}

//! `pas-cluster`: a deterministic sharded multi-node gateway simulation.
//!
//! Runs N simulated `pas-gateway` nodes against one discrete-event loop:
//!
//! - [`hrw`] — rendezvous-hash sharding of the semantic cache: stable
//!   candidate lists, minimal-disruption reassignment on join/leave.
//! - [`cluster`] — the fleet loop: cross-shard routing with hedged
//!   requests, full-partition degradation to local passthrough, scripted
//!   membership changes with *in-band* state hand-off (per-entry transfer
//!   messages racing serving traffic, optionally round-tripped through
//!   `pas-store` segment logs), replica write-fanout, and periodic
//!   anti-entropy repair, all over the seeded `pas_fault::NetFaults`
//!   network with per-lane fault streams.
//! - [`gossip`] — the seeded gossip failure detector: per-node membership
//!   views with alive/suspect/dead states driven by heartbeats over the
//!   same chaotic network; routing consults each node's *local* view.
//! - [`report`] — per-node `GatewayReport`s folded through the existing
//!   associative merges into one [`ClusterReport`].
//!
//! The whole fleet shares the serial event loop; worker threads only ever
//! parallelise *inside* a node's batch dispatch, so responses and reports
//! are bit-identical at any thread count — the same contract every other
//! subsystem in this workspace honours, now across simulated machines.

pub mod cluster;
pub mod gossip;
pub mod hrw;
mod node;
pub mod report;

pub use cluster::{fleet_workloads, Cluster, ClusterConfig, Membership};
pub use gossip::NodeStatus;
pub use report::ClusterReport;

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::PromptOptimizer;
    use pas_fault::NetFaultProfile;
    use pas_gateway::WorkloadConfig;

    #[derive(Clone)]
    struct Suffix(&'static str);
    impl PromptOptimizer for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn optimize(&self, prompt: &str) -> String {
            format!("{prompt} {}", self.0)
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
    }

    fn quiet_gateway() -> pas_gateway::GatewayConfig {
        let mut g = pas_gateway::GatewayConfig::default();
        g.fault.profile = pas_fault::FaultProfile::none();
        g
    }

    fn small_workloads(
        cluster: usize,
        per_node: usize,
        seed: u64,
    ) -> Vec<Vec<pas_gateway::Request>> {
        let base = WorkloadConfig { requests: per_node, seed, ..WorkloadConfig::default() };
        fleet_workloads(&base, cluster)
    }

    #[test]
    fn single_node_cluster_completes_everything_locally() {
        let config = ClusterConfig {
            nodes: 1,
            replication: 1,
            gateway: quiet_gateway(),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config, |_, _| Suffix("[augmented]"));
        let workloads = small_workloads(1, 120, 7);
        let (responses, report) = cluster.run(&workloads);
        assert_eq!(responses[0].len(), 120);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.fleet.requests, 120);
        assert_eq!(report.forwards, 0, "one node is always its own candidate");
        assert!(responses[0].iter().any(|r| r.ends_with("[augmented]")));
    }

    #[test]
    fn multi_node_cluster_forwards_and_completes_everything() {
        let config = ClusterConfig {
            nodes: 4,
            replication: 2,
            gateway: quiet_gateway(),
            net: NetFaultProfile::lan(),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config, |_, _| Suffix("[augmented]"));
        let workloads = small_workloads(4, 80, 11);
        let (responses, report) = cluster.run(&workloads);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.fleet.requests, 320);
        assert!(report.forwards > 0, "with 4 nodes and r=2 some keys live elsewhere");
        for (node, workload) in responses.iter().zip(&workloads) {
            assert_eq!(node.len(), workload.len());
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let mk = || {
            let config = ClusterConfig {
                nodes: 3,
                gateway: quiet_gateway(),
                net: NetFaultProfile::lossy(),
                ..ClusterConfig::default()
            };
            let mut cluster = Cluster::new(config, |_, _| Suffix("[x]"));
            cluster.run(&small_workloads(3, 60, 5))
        };
        let (r1, rep1) = mk();
        let (r2, rep2) = mk();
        assert_eq!(r1, r2);
        assert_eq!(rep1, rep2);
    }

    #[test]
    fn leave_hands_primaries_to_survivors() {
        let config = ClusterConfig {
            nodes: 3,
            gateway: quiet_gateway(),
            script: vec![(400, Membership::Leave(1))],
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config, |_, _| Suffix("[x]"));
        let (_, report) = cluster.run(&small_workloads(3, 150, 21));
        assert_eq!(report.errors(), 0);
        assert_eq!(report.rebalances, 1);
        assert!(report.rebalance_moved > 0, "the leaver owned some cached keys");
        assert!(!cluster.is_live(1));
    }

    #[test]
    fn join_pulls_primaries_from_incumbents() {
        let config = ClusterConfig {
            nodes: 3,
            gateway: quiet_gateway(),
            start_dead: vec![2],
            script: vec![(500, Membership::Join(2))],
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config, |_, _| Suffix("[x]"));
        let (_, report) = cluster.run(&small_workloads(3, 150, 33));
        assert_eq!(report.errors(), 0);
        assert!(report.redirects > 0, "node 2's clients redirected while it was down");
        assert!(report.rebalance_moved > 0, "the joiner received its primaries");
        assert!(cluster.cache_len(2) > 0);
        assert!(cluster.is_live(2));
    }
}

//! Property-based tests for the BPE tokenizer.

use proptest::prelude::*;

use pas_tokenizer::{BpeTokenizer, BpeTrainer, TrainConfig};

fn trained(corpus: &[String], merges: usize) -> BpeTokenizer {
    BpeTrainer::new(TrainConfig { merges, min_pair_count: 2 })
        .train(corpus.iter().map(String::as_str))
}

/// Text over a small alphabet so the training corpus covers every char.
fn alpha_text() -> impl Strategy<Value = String> {
    "[abcdef]{1,8}( [abcdef]{1,8}){0,6}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_over_known_alphabet(texts in prop::collection::vec(alpha_text(), 2..8)) {
        // Train on the texts themselves: every character is in-vocabulary,
        // so encode→decode must reproduce the whitespace-normalized text.
        let tok = trained(&texts, 60);
        for t in &texts {
            let normalized = t.split_whitespace().collect::<Vec<_>>().join(" ");
            prop_assert_eq!(tok.decode(&tok.encode(t)), normalized);
        }
    }

    #[test]
    fn encoding_is_deterministic(texts in prop::collection::vec(alpha_text(), 2..6)) {
        let tok = trained(&texts, 40);
        for t in &texts {
            prop_assert_eq!(tok.encode(t), tok.encode(t));
        }
    }

    #[test]
    fn more_merges_never_lengthen_encodings(texts in prop::collection::vec(alpha_text(), 3..8)) {
        let small = trained(&texts, 5);
        let large = trained(&texts, 80);
        for t in &texts {
            prop_assert!(
                large.encode(t).len() <= small.encode(t).len(),
                "more merges must compress: {t:?}"
            );
        }
    }

    #[test]
    fn serde_round_trip_preserves_encoding(texts in prop::collection::vec(alpha_text(), 2..6)) {
        let tok = trained(&texts, 30);
        let back = BpeTokenizer::from_json(&tok.to_json()).unwrap();
        for t in &texts {
            prop_assert_eq!(back.encode(t), tok.encode(t));
        }
    }

    #[test]
    fn token_count_bounded_by_char_count(texts in prop::collection::vec(alpha_text(), 2..6)) {
        let tok = trained(&texts, 30);
        for t in &texts {
            let non_ws = t.chars().filter(|c| !c.is_whitespace()).count();
            prop_assert!(tok.count_tokens(t) <= non_ws);
            prop_assert!(tok.count_tokens(t) >= 1);
        }
    }
}

//! Token vocabulary: id ↔ string table with reserved special tokens.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Reserved control tokens, always occupying the first vocabulary slots in
/// the order declared here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialToken {
    /// Padding for fixed-width batches.
    Pad,
    /// Beginning of sequence.
    Bos,
    /// End of sequence.
    Eos,
    /// Separator between a prompt and its complement in SFT sequences.
    Sep,
    /// Out-of-vocabulary character fallback.
    Unk,
}

impl SpecialToken {
    /// All special tokens in id order.
    pub const ALL: [SpecialToken; 5] = [
        SpecialToken::Pad,
        SpecialToken::Bos,
        SpecialToken::Eos,
        SpecialToken::Sep,
        SpecialToken::Unk,
    ];

    /// Fixed token id of this special token.
    #[inline]
    pub fn id(self) -> u32 {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Bos => 1,
            SpecialToken::Eos => 2,
            SpecialToken::Sep => 3,
            SpecialToken::Unk => 4,
        }
    }

    /// Surface form stored in the vocabulary table.
    pub fn as_str(self) -> &'static str {
        match self {
            SpecialToken::Pad => "<pad>",
            SpecialToken::Bos => "<bos>",
            SpecialToken::Eos => "<eos>",
            SpecialToken::Sep => "<sep>",
            SpecialToken::Unk => "<unk>",
        }
    }
}

/// Errors from vocabulary construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VocabError {
    /// The token string is already present.
    Duplicate(String),
    /// An id was out of range during lookup.
    UnknownId(u32),
}

impl fmt::Display for VocabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabError::Duplicate(t) => write!(f, "duplicate token '{t}'"),
            VocabError::UnknownId(id) => write!(f, "unknown token id {id}"),
        }
    }
}

impl std::error::Error for VocabError {}

/// Bidirectional id ↔ token table. Ids are dense and start with the special
/// tokens from [`SpecialToken::ALL`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab { tokens: Vec::new(), index: HashMap::new() };
        for sp in SpecialToken::ALL {
            v.tokens.push(sp.as_str().to_string());
            v.index.insert(sp.as_str().to_string(), sp.id());
        }
        v
    }

    /// Rebuilds the reverse index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self.tokens.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
    }

    /// Number of tokens, including specials.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when only special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() == SpecialToken::ALL.len()
    }

    /// Adds `token` and returns its new id; errors when already present.
    pub fn add(&mut self, token: &str) -> Result<u32, VocabError> {
        if self.index.contains_key(token) {
            return Err(VocabError::Duplicate(token.to_string()));
        }
        let id = self.tokens.len() as u32;
        self.tokens.push(token.to_string());
        self.index.insert(token.to_string(), id);
        Ok(id)
    }

    /// Adds `token` if absent; returns its id either way.
    pub fn add_or_get(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.index.get(token) {
            return id;
        }
        self.add(token).expect("checked absent")
    }

    /// Looks up a token's id.
    #[inline]
    pub fn id_of(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Looks up the token string for `id`.
    #[inline]
    pub fn token_of(&self, id: u32) -> Result<&str, VocabError> {
        self.tokens.get(id as usize).map(String::as_str).ok_or(VocabError::UnknownId(id))
    }

    /// True when `id` is one of the reserved specials.
    #[inline]
    pub fn is_special(&self, id: u32) -> bool {
        (id as usize) < SpecialToken::ALL.len()
    }

    /// Iterates `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.tokens.iter().enumerate().map(|(i, t)| (i as u32, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_occupy_first_slots() {
        let v = Vocab::new();
        assert_eq!(v.len(), 5);
        assert_eq!(v.token_of(0).unwrap(), "<pad>");
        assert_eq!(v.token_of(SpecialToken::Unk.id()).unwrap(), "<unk>");
        assert!(v.is_special(3));
        assert!(!v.is_special(5));
    }

    #[test]
    fn add_assigns_dense_ids() {
        let mut v = Vocab::new();
        let a = v.add("▁the").unwrap();
        let b = v.add("▁cat").unwrap();
        assert_eq!(b, a + 1);
        assert_eq!(v.id_of("▁cat"), Some(b));
    }

    #[test]
    fn duplicate_add_errors() {
        let mut v = Vocab::new();
        v.add("x").unwrap();
        assert_eq!(v.add("x"), Err(VocabError::Duplicate("x".into())));
        assert_eq!(v.add_or_get("x"), v.id_of("x").unwrap());
    }

    #[test]
    fn unknown_id_errors() {
        let v = Vocab::new();
        assert_eq!(v.token_of(99), Err(VocabError::UnknownId(99)));
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let mut v = Vocab::new();
        v.add("▁hello").unwrap();
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocab = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.id_of("▁hello"), v.id_of("▁hello"));
        assert_eq!(back.len(), v.len());
    }
}

//! Byte-pair-encoding trainer and tokenizer.
//!
//! Training follows the textbook algorithm: pre-tokenize the corpus into
//! whitespace-separated words (each beginning with the [`WORD_BOUNDARY`]
//! marker), split words into characters, then repeatedly merge the most
//! frequent adjacent symbol pair until the merge budget is exhausted or no
//! pair repeats. Encoding replays the merges in learned-rank order; decoding
//! concatenates token strings and turns boundary markers back into spaces.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::vocab::{SpecialToken, Vocab};
use crate::WORD_BOUNDARY;

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum number of merge rules to learn.
    pub merges: usize,
    /// A pair must occur at least this often to be merged.
    pub min_pair_count: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { merges: 2000, min_pair_count: 2 }
    }
}

/// Learns a [`BpeTokenizer`] from a corpus.
#[derive(Debug, Clone, Default)]
pub struct BpeTrainer {
    config: TrainConfig,
}

impl BpeTrainer {
    /// Creates a trainer with `config`.
    pub fn new(config: TrainConfig) -> Self {
        BpeTrainer { config }
    }

    /// Trains on the given corpus lines and returns the tokenizer.
    pub fn train<'a, I>(&self, corpus: I) -> BpeTokenizer
    where
        I: IntoIterator<Item = &'a str>,
    {
        // Word frequency table; each word is stored as its symbol sequence.
        let mut word_freq: HashMap<Vec<String>, u64> = HashMap::new();
        for line in corpus {
            for word in line.split_whitespace() {
                let symbols = word_to_symbols(word);
                if !symbols.is_empty() {
                    *word_freq.entry(symbols).or_insert(0) += 1;
                }
            }
        }

        let mut words: Vec<(Vec<String>, u64)> = word_freq.into_iter().collect();
        // Deterministic order regardless of hash-map iteration.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut merges: Vec<(String, String)> = Vec::new();
        for _ in 0..self.config.merges {
            let mut pair_counts: HashMap<(String, String), u64> = HashMap::new();
            for (symbols, freq) in &words {
                for win in symbols.windows(2) {
                    *pair_counts.entry((win[0].clone(), win[1].clone())).or_insert(0) += *freq;
                }
            }
            let best = pair_counts
                .into_iter()
                .filter(|&(_, c)| c >= self.config.min_pair_count)
                // Max by count; ties broken lexicographically for determinism.
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), _count)) = best else { break };
            let merged = format!("{left}{right}");
            for (symbols, _) in &mut words {
                apply_merge(symbols, &left, &right, &merged);
            }
            merges.push((left, right));
        }

        // Build the vocabulary: specials, then every character symbol seen,
        // then the merge products, in learned order.
        let mut vocab = Vocab::new();
        let mut char_symbols: Vec<String> = {
            let mut set: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
            for (symbols, _) in &words {
                for s in symbols {
                    set.insert(s.clone());
                }
            }
            // Merged symbols are already in `words`; singles come from the
            // initial split too. Add base characters explicitly so encoding
            // of unseen words still works character-by-character.
            set.into_iter().collect()
        };
        char_symbols.sort();
        // Base alphabet: every single character (with and without boundary)
        // that ever appeared.
        let mut alphabet: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (symbols, _) in &words {
            for s in symbols {
                for (i, ch) in s.trim_start_matches(WORD_BOUNDARY).chars().enumerate() {
                    if i == 0 && s.starts_with(WORD_BOUNDARY) {
                        alphabet.insert(format!("{WORD_BOUNDARY}{ch}"));
                    } else {
                        alphabet.insert(ch.to_string());
                    }
                }
            }
        }
        for sym in alphabet {
            vocab.add_or_get(&sym);
        }
        for sym in char_symbols {
            vocab.add_or_get(&sym);
        }
        for (l, r) in &merges {
            vocab.add_or_get(&format!("{l}{r}"));
        }

        let ranks =
            merges.iter().enumerate().map(|(rank, pair)| (pair.clone(), rank as u32)).collect();
        BpeTokenizer { vocab, merges, ranks }
    }
}

fn word_to_symbols(word: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, ch) in word.chars().enumerate() {
        if i == 0 {
            out.push(format!("{WORD_BOUNDARY}{ch}"));
        } else {
            out.push(ch.to_string());
        }
    }
    out
}

fn apply_merge(symbols: &mut Vec<String>, left: &str, right: &str, merged: &str) {
    let mut i = 0;
    while i + 1 < symbols.len() {
        if symbols[i] == left && symbols[i + 1] == right {
            symbols[i] = merged.to_string();
            symbols.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

/// A trained BPE tokenizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    vocab: Vocab,
    merges: Vec<(String, String)>,
    #[serde(skip)]
    ranks: HashMap<(String, String), u32>,
}

impl BpeTokenizer {
    /// The tokenizer's vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Number of learned merge rules.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Restores derived state after deserialization.
    pub fn rebuild(&mut self) {
        self.vocab.rebuild_index();
        self.ranks = self
            .merges
            .iter()
            .enumerate()
            .map(|(rank, pair)| (pair.clone(), rank as u32))
            .collect();
    }

    /// Serializes the tokenizer to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tokenizer is serializable")
    }

    /// Deserializes a tokenizer from JSON produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut t: BpeTokenizer = serde_json::from_str(json)?;
        t.rebuild();
        Ok(t)
    }

    /// Encodes `text` into token ids. Unknown characters map to `<unk>`.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for word in text.split_whitespace() {
            let mut symbols = word_to_symbols(word);
            self.merge_word(&mut symbols);
            for sym in &symbols {
                ids.push(self.vocab.id_of(sym).unwrap_or(SpecialToken::Unk.id()));
            }
        }
        ids
    }

    /// Encodes with `<bos>`/`<eos>` wrappers, as consumed by the LM trainer.
    pub fn encode_with_specials(&self, text: &str) -> Vec<u32> {
        let mut ids = vec![SpecialToken::Bos.id()];
        ids.extend(self.encode(text));
        ids.push(SpecialToken::Eos.id());
        ids
    }

    fn merge_word(&self, symbols: &mut Vec<String>) {
        loop {
            let mut best: Option<(u32, usize)> = None;
            for i in 0..symbols.len().saturating_sub(1) {
                let key = (symbols[i].clone(), symbols[i + 1].clone());
                if let Some(&rank) = self.ranks.get(&key) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let merged = format!("{}{}", symbols[i], symbols[i + 1]);
            symbols[i] = merged;
            symbols.remove(i + 1);
        }
    }

    /// Decodes ids back to text. Special tokens are skipped; `<unk>` decodes
    /// to the replacement character.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id == SpecialToken::Unk.id() {
                out.push('\u{FFFD}');
                continue;
            }
            if self.vocab.is_special(id) {
                continue;
            }
            if let Ok(tok) = self.vocab.token_of(id) {
                out.push_str(tok);
            }
        }
        out.replace(WORD_BOUNDARY, " ").trim_start().to_string()
    }

    /// Token count of `text` under this tokenizer; the unit in which the
    /// data-efficiency experiment (Fig. 7) reports consumption.
    pub fn count_tokens(&self, text: &str) -> usize {
        self.encode(text).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(corpus: &[&str], merges: usize) -> BpeTokenizer {
        BpeTrainer::new(TrainConfig { merges, min_pair_count: 2 }).train(corpus.iter().copied())
    }

    #[test]
    fn round_trip_on_training_text() {
        let tok = train(&["hello world", "hello there world"], 50);
        let ids = tok.encode_with_specials("hello world");
        assert_eq!(tok.decode(&ids), "hello world");
    }

    #[test]
    fn frequent_words_become_single_tokens() {
        let corpus: Vec<String> = vec!["prompt augmentation system".to_string(); 10];
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let tok = train(&refs, 100);
        assert_eq!(tok.encode("prompt").len(), 1, "'prompt' should be one token");
    }

    #[test]
    fn unknown_chars_decode_to_replacement() {
        let tok = train(&["abc def"], 10);
        let ids = tok.encode("abc xyz");
        let decoded = tok.decode(&ids);
        assert!(decoded.starts_with("abc"));
        assert!(decoded.contains('\u{FFFD}'));
    }

    #[test]
    fn encode_is_deterministic() {
        let tok = train(&["the cat sat on the mat", "the dog sat"], 40);
        assert_eq!(tok.encode("the cat sat"), tok.encode("the cat sat"));
    }

    #[test]
    fn whitespace_variants_encode_identically() {
        let tok = train(&["a b c"], 5);
        assert_eq!(tok.encode("a  b\tc"), tok.encode("a b c"));
    }

    #[test]
    fn json_round_trip() {
        let tok = train(&["serialize me please", "serialize again"], 30);
        let json = tok.to_json();
        let back = BpeTokenizer::from_json(&json).unwrap();
        let text = "serialize me";
        assert_eq!(back.encode(text), tok.encode(text));
        assert_eq!(back.decode(&back.encode(text)), text);
    }

    #[test]
    fn zero_merges_yields_char_tokens() {
        let tok = train(&["abc"], 0);
        assert_eq!(tok.merge_count(), 0);
        assert_eq!(tok.encode("abc").len(), 3);
    }

    #[test]
    fn bos_eos_wrap() {
        let tok = train(&["x y"], 0);
        let ids = tok.encode_with_specials("x");
        assert_eq!(*ids.first().unwrap(), SpecialToken::Bos.id());
        assert_eq!(*ids.last().unwrap(), SpecialToken::Eos.id());
    }
}

//! Trainable byte-pair-encoding tokenizer.
//!
//! The fine-tunable language models in `pas-nn`/`pas-core` operate on token
//! ids; this crate provides the tokenizer that maps prompt text to those ids
//! and back. It is a conventional BPE stack:
//!
//! 1. [`Vocab`] — id ↔ token table with reserved special tokens.
//! 2. [`BpeTrainer`] — learns merge rules from a corpus by iteratively
//!    merging the most frequent adjacent symbol pair.
//! 3. [`BpeTokenizer`] — applies the learned merges to encode text, and
//!    concatenates tokens to decode.
//!
//! Word boundaries are encoded SentencePiece-style with a `▁` prefix on each
//! word's first symbol, so decoding is a pure concatenation.

pub mod bpe;
pub mod vocab;

pub use bpe::{BpeTokenizer, BpeTrainer, TrainConfig};
pub use vocab::{SpecialToken, Vocab, VocabError};

/// The word-boundary marker prepended to the first symbol of every word.
pub const WORD_BOUNDARY: char = '\u{2581}'; // ▁

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Vec<String> {
        vec![
            "the quick brown fox jumps over the lazy dog".to_string(),
            "the quick brown cat sleeps".to_string(),
            "how do i sort a list of numbers quickly".to_string(),
            "explain how the quick sort algorithm works".to_string(),
        ]
    }

    #[test]
    fn end_to_end_train_encode_decode() {
        let corpus = small_corpus();
        let tok = BpeTrainer::new(TrainConfig { merges: 100, ..TrainConfig::default() })
            .train(corpus.iter().map(String::as_str));
        for text in &corpus {
            let ids = tok.encode(text);
            assert!(!ids.is_empty());
            assert_eq!(tok.decode(&ids), *text);
        }
    }

    #[test]
    fn merges_reduce_token_count() {
        let corpus = small_corpus();
        let no_merges = BpeTrainer::new(TrainConfig { merges: 0, ..TrainConfig::default() })
            .train(corpus.iter().map(String::as_str));
        let merged = BpeTrainer::new(TrainConfig { merges: 150, ..TrainConfig::default() })
            .train(corpus.iter().map(String::as_str));
        let text = "the quick brown fox";
        assert!(merged.encode(text).len() < no_merges.encode(text).len());
    }
}

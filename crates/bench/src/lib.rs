//! Shared plumbing for the table/figure regenerator binaries.
//!
//! Every binary accepts:
//!
//! - `--seed <n>` — experiment seed (default 42);
//! - `--quick` — run at test scale instead of paper scale.
//!
//! The heavy [`ExperimentContext`] is built once per process.

use pas_eval::experiments::{ExperimentContext, Scale};

/// Parsed command-line options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Experiment seed.
    pub seed: u64,
    /// Scale to build at.
    pub scale: Scale,
}

impl Options {
    /// Parses `--seed <n>` and `--quick` from an argument iterator.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut seed = 42u64;
        let mut scale = Scale::Paper;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => {
                    seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer");
                }
                "--quick" => scale = Scale::Quick,
                _ => {}
            }
        }
        Options { seed, scale }
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Builds the shared experiment context, reporting progress on stderr.
    pub fn build_context(&self) -> ExperimentContext {
        eprintln!(
            "building experiment context (scale: {:?}, seed: {}) — this trains PAS, the ablation, and BPO…",
            self.scale, self.seed
        );
        let start = std::time::Instant::now();
        let ctx = ExperimentContext::build(self.scale, self.seed);
        eprintln!(
            "context ready in {:.1}s: PAS dataset {} pairs, BPO dataset {} pairs",
            start.elapsed().as_secs_f64(),
            ctx.dataset.len(),
            ctx.bpo_dataset.len()
        );
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_flags() {
        let d = Options::parse(Vec::<String>::new());
        assert_eq!(d.seed, 42);
        assert_eq!(d.scale, Scale::Paper);
        let q = Options::parse(vec!["--quick".into(), "--seed".into(), "7".into()]);
        assert_eq!(q.seed, 7);
        assert_eq!(q.scale, Scale::Quick);
    }

    #[test]
    #[should_panic(expected = "--seed requires an integer")]
    fn bad_seed_panics() {
        Options::parse(vec!["--seed".into(), "abc".into()]);
    }
}

//! Shared plumbing for the table/figure regenerator binaries.
//!
//! Every binary accepts:
//!
//! - `--seed <n>` — experiment seed (default 42);
//! - `--quick` — run at test scale instead of paper scale;
//! - `--threads <n>` — worker count for the deterministic parallel runtime
//!   (default: available parallelism; outputs are bit-identical at any
//!   setting);
//! - `--metrics-out <file>` — enable the `pas-obs` observability layer and
//!   write its deterministic [`pas_obs::MetricsSnapshot`] as JSON when the
//!   binary finishes (call [`Options::write_metrics`] at the end of main).
//!
//! The heavy [`ExperimentContext`] is built once per process.

use pas_eval::experiments::{ExperimentContext, Scale};

/// Which kernel backend this process selected, as the
/// [`pas_kernels::Backend`] index (0 scalar, 1 sse2, 2 avx2). Recorded at
/// option-parse time by the regenerator binaries (and by `pas-cli`), so a
/// metrics snapshot always says which arithmetic path produced it. The
/// golden-snapshot test harnesses never record it — their fixtures must stay
/// byte-identical across backends.
static OBS_BACKEND: pas_obs::Gauge = pas_obs::Gauge::new("kernels.backend");

/// Host metadata as a JSON object fragment, embedded in every `BENCH_*.json`
/// summary so numbers from different machines are never compared blind —
/// in particular, `nproc` records whether parallel speedups were even
/// possible on the machine that produced the file.
pub fn host_json() -> String {
    let nproc = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "{{\"nproc\": {nproc}, \"arch\": \"{}\", \"os\": \"{}\"}}",
        std::env::consts::ARCH,
        std::env::consts::OS,
    )
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Experiment seed.
    pub seed: u64,
    /// Scale to build at.
    pub scale: Scale,
    /// Worker threads for `pas_par` (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Where to write the metrics snapshot (`None` = observability off).
    pub metrics_out: Option<std::path::PathBuf>,
}

impl Options {
    /// Parses `--seed <n>`, `--quick`, `--threads <n>`, and
    /// `--metrics-out <file>` from an argument iterator, applies the thread
    /// count to the parallel runtime, and enables metrics recording when an
    /// output path was given.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut seed = 42u64;
        let mut scale = Scale::Paper;
        let mut threads = None;
        let mut metrics_out = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => {
                    seed =
                        it.next().and_then(|v| v.parse().ok()).expect("--seed requires an integer");
                }
                "--quick" => scale = Scale::Quick,
                "--threads" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads requires a positive integer");
                    assert!(n > 0, "--threads requires a positive integer");
                    threads = Some(n);
                }
                "--metrics-out" => {
                    metrics_out = Some(std::path::PathBuf::from(
                        it.next().expect("--metrics-out requires a path"),
                    ));
                }
                _ => {}
            }
        }
        pas_par::set_threads(threads.unwrap_or(0));
        pas_obs::set_enabled(metrics_out.is_some());
        OBS_BACKEND.set(pas_kernels::backend().index() as u64);
        Options { seed, scale, threads, metrics_out }
    }

    /// Writes the accumulated metrics snapshot to `--metrics-out`, if one
    /// was requested. Call at the end of main; a no-op otherwise.
    pub fn write_metrics(&self) {
        if let Some(path) = &self.metrics_out {
            pas_obs::snapshot()
                .write_json(path)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("metrics → {}", path.display());
        }
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Builds the shared experiment context, reporting progress on stderr.
    pub fn build_context(&self) -> ExperimentContext {
        eprintln!(
            "building experiment context (scale: {:?}, seed: {}) — this trains PAS, the ablation, and BPO…",
            self.scale, self.seed
        );
        let start = std::time::Instant::now();
        let ctx = ExperimentContext::build(self.scale, self.seed);
        eprintln!(
            "context ready in {:.1}s: PAS dataset {} pairs, BPO dataset {} pairs",
            start.elapsed().as_secs_f64(),
            ctx.dataset.len(),
            ctx.bpo_dataset.len()
        );
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_flags_and_threads() {
        // One test (not several) because the thread override is process
        // global and cargo runs tests concurrently.
        let d = Options::parse(Vec::<String>::new());
        assert_eq!(d.seed, 42);
        assert_eq!(d.scale, Scale::Paper);
        assert_eq!(d.threads, None);
        let q = Options::parse(vec!["--quick".into(), "--seed".into(), "7".into()]);
        assert_eq!(q.seed, 7);
        assert_eq!(q.scale, Scale::Quick);
        let o = Options::parse(vec!["--threads".into(), "3".into()]);
        assert_eq!(o.threads, Some(3));
        assert_eq!(pas_par::threads(), 3);
        pas_par::set_threads(0); // restore the default for other tests
        assert!(pas_par::threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "--seed requires an integer")]
    fn bad_seed_panics() {
        Options::parse(vec!["--seed".into(), "abc".into()]);
    }

    #[test]
    #[should_panic(expected = "--threads requires a positive integer")]
    fn zero_threads_panics() {
        Options::parse(vec!["--threads".into(), "0".into()]);
    }
}

//! Regenerates Table 2: PAS vs BPO with the same LLaMA-2-7B base model.

use pas_eval::experiments::table2;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let t2 = table2(&ctx);
    println!("{}", t2.render());
    println!("PAS vs BPO, same base (paper: +3.41): {:+.2}", t2.pas_vs_bpo());
    opts.write_metrics();
}

//! Extension experiment: per-task prompt optimizers (OPRO, ProTeGi) vs PAS.

use pas_eval::experiments::per_task;
use pas_llm::Category;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let result = per_task(&ctx, Category::Analysis);
    println!("{}", result.render());
    opts.write_metrics();
}

//! Regenerates Table 5: ablation of the data selection/regeneration module.

use pas_eval::experiments::table5;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let t5 = table5(&ctx);
    println!("{}", t5.render());
    println!("ablation drop (paper: -3.80): {:+.2}", -t5.ablation_drop());
    opts.write_metrics();
}

//! Seed-sweep robustness of the headline deltas.
//!
//! Rebuilds the entire pipeline under several seeds and reports the mean ±
//! std of the PAS-vs-baseline, PAS-vs-BPO, and ablation deltas. Default
//! sweep is three seeds at the chosen scale; each seed rebuilds everything,
//! so paper scale takes a few minutes.

use pas_eval::experiments::robustness;

fn main() {
    let opts = bench::Options::from_env();
    let seeds = [opts.seed, opts.seed + 1, opts.seed + 2];
    eprintln!("sweeping seeds {seeds:?} at {:?} scale…", opts.scale);
    let result = robustness(opts.scale, &seeds);
    println!("{}", result.render());
    println!(
        "all seeds preserve orderings (PAS > baseline, PAS > BPO): {}",
        result.all_seeds_preserve_orderings()
    );
    opts.write_metrics();
}

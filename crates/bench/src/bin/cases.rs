//! Regenerates the three case studies (Figures 2, 8 and 9).

use pas_eval::cases::run_case_studies;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    for case in run_case_studies(&ctx.pas_qwen, "gpt-4-0613") {
        println!("{}", case.render());
        println!("improved: {}\n", if case.improved() { "yes" } else { "no" });
    }
    opts.write_metrics();
}

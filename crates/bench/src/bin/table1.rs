//! Regenerates Table 1: PAS vs BPO vs no APE across six main models.

use pas_eval::experiments::table1;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let t1 = table1(&ctx);
    println!("{}", t1.render());
    println!("PAS vs baseline (paper: +8.00): {:+.2}", t1.pas_vs_baseline());
    println!("PAS vs BPO      (paper: +6.09): {:+.2}", t1.pas_vs_bpo());
    opts.write_metrics();
}

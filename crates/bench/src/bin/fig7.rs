//! Regenerates Figure 7: data consumption and efficiency comparison.

use pas_eval::experiments::fig7;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    println!("{}", fig7(&ctx).render());
    opts.write_metrics();
}

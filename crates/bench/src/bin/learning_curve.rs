//! Extension experiment: measured PAS learning curve (score vs pairs),
//! validating the "only 9000 data points" data-efficiency claim.

use pas_eval::experiments::figures::learning_curve;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let full = ctx.dataset.len();
    let sizes = [0, full / 16, full / 8, full / 4, full / 2, full];
    let curve = learning_curve(&ctx, &sizes);
    println!("{}", curve.render());
    if let Some(n) = curve.pairs_to_reach(0.95) {
        println!("pairs to reach 95% of final score: {n}");
    }
    opts.write_metrics();
}

//! Regenerates Table 3: human-labor and flexibility matrix.

use pas_eval::experiments::table3;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let t3 = table3(&ctx);
    println!("{}", t3.render());
    println!("fully flexible methods: {:?}", t3.fully_flexible());
    opts.write_metrics();
}

//! Extension experiment: factored PAS vs the end-to-end neural PAS.

use pas_eval::experiments::neural_vs_factored;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let cmp = neural_vs_factored(&ctx);
    println!("{}", cmp.render());
    println!("neural PAS held-in token NLL: {:.3}", cmp.neural_nll);
    opts.write_metrics();
}

//! Regenerates Figure 1b: per-category GSB win bars from the human panel.

use pas_eval::experiments::{fig1b, table4};
use pas_eval::human::HumanEvalConfig;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let t4 = table4(&ctx, &HumanEvalConfig::default());
    let f = fig1b(&t4);
    println!("{}", f.render());
    println!("net-positive scenarios: {}/8", f.net_positive());
    opts.write_metrics();
}

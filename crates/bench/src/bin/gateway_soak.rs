//! Gateway soak harness: a seeded open-loop load test against a real
//! (quick-scale) PAS complement model, printing the full mergeable
//! `GatewayReport` as JSON on stdout and a human summary on stderr.
//!
//! ```text
//! gateway_soak [--requests N] [--universe N] [--zipf S] [--near-dup F]
//!              [--replicas N] [--cache-capacity N] [--tau F] [--shards N]
//!              [--cache-mode plain|int8|pq] [--fault-profile NAME]
//!              [--store-dir DIR] [--restart warm|cold|reembed] [--carry-cache]
//!              [--seed S] [--threads N]
//!              [--metrics-out FILE] [--metrics-jsonl FILE]
//! ```
//!
//! `--cache-mode` picks the semantic-cache probe tier: `plain` (f32, the
//! default), `int8` (scalar-quantized codes), or `pq` (product-quantized
//! codes). Served results are identical across modes on this workload —
//! the CI backend matrix byte-diffs the reports to prove it.
//!
//! With `--shards N` the workload is split into N contiguous shards, each
//! served by its own gateway (a fleet of cold caches), and the per-shard
//! reports are folded with `GatewayReport::merge` — the aggregation path a
//! real fleet's metric collector would use. Everything is deterministic:
//! the same flags produce the same JSON on any machine at any thread
//! count (clean and eventual-success profiles).
//!
//! `--store-dir DIR` backs the semantic cache with a `pas-store` segment
//! log in DIR and restarts the gateway *between shards*: each shard's
//! cache is reopened from the store (`--restart warm` checkpoints and
//! warm-opens; `cold` drops the cache without a checkpoint — a kill — and
//! replays the log; `reembed` replays while re-embedding every prompt,
//! the pre-store restart cost). `--carry-cache` instead threads one
//! in-memory cache through every shard — the uninterrupted baseline the
//! CI crash-recovery job byte-diffs the restarted runs against: because
//! per-run report counters are deltas and the store replays the cache
//! bit-exactly, all four variants print identical JSON.
//!
//! `--metrics-out FILE` writes the fleet-merged `pas-obs` snapshot as one
//! JSON object; `--metrics-jsonl FILE` additionally appends one snapshot
//! line per shard (the registry is snapshotted and reset between shards,
//! and the per-shard snapshots fold with `MetricsSnapshot::merge` — the
//! same collector path, at the metrics layer).

use pas_core::{BuildOptions, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_fault::{FaultConfig, FaultProfile};
use pas_gateway::{
    cache_embedder, generate, Gateway, GatewayCache, GatewayConfig, GatewayReport, OpenMode,
    SemanticCache, SemanticCacheConfig, WorkloadConfig,
};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} requires a value")),
    }
}

fn path_flag(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{name} requires a path")).into())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    pas_par::set_threads(flag(&args, "--threads", 0usize));
    let metrics_out = path_flag(&args, "--metrics-out");
    let metrics_jsonl = path_flag(&args, "--metrics-jsonl");
    pas_obs::set_enabled(metrics_out.is_some() || metrics_jsonl.is_some());

    let workload = WorkloadConfig {
        requests: flag(&args, "--requests", 3000usize),
        universe: flag(&args, "--universe", 150usize),
        zipf_s: flag(&args, "--zipf", 1.1f64),
        near_dup_rate: flag(&args, "--near-dup", 0.15f64),
        seed: flag(&args, "--seed", 0x90a7u64),
        ..WorkloadConfig::default()
    };
    let mut fault = FaultConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--fault-profile") {
        let name = args.get(i + 1).expect("--fault-profile requires a name");
        fault.profile =
            FaultProfile::named(name).unwrap_or_else(|| panic!("unknown fault profile '{name}'"));
    }
    let cache_mode = match args.iter().position(|a| a == "--cache-mode") {
        None => "plain".to_string(),
        Some(i) => args.get(i + 1).expect("--cache-mode requires a value").clone(),
    };
    assert!(
        matches!(cache_mode.as_str(), "plain" | "int8" | "pq"),
        "unknown cache mode '{cache_mode}' (expected plain|int8|pq)"
    );
    let config = GatewayConfig {
        replicas: flag(&args, "--replicas", 2usize),
        fault,
        cache: SemanticCacheConfig {
            capacity: flag(&args, "--cache-capacity", 4096usize),
            tau: flag(&args, "--tau", 0.15f32),
            quantized: cache_mode == "int8",
            pq: cache_mode == "pq",
            ..SemanticCacheConfig::default()
        },
        ..GatewayConfig::default()
    };
    let shards = flag(&args, "--shards", 1usize).max(1);
    let store_dir = path_flag(&args, "--store-dir");
    let restart: String = flag(&args, "--restart", "warm".to_string());
    assert!(
        matches!(restart.as_str(), "warm" | "cold" | "reembed"),
        "unknown restart mode '{restart}' (expected warm|cold|reembed)"
    );
    let carry = args.iter().any(|a| a == "--carry-cache");
    assert!(
        !(carry && store_dir.is_some()),
        "--carry-cache (uninterrupted baseline) and --store-dir (restart between shards) \
         are mutually exclusive"
    );

    eprintln!(
        "soaking {} requests (universe {}, zipf {}) through {} shard(s) × {} replica(s), \
         cache {} τ {} mode {}, profile '{}'…",
        workload.requests,
        workload.universe,
        workload.zipf_s,
        shards,
        config.replicas,
        config.cache.capacity,
        config.cache.tau,
        cache_mode,
        config.fault.profile.name,
    );
    if let Some(dir) = &store_dir {
        eprintln!("cache store → {} ({restart} restart between shards)", dir.display());
    } else if carry {
        eprintln!("carrying one in-memory cache across shards (uninterrupted baseline)");
    }
    let system = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    let pas = PasSystem::try_build(&system, &BuildOptions::default())
        .expect("quick-scale build succeeds")
        .pas;

    let requests = generate(&workload);
    let chunk = requests.len().div_ceil(shards);
    let mut fleet = GatewayReport::default();
    // Snapshot the build-phase metrics out of the way so the per-shard
    // lines cover serving only, then fold shard snapshots like a fleet
    // metrics collector would.
    let mut fleet_metrics = pas_obs::snapshot();
    pas_obs::reset();
    let mut carried: Option<GatewayCache> = None;
    for shard in requests.chunks(chunk.max(1)) {
        let replicas = (0..config.replicas).map(|_| pas.clone()).collect();
        let mut gateway = if let Some(cache) = carried.take() {
            Gateway::with_cache(config.clone(), replicas, cache)
        } else if let Some(dir) = &store_dir {
            // A restart boundary: this shard's gateway reopens the cache
            // from whatever the previous shard left in the store.
            let mode = match restart.as_str() {
                "warm" => OpenMode::Warm,
                "cold" => OpenMode::Replay,
                _ => OpenMode::Reembed,
            };
            let cache = SemanticCache::open_from(
                config.cache.clone(),
                cache_embedder(&config.cache),
                dir,
                mode,
            )
            .unwrap_or_else(|e| panic!("opening cache store {}: {e}", dir.display()));
            Gateway::with_cache(config.clone(), replicas, cache)
        } else {
            Gateway::new(config.clone(), replicas)
        };
        let (_, report) = gateway.run(shard);
        fleet.merge(&report);
        if carry {
            carried = Some(gateway.into_cache());
        } else if let Some(dir) = &store_dir {
            let mut cache = gateway.into_cache();
            if let Some(e) = cache.store_error() {
                panic!("cache store write failed mid-soak: {e}");
            }
            // Warm restarts checkpoint before "dying"; cold/reembed just
            // drop the cache — a kill. Every append is already durable, so
            // the next shard's reopen replays the full log.
            if restart == "warm" {
                cache
                    .persist_to(dir)
                    .unwrap_or_else(|e| panic!("checkpointing cache store {}: {e}", dir.display()));
            }
        }
        if pas_obs::enabled() {
            let snap = pas_obs::snapshot();
            pas_obs::reset();
            if let Some(path) = &metrics_jsonl {
                snap.append_jsonl(path)
                    .unwrap_or_else(|e| panic!("appending {}: {e}", path.display()));
            }
            fleet_metrics.merge(&snap);
        }
    }
    if let Some(path) = &metrics_out {
        fleet_metrics
            .write_json(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("metrics → {}", path.display());
    }
    eprintln!("{}", fleet.render_summary());
    println!("{}", serde_json::to_string(&fleet).expect("report serializes"));
}

//! Gateway soak harness: a seeded open-loop load test against a real
//! (quick-scale) PAS complement model, printing the full mergeable
//! `GatewayReport` as JSON on stdout and a human summary on stderr.
//!
//! ```text
//! gateway_soak [--requests N] [--universe N] [--zipf S] [--near-dup F]
//!              [--replicas N] [--cache-capacity N] [--tau F] [--shards N]
//!              [--cache-mode plain|int8|pq] [--fault-profile NAME]
//!              [--seed S] [--threads N]
//!              [--metrics-out FILE] [--metrics-jsonl FILE]
//! ```
//!
//! `--cache-mode` picks the semantic-cache probe tier: `plain` (f32, the
//! default), `int8` (scalar-quantized codes), or `pq` (product-quantized
//! codes). Served results are identical across modes on this workload —
//! the CI backend matrix byte-diffs the reports to prove it.
//!
//! With `--shards N` the workload is split into N contiguous shards, each
//! served by its own gateway (a fleet of cold caches), and the per-shard
//! reports are folded with `GatewayReport::merge` — the aggregation path a
//! real fleet's metric collector would use. Everything is deterministic:
//! the same flags produce the same JSON on any machine at any thread
//! count (clean and eventual-success profiles).
//!
//! `--metrics-out FILE` writes the fleet-merged `pas-obs` snapshot as one
//! JSON object; `--metrics-jsonl FILE` additionally appends one snapshot
//! line per shard (the registry is snapshotted and reset between shards,
//! and the per-shard snapshots fold with `MetricsSnapshot::merge` — the
//! same collector path, at the metrics layer).

use pas_core::{BuildOptions, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_fault::{FaultConfig, FaultProfile};
use pas_gateway::{
    generate, Gateway, GatewayConfig, GatewayReport, SemanticCacheConfig, WorkloadConfig,
};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} requires a value")),
    }
}

fn path_flag(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{name} requires a path")).into())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    pas_par::set_threads(flag(&args, "--threads", 0usize));
    let metrics_out = path_flag(&args, "--metrics-out");
    let metrics_jsonl = path_flag(&args, "--metrics-jsonl");
    pas_obs::set_enabled(metrics_out.is_some() || metrics_jsonl.is_some());

    let workload = WorkloadConfig {
        requests: flag(&args, "--requests", 3000usize),
        universe: flag(&args, "--universe", 150usize),
        zipf_s: flag(&args, "--zipf", 1.1f64),
        near_dup_rate: flag(&args, "--near-dup", 0.15f64),
        seed: flag(&args, "--seed", 0x90a7u64),
        ..WorkloadConfig::default()
    };
    let mut fault = FaultConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--fault-profile") {
        let name = args.get(i + 1).expect("--fault-profile requires a name");
        fault.profile =
            FaultProfile::named(name).unwrap_or_else(|| panic!("unknown fault profile '{name}'"));
    }
    let cache_mode = match args.iter().position(|a| a == "--cache-mode") {
        None => "plain".to_string(),
        Some(i) => args.get(i + 1).expect("--cache-mode requires a value").clone(),
    };
    assert!(
        matches!(cache_mode.as_str(), "plain" | "int8" | "pq"),
        "unknown cache mode '{cache_mode}' (expected plain|int8|pq)"
    );
    let config = GatewayConfig {
        replicas: flag(&args, "--replicas", 2usize),
        fault,
        cache: SemanticCacheConfig {
            capacity: flag(&args, "--cache-capacity", 4096usize),
            tau: flag(&args, "--tau", 0.15f32),
            quantized: cache_mode == "int8",
            pq: cache_mode == "pq",
            ..SemanticCacheConfig::default()
        },
        ..GatewayConfig::default()
    };
    let shards = flag(&args, "--shards", 1usize).max(1);

    eprintln!(
        "soaking {} requests (universe {}, zipf {}) through {} shard(s) × {} replica(s), \
         cache {} τ {} mode {}, profile '{}'…",
        workload.requests,
        workload.universe,
        workload.zipf_s,
        shards,
        config.replicas,
        config.cache.capacity,
        config.cache.tau,
        cache_mode,
        config.fault.profile.name,
    );
    let system = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    let pas = PasSystem::try_build(&system, &BuildOptions::default())
        .expect("quick-scale build succeeds")
        .pas;

    let requests = generate(&workload);
    let chunk = requests.len().div_ceil(shards);
    let mut fleet = GatewayReport::default();
    // Snapshot the build-phase metrics out of the way so the per-shard
    // lines cover serving only, then fold shard snapshots like a fleet
    // metrics collector would.
    let mut fleet_metrics = pas_obs::snapshot();
    pas_obs::reset();
    for shard in requests.chunks(chunk.max(1)) {
        let replicas = (0..config.replicas).map(|_| pas.clone()).collect();
        let mut gateway = Gateway::new(config.clone(), replicas);
        let (_, report) = gateway.run(shard);
        fleet.merge(&report);
        if pas_obs::enabled() {
            let snap = pas_obs::snapshot();
            pas_obs::reset();
            if let Some(path) = &metrics_jsonl {
                snap.append_jsonl(path)
                    .unwrap_or_else(|e| panic!("appending {}: {e}", path.display()));
            }
            fleet_metrics.merge(&snap);
        }
    }
    if let Some(path) = &metrics_out {
        fleet_metrics
            .write_json(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("metrics → {}", path.display());
    }
    eprintln!("{}", fleet.render_summary());
    println!("{}", serde_json::to_string(&fleet).expect("report serializes"));
}

//! Regenerates Figure 6: category distribution of the generated dataset.

use pas_eval::experiments::fig6;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let stats = fig6(&ctx.dataset);
    println!("{}", stats.render_distribution());
    println!(
        "mean prompt words: {:.1}; mean complement words: {:.1}",
        stats.mean_prompt_words, stats.mean_complement_words
    );
    opts.write_metrics();
}

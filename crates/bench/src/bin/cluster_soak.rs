//! Cluster soak harness: a seeded fleet of simulated gateway nodes over a
//! real (quick-scale) PAS complement model, printing the folded
//! `ClusterReport` as JSON on stdout and a human summary on stderr.
//!
//! ```text
//! cluster_soak [--nodes N] [--replication N] [--requests-per-node N]
//!              [--universe N] [--zipf S] [--near-dup F]
//!              [--replicas N] [--cache-capacity N] [--tau F]
//!              [--net-profile none|lan|lossy] [--hedge-ms N] [--rescue-ms N]
//!              [--partition START:END:ID[,ID...]]
//!              [--leave T:NODE] [--join T:NODE] [--crash T:NODE]
//!              [--handoff-dir DIR]
//!              [--repl-fanout on|off] [--ae-interval MS]
//!              [--gossip-interval MS] [--gossip-fanout N] [--quiet-ms MS]
//!              [--fault-profile NAME] [--seed S] [--threads N]
//!              [--metrics-out FILE]
//! ```
//!
//! Each node receives its own workload derived from the fleet seed
//! (`WorkloadConfig::for_node`), so an N-node soak is N decorrelated
//! traffic streams, not N copies of one. Everything is deterministic: the
//! same flags produce the same JSON on any machine at any thread count —
//! the CI `cluster-soak` job byte-diffs `--threads 1` against
//! `--threads 8` on a partition+heal scenario with membership churn.
//!
//! `--partition START:END:IDS` isolates the comma-separated node ids from
//! the rest of the fleet for `[START, END)` simulated ms (repeatable).
//! `--leave T:NODE` / `--join T:NODE` / `--crash T:NODE` script membership
//! changes (repeatable; a crash is a hard death — no drain, no hand-off,
//! no announcement); with `--handoff-dir DIR` the rebalance hand-off
//! travels through `pas-store` segment logs under DIR instead of moving
//! in memory — the report is identical either way.
//!
//! Round-2 replication knobs: `--repl-fanout off` disables write-fanout
//! to candidate replicas (on by default), `--ae-interval MS` enables
//! periodic anti-entropy digest sweeps, `--gossip-interval MS` enables
//! the gossip failure detector (routing then uses each node's *local*
//! view), and `--quiet-ms MS` extends the run past the last arrival so
//! anti-entropy and gossip converge before the report is cut.

use pas_cluster::{fleet_workloads, Cluster, ClusterConfig, Membership};
use pas_core::{BuildOptions, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_fault::{FaultConfig, FaultProfile, NetFaultProfile};
use pas_gateway::{GatewayConfig, SemanticCacheConfig, WorkloadConfig};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} requires a value")),
    }
}

fn path_flag(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{name} requires a path")).into())
}

/// Every value following an occurrence of a repeatable flag.
fn repeated<'a>(args: &'a [String], name: &str) -> Vec<&'a String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .map(|(i, _)| args.get(i + 1).unwrap_or_else(|| panic!("{name} requires a value")))
        .collect()
}

/// Parses `T:NODE` (e.g. `--leave 500:1`).
fn membership_at(spec: &str, flag: &str) -> (u64, u32) {
    let (t, n) = spec.split_once(':').unwrap_or_else(|| panic!("{flag} expects T:NODE"));
    (
        t.parse().unwrap_or_else(|_| panic!("{flag}: bad time '{t}'")),
        n.parse().unwrap_or_else(|_| panic!("{flag}: bad node '{n}'")),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    pas_par::set_threads(flag(&args, "--threads", 0usize));
    let metrics_out = path_flag(&args, "--metrics-out");
    pas_obs::set_enabled(metrics_out.is_some());

    let nodes = flag(&args, "--nodes", 4usize);
    let workload = WorkloadConfig {
        requests: flag(&args, "--requests-per-node", 1500usize),
        universe: flag(&args, "--universe", 150usize),
        zipf_s: flag(&args, "--zipf", 1.1f64),
        near_dup_rate: flag(&args, "--near-dup", 0.15f64),
        seed: flag(&args, "--seed", 0xc105u64),
        ..WorkloadConfig::default()
    };
    let mut fault = FaultConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--fault-profile") {
        let name = args.get(i + 1).expect("--fault-profile requires a name");
        fault.profile =
            FaultProfile::named(name).unwrap_or_else(|| panic!("unknown fault profile '{name}'"));
    }
    let net_name: String = flag(&args, "--net-profile", "lan".to_string());
    let mut net = NetFaultProfile::named(&net_name)
        .unwrap_or_else(|| panic!("unknown net profile '{net_name}'"));
    for spec in repeated(&args, "--partition") {
        let mut parts = spec.splitn(3, ':');
        let (start, end, ids) = (
            parts.next().and_then(|v| v.parse().ok()),
            parts.next().and_then(|v| v.parse().ok()),
            parts.next(),
        );
        let (Some(start), Some(end), Some(ids)) = (start, end, ids) else {
            panic!("--partition expects START:END:ID[,ID...], got '{spec}'");
        };
        let island = ids
            .split(',')
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--partition: bad node id '{v}'")))
            .collect();
        net = net.with_partition(start, end, island);
    }
    let mut script: Vec<(u64, Membership)> = Vec::new();
    for spec in repeated(&args, "--leave") {
        let (t, n) = membership_at(spec, "--leave");
        script.push((t, Membership::Leave(n)));
    }
    for spec in repeated(&args, "--join") {
        let (t, n) = membership_at(spec, "--join");
        script.push((t, Membership::Join(n)));
    }
    for spec in repeated(&args, "--crash") {
        let (t, n) = membership_at(spec, "--crash");
        script.push((t, Membership::Crash(n)));
    }
    script.sort_by_key(|&(t, _)| t);

    let fanout_name: String = flag(&args, "--repl-fanout", "on".to_string());
    let repl_fanout = match fanout_name.as_str() {
        "on" => true,
        "off" => false,
        other => panic!("--repl-fanout expects on|off, got '{other}'"),
    };

    let config = ClusterConfig {
        nodes,
        replication: flag(&args, "--replication", 2usize),
        gateway: GatewayConfig {
            replicas: flag(&args, "--replicas", 2usize),
            fault,
            cache: SemanticCacheConfig {
                capacity: flag(&args, "--cache-capacity", 4096usize),
                tau: flag(&args, "--tau", 0.15f32),
                ..SemanticCacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        net,
        hedge_ms: flag(&args, "--hedge-ms", 12u64),
        rescue_ms: flag(&args, "--rescue-ms", 40u64),
        script,
        handoff_dir: path_flag(&args, "--handoff-dir"),
        repl_fanout,
        ae_interval_ms: flag(&args, "--ae-interval", 0u64),
        gossip_interval_ms: flag(&args, "--gossip-interval", 0u64),
        gossip_fanout: flag(&args, "--gossip-fanout", 2usize),
        quiet_ms: flag(&args, "--quiet-ms", 0u64),
        ..ClusterConfig::default()
    };

    eprintln!(
        "soaking {} requests/node across {} node(s) (r={}, net '{}', {} membership change(s)), \
         {} replica(s)/node, cache {} τ {}, profile '{}'…",
        workload.requests,
        nodes,
        config.replication,
        config.net.name,
        config.script.len(),
        config.gateway.replicas,
        config.gateway.cache.capacity,
        config.gateway.cache.tau,
        config.gateway.fault.profile.name,
    );
    let system = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    let pas = PasSystem::try_build(&system, &BuildOptions::default())
        .expect("quick-scale build succeeds")
        .pas;

    let workloads = fleet_workloads(&workload, nodes);
    let mut cluster = Cluster::new(config, |_, _| pas.clone());
    let (_, report) = cluster.run(&workloads);

    if let Some(path) = &metrics_out {
        pas_obs::snapshot()
            .write_json(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("metrics → {}", path.display());
    }
    eprintln!("{}", report.render_summary());
    println!("{}", serde_json::to_string(&report).expect("report serializes"));
}

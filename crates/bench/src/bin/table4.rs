//! Regenerates Table 4: human-evaluation metrics with and without PAS.

use pas_eval::experiments::table4;
use pas_eval::human::HumanEvalConfig;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    let t4 = table4(&ctx, &HumanEvalConfig::default());
    println!("{}", t4.render());
    println!("average grade gain (paper: +0.41): {:+.2}", t4.average_gain());
    opts.write_metrics();
}

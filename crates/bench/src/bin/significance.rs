//! Paired-bootstrap significance of the headline comparisons: for each
//! main model and suite, is PAS's win-rate gain over the baseline and over
//! BPO statistically solid across items?

use pas_core::NoOptimizer;
use pas_eval::{paired_bootstrap, per_item_credits};
use pas_llm::ModelProfile;

fn main() {
    let opts = bench::Options::from_env();
    let ctx = opts.build_context();
    println!("Paired bootstrap (1000 resamples, 95% CI), per main model:\n");
    println!(
        "{:<24} {:<22} {:>10} {:>18} {:>8}",
        "model", "comparison (arena)", "Δ mean", "95% CI", "p(≤0)"
    );
    for name in ModelProfile::main_model_names() {
        let model = ctx.model(name);
        let reference = ctx.reference(&ctx.env.arena);
        let base = per_item_credits(&model, &NoOptimizer, &ctx.env.arena, &reference, &ctx.judge);
        let pas = per_item_credits(&model, &ctx.pas_qwen, &ctx.env.arena, &reference, &ctx.judge);
        let bpo = per_item_credits(&model, &ctx.bpo, &ctx.env.arena, &reference, &ctx.judge);
        for (label, other) in [("PAS - None", &base), ("PAS - BPO", &bpo)] {
            let b = paired_bootstrap(&pas, other, 1000, opts.seed);
            println!(
                "{:<24} {:<22} {:>+9.2} [{:>+7.2}, {:>+7.2}] {:>8.3}{}",
                name,
                label,
                b.mean_diff,
                b.ci_low,
                b.ci_high,
                b.p_not_better,
                if b.significant() { "  *" } else { "" },
            );
        }
    }
    println!("\n* = 95% CI excludes zero in PAS's favour");
    opts.write_metrics();
}

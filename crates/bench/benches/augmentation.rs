//! Plug-and-play augmentation latency: the runtime cost PAS adds per query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use pas_core::{PasSystem, PromptOptimizer, SystemConfig};
use pas_data::CorpusConfig;
use pas_llm::{ChatModel, SimLlm};

fn system() -> &'static PasSystem {
    static SYS: OnceLock<PasSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        PasSystem::build(&SystemConfig {
            corpus: CorpusConfig { size: 1200, seed: 13, ..CorpusConfig::default() },
            ..SystemConfig::default()
        })
    })
}

fn bench_augment(c: &mut Criterion) {
    let sys = system();
    let prompt = "How should I implement a rate limiter for a multi-tenant api gateway?";
    c.bench_function("pas_augment", |b| {
        b.iter(|| black_box(sys.pas.augment(black_box(prompt))));
    });
    c.bench_function("pas_optimize", |b| {
        b.iter(|| black_box(sys.pas.optimize(black_box(prompt))));
    });
}

fn bench_enhance(c: &mut Criterion) {
    let sys = system();
    let model = SimLlm::named("gpt-4-0613", sys.world.clone());
    let prompt = "How should I implement a rate limiter for a multi-tenant api gateway?";
    c.bench_function("chat_without_pas", |b| {
        b.iter(|| black_box(model.chat(black_box(prompt))));
    });
    c.bench_function("enhance_with_pas", |b| {
        b.iter(|| black_box(sys.pas.enhance(&model, black_box(prompt))));
    });
}

criterion_group!(benches, bench_augment, bench_enhance);
criterion_main!(benches);

//! Sentence-embedding throughput: the dedup front-end of §3.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pas_data::{Corpus, CorpusConfig};
use pas_embed::{Embedder, NgramEmbedder};

fn bench_embed(c: &mut Criterion) {
    let texts: Vec<String> =
        Corpus::generate(&CorpusConfig { size: 1000, seed: 8, ..CorpusConfig::default() })
            .records
            .into_iter()
            .map(|r| r.text)
            .collect();
    let bytes: usize = texts.iter().map(String::len).sum();

    let mut group = c.benchmark_group("embed_1000_prompts");
    group.throughput(Throughput::Bytes(bytes as u64));
    for &dim in &[32usize, 64, 128] {
        let embedder = NgramEmbedder::new(dim, 7);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &embedder, |b, e| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for t in &texts {
                    acc += e.embed(t)[0];
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_cosine(c: &mut Criterion) {
    let e = NgramEmbedder::new(64, 7);
    let a = e.embed("how do I sort a list of a million integers efficiently");
    let b_vec = e.embed("how to sort one million integers fast");
    c.bench_function("cosine_64d", |b| {
        b.iter(|| black_box(pas_embed::cosine(&a, &b_vec)));
    });
}

criterion_group!(benches, bench_embed, bench_cosine);
criterion_main!(benches);

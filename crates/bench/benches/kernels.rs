//! Scalar-reference vs kernel ns/op for the compute primitives the pipeline
//! leans on: dot products and cosine probes at the embedding dimension the
//! selection pipeline actually uses (64), and matmuls at the LM-inference
//! shapes.
//!
//! "Scalar" is the pre-kernel implementation (sequential single-accumulator
//! sums, per-probe norm recomputation, naive i-k-j matmul) — the code these
//! kernels replaced, kept here as the baseline. After the Criterion runs a
//! hand-written `main` computes per-workload speedups and writes a
//! machine-readable summary to `BENCH_kernels.json` at the workspace root.

use criterion::Criterion;
use std::hint::black_box;

use pas_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The embedding dimension of the selection pipeline (`SelectionConfig`).
const EMBED_DIM: usize = 64;
/// Stored vectors probed per iteration in the dot/cosine workloads.
const PROBES: usize = 256;

/// Pre-kernel scalar implementations, verbatim from the replaced code.
mod scalar {
    /// Sequential single-accumulator dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// The old `CosineDistance::distance`: fused pass recomputing both
    /// operand norms (two `sqrt`s) on every probe.
    pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }

    /// The old unblocked i-k-j `Matrix::matmul`.
    pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }
}

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).collect()
}

/// Benches `scalar` and `kernel` bodies under `group/scalar` and
/// `group/kernel`.
fn bench_pair<R, F: Fn() -> R, G: Fn() -> R>(c: &mut Criterion, group: &str, scalar: F, kernel: G) {
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.bench_function("scalar", |b| b.iter(|| black_box(scalar())));
    g.bench_function("kernel", |b| b.iter(|| black_box(kernel())));
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let stored = random_vectors(PROBES, EMBED_DIM, 101);
    let query = &random_vectors(1, EMBED_DIM, 103)[0];
    bench_pair(
        c,
        "kernels_dot_64",
        || stored.iter().map(|v| scalar::dot(query, v)).sum::<f32>(),
        || stored.iter().map(|v| pas_kernels::dot(query, v)).sum::<f32>(),
    );
}

fn bench_cosine_probe(c: &mut Criterion) {
    // Scalar side probes raw vectors, recomputing both norms each time (the
    // old per-probe path). Kernel side probes the pre-normalized store:
    // unit vectors prepared once at insert, each probe a single 1 − dot.
    let raw = random_vectors(PROBES, EMBED_DIM, 107);
    let raw_query = &random_vectors(1, EMBED_DIM, 109)[0];
    let unit: Vec<Vec<f32>> = raw
        .iter()
        .map(|v| {
            let mut u = v.clone();
            let n = pas_kernels::sum_sq(&u).sqrt();
            pas_kernels::scale(&mut u, 1.0 / n);
            u
        })
        .collect();
    let mut unit_query = raw_query.clone();
    let query_norm = pas_kernels::sum_sq(&unit_query).sqrt();
    pas_kernels::scale(&mut unit_query, 1.0 / query_norm);
    bench_pair(
        c,
        "kernels_cosine_probe_64",
        || raw.iter().map(|v| scalar::cosine_distance(raw_query, v)).sum::<f32>(),
        || unit.iter().map(|v| (1.0 - pas_kernels::dot(&unit_query, v)).max(0.0)).sum::<f32>(),
    );
}

fn bench_matmul(c: &mut Criterion, group: &'static str, m: usize, k: usize, n: usize) {
    let a = random_vectors(1, m * k, 113 + (m * k) as u64)[0].clone();
    let b = random_vectors(1, k * n, 127 + (k * n) as u64)[0].clone();
    let ma = Matrix::from_vec(m, k, a.clone());
    let mb = Matrix::from_vec(k, n, b.clone());
    bench_pair(c, group, || scalar::matmul(m, k, n, &a, &b)[0], || ma.matmul(&mb).data()[0]);
}

/// One workload's summary line in `BENCH_kernels.json`.
struct Workload {
    name: &'static str,
    group: &'static str,
    elements: usize,
}

const WORKLOADS: [Workload; 5] = [
    Workload { name: "dot_64", group: "kernels_dot_64", elements: PROBES },
    Workload { name: "cosine_probe_64", group: "kernels_cosine_probe_64", elements: PROBES },
    Workload { name: "matmul_lm_hidden_32x64x32", group: "kernels_matmul_32x64x32", elements: 1 },
    Workload { name: "matmul_lm_logits_32x32x256", group: "kernels_matmul_32x32x256", elements: 1 },
    Workload { name: "matmul_square_64", group: "kernels_matmul_64x64x64", elements: 1 },
];

fn median_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no bench result named {name}"))
        .median_ns
}

fn write_summary(c: &Criterion) {
    let mut lines = Vec::new();
    for w in &WORKLOADS {
        let scalar_ns = median_ns(c, &format!("{}/scalar", w.group));
        let kernel_ns = median_ns(c, &format!("{}/kernel", w.group));
        lines.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"elements\": {}, ",
                "\"scalar_ns\": {:.0}, \"kernel_ns\": {:.0}, ",
                "\"scalar_ns_per_element\": {:.1}, ",
                "\"kernel_ns_per_element\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            w.name,
            w.elements,
            scalar_ns,
            kernel_ns,
            scalar_ns / w.elements as f64,
            kernel_ns / w.elements as f64,
            scalar_ns / kernel_ns,
        ));
    }
    let json = format!(
        "{{\n  \"host\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        bench::host_json(),
        lines.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}:\n{json}");
}

fn main() {
    let mut c = Criterion::default();
    bench_dot(&mut c);
    bench_cosine_probe(&mut c);
    bench_matmul(&mut c, "kernels_matmul_32x64x32", 32, 64, 32);
    bench_matmul(&mut c, "kernels_matmul_32x32x256", 32, 32, 256);
    bench_matmul(&mut c, "kernels_matmul_64x64x64", 64, 64, 64);
    write_summary(&c);
}

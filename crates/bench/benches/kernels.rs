//! Scalar-reference vs kernel ns/op for the compute primitives the pipeline
//! leans on, now with one row **per kernel backend**: `scalar` is the
//! pre-kernel implementation (sequential single-accumulator sums, per-probe
//! norm recomputation, naive i-k-j matmul), `striped` is the portable
//! 8-lane-striped kernel backend, and `simd` is the widest `core::arch`
//! backend the host supports (AVX2/SSE2; the row is absent on hosts without
//! one). The striped and simd rows compute bit-identical results — the rows
//! measure the speed of the *same* arithmetic.
//!
//! Two ANN-level workloads ride along: the int8-quantized probe path (f32
//! panel scan vs integer-dot panel scan at the same 64-dim shape, with the
//! stored probe bytes per vector for both), and `Hnsw::search_batch` vs a
//! sequential search loop over the same micro-batch.
//!
//! After the Criterion runs a hand-written `main` computes per-workload
//! speedups and writes a machine-readable summary to `BENCH_kernels.json`
//! at the workspace root.

use criterion::Criterion;
use std::hint::black_box;

use pas_ann::{CosineDistance, Hnsw, HnswConfig, Metric, QuantStore};
use pas_kernels::Backend;
use pas_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The embedding dimension of the selection pipeline (`SelectionConfig`).
const EMBED_DIM: usize = 64;
/// Stored vectors probed per iteration in the dot/cosine workloads.
const PROBES: usize = 256;
/// Rows in the quantized-probe panel (one ExactIndex scan chunk's worth).
const QUANT_ROWS: usize = 1024;
/// Index size and micro-batch width for the `search_batch` workload.
const BATCH_INDEX: usize = 2000;
const BATCH_QUERIES: usize = 16;

/// Pre-kernel scalar implementations, verbatim from the replaced code.
mod scalar {
    /// Sequential single-accumulator dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// The old `CosineDistance::distance`: fused pass recomputing both
    /// operand norms (two `sqrt`s) on every probe.
    pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }

    /// The old unblocked i-k-j `Matrix::matmul`.
    pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }
}

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).collect()
}

fn prepare_unit(v: &[f32]) -> Vec<f32> {
    let mut u = v.to_vec();
    CosineDistance.prepare(&mut u);
    u
}

/// Benches `scalar` under `group/scalar` and `kernel` under both
/// `group/striped` (backend pinned to the portable stripes) and
/// `group/simd` (widest supported backend; skipped on scalar-only hosts).
/// Leaves the process on the best backend.
fn bench_rows<R, F: Fn() -> R, G: Fn() -> R>(c: &mut Criterion, group: &str, scalar: F, kernel: G) {
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.bench_function("scalar", |b| b.iter(|| black_box(scalar())));
    pas_kernels::set_backend(Backend::Scalar);
    g.bench_function("striped", |b| b.iter(|| black_box(kernel())));
    if pas_kernels::simd_available() {
        pas_kernels::set_backend(pas_kernels::best_supported());
        g.bench_function("simd", |b| b.iter(|| black_box(kernel())));
    }
    pas_kernels::set_backend(pas_kernels::best_supported());
    g.finish();
}

/// Benches two bodies under fixed row names, on the best backend.
fn bench_pair<R, F: Fn() -> R, G: Fn() -> R>(
    c: &mut Criterion,
    group: &str,
    rows: [&str; 2],
    first: F,
    second: G,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.bench_function(rows[0], |b| b.iter(|| black_box(first())));
    g.bench_function(rows[1], |b| b.iter(|| black_box(second())));
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    // Pairwise dots are latency-bound (one dependent accumulator chain), so
    // the simd row here shows parity, not speedup — the panel workloads
    // below are where the independent-chain backends pull ahead.
    let stored = random_vectors(PROBES, EMBED_DIM, 101);
    let query = &random_vectors(1, EMBED_DIM, 103)[0];
    bench_rows(
        c,
        "kernels_dot_64",
        || stored.iter().map(|v| scalar::dot(query, v)).sum::<f32>(),
        || stored.iter().map(|v| pas_kernels::dot(query, v)).sum::<f32>(),
    );
}

fn bench_cosine_probe(c: &mut Criterion) {
    // Scalar side probes raw vectors, recomputing both norms each time (the
    // old per-probe path). Kernel side is the production probe: unit vectors
    // prepared once at insert and packed into a panel, one
    // `prepared_distance_block` per sweep.
    let raw = random_vectors(PROBES, EMBED_DIM, 107);
    let raw_query = &random_vectors(1, EMBED_DIM, 109)[0];
    let panel: Vec<f32> = raw.iter().flat_map(|v| prepare_unit(v)).collect();
    let unit_query = prepare_unit(raw_query);
    bench_rows(
        c,
        "kernels_cosine_probe_64",
        || raw.iter().map(|v| scalar::cosine_distance(raw_query, v)).sum::<f32>(),
        || {
            let mut out = vec![0.0f32; PROBES];
            CosineDistance.prepared_distance_block(&unit_query, &panel, &mut out);
            out.iter().sum::<f32>()
        },
    );
}

fn bench_matmul(c: &mut Criterion, group: &'static str, m: usize, k: usize, n: usize) {
    let a = random_vectors(1, m * k, 113 + (m * k) as u64)[0].clone();
    let b = random_vectors(1, k * n, 127 + (k * n) as u64)[0].clone();
    let ma = Matrix::from_vec(m, k, a.clone());
    let mb = Matrix::from_vec(k, n, b.clone());
    bench_rows(c, group, || scalar::matmul(m, k, n, &a, &b)[0], || ma.matmul(&mb).data()[0]);
}

fn bench_quantized_probe(c: &mut Criterion) {
    // The ExactIndex/HNSW probe path at chunk scale: one query against a
    // packed 1024-row panel, f32 block probe vs int8 integer-dot block
    // probe. Both run on the best backend; the bytes each path reads per
    // stored vector go into the summary.
    let raw = random_vectors(QUANT_ROWS, EMBED_DIM, 131);
    let unit: Vec<Vec<f32>> = raw.iter().map(|v| prepare_unit(v)).collect();
    let panel: Vec<f32> = unit.concat();
    let mut store = QuantStore::new();
    for u in &unit {
        store.push(&CosineDistance, u);
    }
    let unit_query = prepare_unit(&random_vectors(1, EMBED_DIM, 137)[0]);
    let (qcodes, qscale) = CosineDistance.quantize(&unit_query).expect("cosine quantizes");
    let (codes, scales) = store.rows(0, QUANT_ROWS);
    bench_pair(
        c,
        "ann_quant_probe_1024x64",
        ["f32", "int8"],
        || {
            let mut out = vec![0.0f32; QUANT_ROWS];
            CosineDistance.prepared_distance_block(&unit_query, &panel, &mut out);
            out.iter().sum::<f32>()
        },
        || {
            let mut out = vec![0.0f32; QUANT_ROWS];
            CosineDistance.quantized_distance_block(&qcodes, qscale, codes, scales, &mut out);
            out.iter().sum::<f32>()
        },
    );
}

fn bench_search_batch(c: &mut Criterion) {
    // A gateway micro-batch against the HNSW index: sequential per-query
    // `search` vs the lock-step `search_batch` that packs shared neighbor
    // panels. Run twice — on the f32 index and on its int8-quantized twin.
    // Queries cluster around a few bases, like the near-duplicate prompts a
    // linger window actually collects — that overlap is what the shared
    // panels amortize.
    let vecs = random_vectors(BATCH_INDEX, EMBED_DIM, 139);
    let bases = random_vectors(3, EMBED_DIM, 149);
    let noise = random_vectors(BATCH_QUERIES, EMBED_DIM, 151);
    let queries: Vec<Vec<f32>> = (0..BATCH_QUERIES)
        .map(|i| {
            let base = &bases[i % bases.len()];
            base.iter().zip(&noise[i]).map(|(b, n)| b + 0.02 * n).collect()
        })
        .collect();
    let mut index = Hnsw::new(HnswConfig::default(), CosineDistance);
    for v in &vecs {
        index.insert(v.clone());
    }
    let mut quant = Hnsw::new(HnswConfig::default(), CosineDistance);
    quant.set_quantization(true);
    for v in &vecs {
        quant.insert(v.clone());
    }
    for (group, idx) in [("ann_search_batch_f32", &index), ("ann_search_batch_int8", &quant)] {
        bench_pair(
            c,
            group,
            ["sequential", "batched"],
            || queries.iter().map(|q| idx.search(q, 8, 48).len()).sum::<usize>(),
            || idx.search_batch(&queries, 8, 48).iter().map(|r| r.len()).sum::<usize>(),
        );
    }
}

/// One kernel workload's summary line in `BENCH_kernels.json`.
struct Workload {
    name: &'static str,
    group: &'static str,
    elements: usize,
}

const WORKLOADS: [Workload; 5] = [
    Workload { name: "dot_64", group: "kernels_dot_64", elements: PROBES },
    Workload { name: "cosine_probe_64", group: "kernels_cosine_probe_64", elements: PROBES },
    Workload { name: "matmul_lm_hidden_32x64x32", group: "kernels_matmul_32x64x32", elements: 1 },
    Workload { name: "matmul_lm_logits_32x32x256", group: "kernels_matmul_32x32x256", elements: 1 },
    Workload { name: "matmul_square_64", group: "kernels_matmul_64x64x64", elements: 1 },
];

fn median_ns(c: &Criterion, name: &str) -> f64 {
    maybe_median_ns(c, name).unwrap_or_else(|| panic!("no bench result named {name}"))
}

fn maybe_median_ns(c: &Criterion, name: &str) -> Option<f64> {
    c.results().iter().find(|r| r.name == name).map(|r| r.median_ns)
}

fn json_ratio(num: f64, denom: Option<f64>) -> String {
    match denom {
        Some(d) => format!("{:.2}", num / d),
        None => "null".into(),
    }
}

fn write_summary(c: &Criterion) {
    let mut kernel_lines = Vec::new();
    for w in &WORKLOADS {
        let scalar_ns = median_ns(c, &format!("{}/scalar", w.group));
        let striped_ns = median_ns(c, &format!("{}/striped", w.group));
        let simd_ns = maybe_median_ns(c, &format!("{}/simd", w.group));
        kernel_lines.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"elements\": {}, ",
                "\"scalar_ns\": {:.0}, \"striped_ns\": {:.0}, \"simd_ns\": {}, ",
                "\"striped_vs_scalar\": {:.2}, \"simd_vs_striped\": {}}}"
            ),
            w.name,
            w.elements,
            scalar_ns,
            striped_ns,
            simd_ns.map(|v| format!("{v:.0}")).unwrap_or_else(|| "null".into()),
            scalar_ns / striped_ns,
            json_ratio(striped_ns, simd_ns),
        ));
    }

    let f32_ns = median_ns(c, "ann_quant_probe_1024x64/f32");
    let int8_ns = median_ns(c, "ann_quant_probe_1024x64/int8");
    let bytes_f32 = EMBED_DIM * 4;
    let bytes_int8 = EMBED_DIM + 4;
    let mut ann_lines = vec![format!(
        concat!(
            "    {{\"name\": \"quantized_probe_1024x64\", \"rows\": {}, ",
            "\"f32_ns\": {:.0}, \"int8_ns\": {:.0}, \"speedup\": {:.2}, ",
            "\"probe_bytes_f32\": {}, \"probe_bytes_int8\": {}, ",
            "\"bytes_ratio\": {:.2}}}"
        ),
        QUANT_ROWS,
        f32_ns,
        int8_ns,
        f32_ns / int8_ns,
        bytes_f32,
        bytes_int8,
        bytes_f32 as f64 / bytes_int8 as f64,
    )];
    for group in ["ann_search_batch_f32", "ann_search_batch_int8"] {
        let seq_ns = median_ns(c, &format!("{group}/sequential"));
        let bat_ns = median_ns(c, &format!("{group}/batched"));
        ann_lines.push(format!(
            concat!(
                "    {{\"name\": \"{}_{}x{}\", \"sequential_ns\": {:.0}, ",
                "\"batched_ns\": {:.0}, \"speedup\": {:.2}}}"
            ),
            group.trim_start_matches("ann_"),
            BATCH_QUERIES,
            BATCH_INDEX,
            seq_ns,
            bat_ns,
            seq_ns / bat_ns,
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"host\": {},\n  \"backend\": \"{}\",\n",
            "  \"kernels\": [\n{}\n  ],\n  \"ann\": [\n{}\n  ]\n}}\n"
        ),
        bench::host_json(),
        pas_kernels::backend().name(),
        kernel_lines.join(",\n"),
        ann_lines.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}:\n{json}");
}

fn main() {
    let mut c = Criterion::default();
    bench_dot(&mut c);
    bench_cosine_probe(&mut c);
    bench_matmul(&mut c, "kernels_matmul_32x64x32", 32, 64, 32);
    bench_matmul(&mut c, "kernels_matmul_32x32x256", 32, 32, 256);
    bench_matmul(&mut c, "kernels_matmul_64x64x64", 64, 64, 64);
    bench_quantized_probe(&mut c);
    bench_search_batch(&mut c);
    write_summary(&c);
}

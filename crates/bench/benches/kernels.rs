//! Scalar-reference vs kernel ns/op for the compute primitives the pipeline
//! leans on, now with one row **per kernel backend**: `scalar` is the
//! pre-kernel implementation (sequential single-accumulator sums, per-probe
//! norm recomputation, naive i-k-j matmul), `striped` is the portable
//! 8-lane-striped kernel backend, and `simd` is the widest `core::arch`
//! backend the host supports (AVX2/SSE2; the row is absent on hosts without
//! one). The striped and simd rows compute bit-identical results — the rows
//! measure the speed of the *same* arithmetic.
//!
//! ANN-level workloads ride along: the quantized probe paths (f32 panel
//! scan vs int8 integer-dot scan vs product-quantized ADC scan at the same
//! 64-dim shape, with the stored probe bytes per vector for each), PQ
//! codebook training, a 100k-entry `ExactIndex` probe across all three
//! tiers, and `Hnsw::search_batch` vs a sequential search loop over the
//! same micro-batch on every tier. The summary asserts the int8 and PQ
//! batched paths are no slower than their sequential loops — the committed
//! `BENCH_kernels.json` is the regression fence.
//!
//! After the Criterion runs a hand-written `main` computes per-workload
//! speedups and writes a machine-readable summary to `BENCH_kernels.json`
//! at the workspace root.

use criterion::Criterion;
use std::hint::black_box;

use pas_ann::{
    CosineDistance, ExactIndex, Hnsw, HnswConfig, Metric, PqConfig, PqStore, QuantStore,
};
use pas_kernels::Backend;
use pas_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The embedding dimension of the selection pipeline (`SelectionConfig`).
const EMBED_DIM: usize = 64;
/// Stored vectors probed per iteration in the dot/cosine workloads.
const PROBES: usize = 256;
/// Rows in the quantized-probe panel (one ExactIndex scan chunk's worth).
const QUANT_ROWS: usize = 1024;
/// Index size and micro-batch width for the `search_batch` workload.
const BATCH_INDEX: usize = 2000;
const BATCH_QUERIES: usize = 16;

/// Pre-kernel scalar implementations, verbatim from the replaced code.
mod scalar {
    /// Sequential single-accumulator dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// The old `CosineDistance::distance`: fused pass recomputing both
    /// operand norms (two `sqrt`s) on every probe.
    pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }

    /// The old unblocked i-k-j `Matrix::matmul`.
    pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }
}

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).collect()
}

fn prepare_unit(v: &[f32]) -> Vec<f32> {
    let mut u = v.to_vec();
    CosineDistance.prepare(&mut u);
    u
}

/// Benches `scalar` under `group/scalar` and `kernel` under both
/// `group/striped` (backend pinned to the portable stripes) and
/// `group/simd` (widest supported backend; skipped on scalar-only hosts).
/// Leaves the process on the best backend.
fn bench_rows<R, F: Fn() -> R, G: Fn() -> R>(c: &mut Criterion, group: &str, scalar: F, kernel: G) {
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.bench_function("scalar", |b| b.iter(|| black_box(scalar())));
    pas_kernels::set_backend(Backend::Scalar);
    g.bench_function("striped", |b| b.iter(|| black_box(kernel())));
    if pas_kernels::simd_available() {
        pas_kernels::set_backend(pas_kernels::best_supported());
        g.bench_function("simd", |b| b.iter(|| black_box(kernel())));
    }
    pas_kernels::set_backend(pas_kernels::best_supported());
    g.finish();
}

/// Benches two bodies under fixed row names, on the best backend.
fn bench_pair<R, F: Fn() -> R, G: Fn() -> R>(
    c: &mut Criterion,
    group: &str,
    rows: [&str; 2],
    first: F,
    second: G,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.bench_function(rows[0], |b| b.iter(|| black_box(first())));
    g.bench_function(rows[1], |b| b.iter(|| black_box(second())));
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    // Pairwise dots are latency-bound (one dependent accumulator chain), so
    // the simd row here shows parity, not speedup — the panel workloads
    // below are where the independent-chain backends pull ahead.
    let stored = random_vectors(PROBES, EMBED_DIM, 101);
    let query = &random_vectors(1, EMBED_DIM, 103)[0];
    bench_rows(
        c,
        "kernels_dot_64",
        || stored.iter().map(|v| scalar::dot(query, v)).sum::<f32>(),
        || stored.iter().map(|v| pas_kernels::dot(query, v)).sum::<f32>(),
    );
}

fn bench_cosine_probe(c: &mut Criterion) {
    // Scalar side probes raw vectors, recomputing both norms each time (the
    // old per-probe path). Kernel side is the production probe: unit vectors
    // prepared once at insert and packed into a panel, one
    // `prepared_distance_block` per sweep.
    let raw = random_vectors(PROBES, EMBED_DIM, 107);
    let raw_query = &random_vectors(1, EMBED_DIM, 109)[0];
    let panel: Vec<f32> = raw.iter().flat_map(|v| prepare_unit(v)).collect();
    let unit_query = prepare_unit(raw_query);
    bench_rows(
        c,
        "kernels_cosine_probe_64",
        || raw.iter().map(|v| scalar::cosine_distance(raw_query, v)).sum::<f32>(),
        || {
            let mut out = vec![0.0f32; PROBES];
            CosineDistance.prepared_distance_block(&unit_query, &panel, &mut out);
            out.iter().sum::<f32>()
        },
    );
}

fn bench_matmul(c: &mut Criterion, group: &'static str, m: usize, k: usize, n: usize) {
    let a = random_vectors(1, m * k, 113 + (m * k) as u64)[0].clone();
    let b = random_vectors(1, k * n, 127 + (k * n) as u64)[0].clone();
    let ma = Matrix::from_vec(m, k, a.clone());
    let mb = Matrix::from_vec(k, n, b.clone());
    bench_rows(c, group, || scalar::matmul(m, k, n, &a, &b)[0], || ma.matmul(&mb).data()[0]);
}

fn bench_quantized_probe(c: &mut Criterion) {
    // The ExactIndex/HNSW probe path at chunk scale: one query against a
    // packed 1024-row panel — f32 block probe vs int8 integer-dot block
    // probe vs product-quantized ADC block probe. All run on the best
    // backend; the bytes each path reads per stored vector go into the
    // summary. Per-query prep is excluded uniformly (the unit query, its
    // int8 codes, and the ADC table are built once outside the timed body).
    let raw = random_vectors(QUANT_ROWS, EMBED_DIM, 131);
    let unit: Vec<Vec<f32>> = raw.iter().map(|v| prepare_unit(v)).collect();
    let panel: Vec<f32> = unit.concat();
    let mut store = QuantStore::new();
    for u in &unit {
        store.push(&CosineDistance, u);
    }
    let rows: Vec<&[f32]> = unit.iter().map(|v| v.as_slice()).collect();
    let mut pq = PqStore::new(PqConfig::default());
    pq.train_encode(&rows, EMBED_DIM);
    let unit_query = prepare_unit(&random_vectors(1, EMBED_DIM, 137)[0]);
    let (qcodes, qscale) = CosineDistance.quantize(&unit_query).expect("cosine quantizes");
    let (codes, scales) = store.rows(0, QUANT_ROWS);
    let table = pq.table(&unit_query);
    let mut g = c.benchmark_group("ann_quant_probe_1024x64");
    g.sample_size(20);
    g.bench_function("f32", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; QUANT_ROWS];
            CosineDistance.prepared_distance_block(&unit_query, &panel, &mut out);
            black_box(out.iter().sum::<f32>())
        })
    });
    g.bench_function("int8", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; QUANT_ROWS];
            CosineDistance.quantized_distance_block(&qcodes, qscale, codes, scales, &mut out);
            black_box(out.iter().sum::<f32>())
        })
    });
    g.bench_function("pq", |b| {
        b.iter(|| {
            let mut sums = Vec::new();
            let mut out = Vec::new();
            table.distance_block(pq.rows(0, QUANT_ROWS), &mut sums, &mut out);
            black_box(out.iter().sum::<f32>())
        })
    });
    g.finish();
}

fn bench_pq_train(c: &mut Criterion) {
    // Codebook training + bulk encoding at index scale: seeded per-subspace
    // k-means over the training sample, then one encode pass over all rows.
    // This is the one-off cost the lazy-training threshold amortizes.
    let raw = random_vectors(QUANT_ROWS, EMBED_DIM, 131);
    let unit: Vec<Vec<f32>> = raw.iter().map(|v| prepare_unit(v)).collect();
    let rows: Vec<&[f32]> = unit.iter().map(|v| v.as_slice()).collect();
    let mut g = c.benchmark_group("ann_pq_train_1024x64");
    g.sample_size(10);
    g.bench_function("train", |b| {
        b.iter(|| {
            let mut store = PqStore::new(PqConfig::default());
            store.train_encode(&rows, EMBED_DIM);
            black_box(store.len())
        })
    });
    g.finish();
}

/// Index size for the large-index probe workload.
const BIG_ROWS: usize = 100_000;

fn bench_big_index_probe(c: &mut Criterion) {
    // End-to-end `ExactIndex::search` (scan + over-fetch + exact re-rank)
    // at 100k entries, where the probe tier's memory traffic dominates:
    // 25.6 MB of f32 panels vs 6.8 MB of int8 codes vs 0.8 MB of PQ codes.
    let raw = random_vectors(BIG_ROWS, EMBED_DIM, 157);
    let mut plain = ExactIndex::new(CosineDistance);
    let mut int8 = ExactIndex::new(CosineDistance);
    int8.set_quantization(true);
    let mut pq = ExactIndex::new(CosineDistance);
    pq.set_product_quantization(true);
    for v in &raw {
        plain.insert(v.clone());
        int8.insert(v.clone());
        pq.insert(v.clone());
    }
    let query = &random_vectors(1, EMBED_DIM, 163)[0];
    let mut g = c.benchmark_group("ann_exact_probe_100000x64");
    g.sample_size(10);
    for (row, idx) in [("f32", &plain), ("int8", &int8), ("pq", &pq)] {
        g.bench_function(row, |b| b.iter(|| black_box(idx.search(query, 8).len())));
    }
    g.finish();
}

fn bench_search_batch(c: &mut Criterion) {
    // A gateway micro-batch against the HNSW index: sequential per-query
    // `search` vs the lock-step `search_batch` that packs shared neighbor
    // panels and reuses them across rounds. Run on the f32 index and on its
    // int8- and product-quantized twins. Queries cluster around a few
    // bases, like the near-duplicate prompts a linger window actually
    // collects — that overlap is what the shared panels amortize.
    let vecs = random_vectors(BATCH_INDEX, EMBED_DIM, 139);
    let bases = random_vectors(3, EMBED_DIM, 149);
    let noise = random_vectors(BATCH_QUERIES, EMBED_DIM, 151);
    let queries: Vec<Vec<f32>> = (0..BATCH_QUERIES)
        .map(|i| {
            let base = &bases[i % bases.len()];
            base.iter().zip(&noise[i]).map(|(b, n)| b + 0.02 * n).collect()
        })
        .collect();
    let mut index = Hnsw::new(HnswConfig::default(), CosineDistance);
    for v in &vecs {
        index.insert(v.clone());
    }
    let mut quant = Hnsw::new(HnswConfig::default(), CosineDistance);
    quant.set_quantization(true);
    for v in &vecs {
        quant.insert(v.clone());
    }
    let mut pq = Hnsw::new(HnswConfig::default(), CosineDistance);
    pq.set_product_quantization(true);
    for v in &vecs {
        pq.insert(v.clone());
    }
    for (group, idx) in [
        ("ann_search_batch_f32", &index),
        ("ann_search_batch_int8", &quant),
        ("ann_search_batch_pq", &pq),
    ] {
        bench_pair(
            c,
            group,
            ["sequential", "batched"],
            || queries.iter().map(|q| idx.search(q, 8, 48).len()).sum::<usize>(),
            || idx.search_batch(&queries, 8, 48).iter().map(|r| r.len()).sum::<usize>(),
        );
    }
}

/// One kernel workload's summary line in `BENCH_kernels.json`.
struct Workload {
    name: &'static str,
    group: &'static str,
    elements: usize,
}

const WORKLOADS: [Workload; 5] = [
    Workload { name: "dot_64", group: "kernels_dot_64", elements: PROBES },
    Workload { name: "cosine_probe_64", group: "kernels_cosine_probe_64", elements: PROBES },
    Workload { name: "matmul_lm_hidden_32x64x32", group: "kernels_matmul_32x64x32", elements: 1 },
    Workload { name: "matmul_lm_logits_32x32x256", group: "kernels_matmul_32x32x256", elements: 1 },
    Workload { name: "matmul_square_64", group: "kernels_matmul_64x64x64", elements: 1 },
];

fn median_ns(c: &Criterion, name: &str) -> f64 {
    maybe_median_ns(c, name).unwrap_or_else(|| panic!("no bench result named {name}"))
}

fn maybe_median_ns(c: &Criterion, name: &str) -> Option<f64> {
    c.results().iter().find(|r| r.name == name).map(|r| r.median_ns)
}

fn json_ratio(num: f64, denom: Option<f64>) -> String {
    match denom {
        Some(d) => format!("{:.2}", num / d),
        None => "null".into(),
    }
}

fn write_summary(c: &Criterion) {
    let mut kernel_lines = Vec::new();
    for w in &WORKLOADS {
        let scalar_ns = median_ns(c, &format!("{}/scalar", w.group));
        let striped_ns = median_ns(c, &format!("{}/striped", w.group));
        let simd_ns = maybe_median_ns(c, &format!("{}/simd", w.group));
        kernel_lines.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"elements\": {}, ",
                "\"scalar_ns\": {:.0}, \"striped_ns\": {:.0}, \"simd_ns\": {}, ",
                "\"striped_vs_scalar\": {:.2}, \"simd_vs_striped\": {}}}"
            ),
            w.name,
            w.elements,
            scalar_ns,
            striped_ns,
            simd_ns.map(|v| format!("{v:.0}")).unwrap_or_else(|| "null".into()),
            scalar_ns / striped_ns,
            json_ratio(striped_ns, simd_ns),
        ));
    }

    let f32_ns = median_ns(c, "ann_quant_probe_1024x64/f32");
    let int8_ns = median_ns(c, "ann_quant_probe_1024x64/int8");
    let pq_ns = median_ns(c, "ann_quant_probe_1024x64/pq");
    let bytes_f32 = EMBED_DIM * 4;
    let bytes_int8 = EMBED_DIM + 4;
    // PQ stores one code byte per subspace: dim 64 / subspace width 8.
    let bytes_pq = EMBED_DIM / 8;
    let mut ann_lines = vec![format!(
        concat!(
            "    {{\"name\": \"quantized_probe_1024x64\", \"rows\": {}, ",
            "\"f32_ns\": {:.0}, \"int8_ns\": {:.0}, \"speedup\": {:.2}, ",
            "\"probe_bytes_f32\": {}, \"probe_bytes_int8\": {}, ",
            "\"bytes_ratio\": {:.2}}}"
        ),
        QUANT_ROWS,
        f32_ns,
        int8_ns,
        f32_ns / int8_ns,
        bytes_f32,
        bytes_int8,
        bytes_f32 as f64 / bytes_int8 as f64,
    )];
    ann_lines.push(format!(
        concat!(
            "    {{\"name\": \"pq_probe_{}x{}\", \"rows\": {}, \"m\": {}, ",
            "\"f32_ns\": {:.0}, \"int8_ns\": {:.0}, \"pq_ns\": {:.0}, ",
            "\"pq_vs_f32\": {:.2}, \"pq_vs_int8\": {:.2}, ",
            "\"probe_bytes_f32\": {}, \"probe_bytes_pq\": {}, ",
            "\"bytes_ratio\": {:.2}}}"
        ),
        bytes_pq,
        QUANT_ROWS,
        QUANT_ROWS,
        bytes_pq,
        f32_ns,
        int8_ns,
        pq_ns,
        f32_ns / pq_ns,
        int8_ns / pq_ns,
        bytes_f32,
        bytes_pq,
        bytes_f32 as f64 / bytes_pq as f64,
    ));
    let train_ns = median_ns(c, "ann_pq_train_1024x64/train");
    ann_lines.push(format!(
        "    {{\"name\": \"pq_train_1024x64\", \"rows\": {}, \"train_ns\": {:.0}, \"train_ms\": {:.2}}}",
        QUANT_ROWS,
        train_ns,
        train_ns / 1e6,
    ));
    // Wall-clock training time is a bench-only metric, recorded here and
    // never by library code: it would break the byte-identical golden
    // fixtures (same rule as `kernels.backend`).
    let obs_was_on = pas_obs::enabled();
    pas_obs::set_enabled(true);
    pas_obs::counter_add("ann.pq.train_ms", (train_ns / 1e6).round() as u64);
    pas_obs::set_enabled(obs_was_on);
    ann_lines.push(format!(
        concat!(
            "    {{\"name\": \"exact_probe_100000x64\", \"rows\": {}, ",
            "\"f32_ns\": {:.0}, \"int8_ns\": {:.0}, \"pq_ns\": {:.0}, ",
            "\"int8_vs_f32\": {:.2}, \"pq_vs_f32\": {:.2}}}"
        ),
        BIG_ROWS,
        median_ns(c, "ann_exact_probe_100000x64/f32"),
        median_ns(c, "ann_exact_probe_100000x64/int8"),
        median_ns(c, "ann_exact_probe_100000x64/pq"),
        median_ns(c, "ann_exact_probe_100000x64/f32")
            / median_ns(c, "ann_exact_probe_100000x64/int8"),
        median_ns(c, "ann_exact_probe_100000x64/f32")
            / median_ns(c, "ann_exact_probe_100000x64/pq"),
    ));
    for group in ["ann_search_batch_f32", "ann_search_batch_int8", "ann_search_batch_pq"] {
        let seq_ns = median_ns(c, &format!("{group}/sequential"));
        let bat_ns = median_ns(c, &format!("{group}/batched"));
        let speedup = seq_ns / bat_ns;
        // The regression fence from the batch-probe rework: batching the
        // quantized tiers must never be slower than the sequential loop.
        if group != "ann_search_batch_f32" {
            assert!(
                speedup >= 1.0,
                "{group}: batched ({bat_ns:.0} ns) slower than sequential ({seq_ns:.0} ns)"
            );
        }
        ann_lines.push(format!(
            concat!(
                "    {{\"name\": \"{}_{}x{}\", \"sequential_ns\": {:.0}, ",
                "\"batched_ns\": {:.0}, \"speedup\": {:.2}}}"
            ),
            group.trim_start_matches("ann_"),
            BATCH_QUERIES,
            BATCH_INDEX,
            seq_ns,
            bat_ns,
            speedup,
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"host\": {},\n  \"backend\": \"{}\",\n",
            "  \"kernels\": [\n{}\n  ],\n  \"ann\": [\n{}\n  ]\n}}\n"
        ),
        bench::host_json(),
        pas_kernels::backend().name(),
        kernel_lines.join(",\n"),
        ann_lines.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}:\n{json}");
}

fn main() {
    let mut c = Criterion::default();
    bench_dot(&mut c);
    bench_cosine_probe(&mut c);
    bench_matmul(&mut c, "kernels_matmul_32x64x32", 32, 64, 32);
    bench_matmul(&mut c, "kernels_matmul_32x32x256", 32, 32, 256);
    bench_matmul(&mut c, "kernels_matmul_64x64x64", 64, 64, 64);
    bench_quantized_probe(&mut c);
    bench_pq_train(&mut c);
    bench_big_index_probe(&mut c);
    bench_search_batch(&mut c);
    write_summary(&c);
}

//! Semantic-cache effect on gateway serving throughput.
//!
//! Drives the same seeded Zipf workload through two gateways over a real
//! (quick-scale) PAS complement model: one with the cache disabled, one
//! with the exact+near semantic cache enabled. Like `parallel.rs` this
//! bench has a hand-written `main`: after the Criterion runs it replays
//! each configuration once to capture its `GatewayReport`, and writes
//! wall-clock medians, hit rates, and the cached-vs-uncached speedup to
//! `BENCH_gateway.json` at the workspace root (with host metadata, so
//! numbers from different machines are never compared blind).

use criterion::Criterion;
use std::hint::black_box;

use pas_core::{BuildOptions, Pas, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_gateway::{
    generate, Gateway, GatewayConfig, GatewayReport, Request, SemanticCacheConfig, WorkloadConfig,
};

const REQUESTS: usize = 2000;
const UNIVERSE: usize = 120;
const ZIPF_S: f64 = 1.1;
const CACHE_CAPACITY: usize = 512;
const TAU: f32 = 0.15;

fn build_pas() -> Pas {
    let config = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    PasSystem::try_build(&config, &BuildOptions::default()).expect("clean build succeeds").pas
}

fn workload() -> Vec<Request> {
    generate(&WorkloadConfig {
        requests: REQUESTS,
        universe: UNIVERSE,
        zipf_s: ZIPF_S,
        near_dup_rate: 0.2,
        ..WorkloadConfig::default()
    })
}

fn config(cache: SemanticCacheConfig) -> GatewayConfig {
    GatewayConfig { replicas: 2, cache, ..GatewayConfig::default() }
}

fn no_cache() -> SemanticCacheConfig {
    SemanticCacheConfig { capacity: 0, ..SemanticCacheConfig::default() }
}

fn semantic_cache() -> SemanticCacheConfig {
    SemanticCacheConfig { capacity: CACHE_CAPACITY, tau: TAU, ..SemanticCacheConfig::default() }
}

/// One full serving run; the gateway (and its cache) is rebuilt per
/// iteration so every measurement starts cold.
fn serve(pas: &Pas, requests: &[Request], cache: SemanticCacheConfig) -> GatewayReport {
    let mut gateway = Gateway::new(config(cache), vec![pas.clone(), pas.clone()]);
    let (responses, report) = gateway.run(requests);
    black_box(responses);
    report
}

fn bench_gateway(c: &mut Criterion, pas: &Pas, requests: &[Request]) {
    let mut g = c.benchmark_group("gateway");
    g.sample_size(10);
    g.bench_function("no_cache", |b| b.iter(|| serve(pas, requests, no_cache())));
    g.bench_function("semantic_cache", |b| b.iter(|| serve(pas, requests, semantic_cache())));
    g.finish();
}

fn median_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no bench result named {name}"))
        .median_ns
}

fn write_summary(c: &Criterion, pas: &Pas, requests: &[Request]) {
    let uncached_ns = median_ns(c, "gateway/no_cache");
    let cached_ns = median_ns(c, "gateway/semantic_cache");
    // Replay each configuration once for its (deterministic) report.
    let uncached = serve(pas, requests, no_cache());
    let cached = serve(pas, requests, semantic_cache());
    assert_eq!(uncached.exact_hits + uncached.near_hits, 0, "capacity 0 must disable the cache");
    assert!(cached.hit_rate() > 0.3, "Zipf workload must hit: {}", cached.hit_rate());
    let per_sec = |ns: f64| REQUESTS as f64 / (ns / 1e9);
    let json = format!(
        concat!(
            "{{\n  \"host\": {},\n  \"threads\": {},\n",
            "  \"workload\": {{\"requests\": {}, \"universe\": {}, \"zipf_s\": {}, ",
            "\"near_dup_rate\": 0.2}},\n",
            "  \"no_cache\": {{\"median_ns\": {:.0}, \"requests_per_sec\": {:.1}, ",
            "\"sim_p50_ms\": {}, \"sim_p99_ms\": {}}},\n",
            "  \"semantic_cache\": {{\"capacity\": {}, \"tau\": {}, ",
            "\"median_ns\": {:.0}, \"requests_per_sec\": {:.1}, ",
            "\"exact_hits\": {}, \"near_hits\": {}, \"evictions\": {}, ",
            "\"hit_rate\": {:.3}, \"sim_p50_ms\": {}, \"sim_p99_ms\": {}}},\n",
            "  \"speedup\": {:.2}\n}}\n"
        ),
        bench::host_json(),
        pas_par::threads(),
        REQUESTS,
        UNIVERSE,
        ZIPF_S,
        uncached_ns,
        per_sec(uncached_ns),
        uncached.p50_ms(),
        uncached.p99_ms(),
        CACHE_CAPACITY,
        TAU,
        cached_ns,
        per_sec(cached_ns),
        cached.exact_hits,
        cached.near_hits,
        cached.evictions,
        cached.hit_rate(),
        cached.p50_ms(),
        cached.p99_ms(),
        uncached_ns / cached_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gateway.json");
    std::fs::write(path, &json).expect("write BENCH_gateway.json");
    println!("\nwrote {path}:\n{json}");
}

fn main() {
    let pas = build_pas();
    let requests = workload();
    let mut c = Criterion::default();
    bench_gateway(&mut c, &pas, &requests);
    write_summary(&c, &pas, &requests);
}

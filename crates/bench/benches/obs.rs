//! Observability overhead on the gateway soak path.
//!
//! Runs the same seeded Zipf workload through the full gateway (semantic
//! cache + batching + replica pool over a real quick-scale PAS model)
//! twice per iteration family: once with the `pas-obs` registry disabled
//! (the production default) and once with every counter, gauge, histogram,
//! and span recording. The claim under test is that instrumentation is
//! cheap enough to leave on: enabled-metrics overhead stays under a few
//! percent of the soak wall-clock.
//!
//! Hand-written `main` like `gateway.rs`: after the Criterion runs it
//! writes medians, the overhead ratio, and the enabled run's snapshot
//! counter totals to `BENCH_obs.json` at the workspace root.

use criterion::Criterion;
use std::hint::black_box;

use pas_core::{BuildOptions, Pas, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_gateway::{generate, Gateway, GatewayConfig, Request, WorkloadConfig};

const REQUESTS: usize = 2000;
const UNIVERSE: usize = 120;
const ZIPF_S: f64 = 1.1;

fn build_pas() -> Pas {
    let config = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    PasSystem::try_build(&config, &BuildOptions::default()).expect("clean build succeeds").pas
}

fn workload() -> Vec<Request> {
    generate(&WorkloadConfig {
        requests: REQUESTS,
        universe: UNIVERSE,
        zipf_s: ZIPF_S,
        near_dup_rate: 0.2,
        ..WorkloadConfig::default()
    })
}

/// One full serving run, cold gateway per iteration.
fn serve(pas: &Pas, requests: &[Request]) {
    let mut gateway = Gateway::new(
        GatewayConfig { replicas: 2, ..GatewayConfig::default() },
        vec![pas.clone(), pas.clone()],
    );
    black_box(gateway.run(requests));
}

fn bench_obs(c: &mut Criterion, pas: &Pas, requests: &[Request]) {
    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    pas_obs::set_enabled(false);
    g.bench_function("gateway_soak/metrics_off", |b| b.iter(|| serve(pas, requests)));
    pas_obs::set_enabled(true);
    pas_obs::reset();
    g.bench_function("gateway_soak/metrics_on", |b| b.iter(|| serve(pas, requests)));
    pas_obs::set_enabled(false);
    g.finish();
}

fn median_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no bench result named {name}"))
        .median_ns
}

fn write_summary(c: &Criterion, pas: &Pas, requests: &[Request]) {
    let off_ns = median_ns(c, "obs/gateway_soak/metrics_off");
    let on_ns = median_ns(c, "obs/gateway_soak/metrics_on");
    let overhead = on_ns / off_ns - 1.0;
    // Replay once with metrics on for the (deterministic) snapshot totals.
    pas_obs::set_enabled(true);
    pas_obs::reset();
    serve(pas, requests);
    let snap = pas_obs::snapshot();
    pas_obs::set_enabled(false);
    assert_eq!(snap.counter("gateway.requests"), REQUESTS as u64);
    let json = format!(
        concat!(
            "{{\n  \"host\": {},\n  \"threads\": {},\n",
            "  \"workload\": {{\"requests\": {}, \"universe\": {}, \"zipf_s\": {}}},\n",
            "  \"metrics_off\": {{\"median_ns\": {:.0}}},\n",
            "  \"metrics_on\": {{\"median_ns\": {:.0}, \"counters\": {}, ",
            "\"gauges\": {}, \"histograms\": {}, \"gateway_requests\": {}}},\n",
            "  \"overhead\": {:.4}\n}}\n"
        ),
        bench::host_json(),
        pas_par::threads(),
        REQUESTS,
        UNIVERSE,
        ZIPF_S,
        off_ns,
        on_ns,
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.counter("gateway.requests"),
        overhead,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("\nwrote {path}:\n{json}");
    assert!(overhead < 0.05, "enabled-metrics overhead {overhead:.4} must stay under 5%");
}

fn main() {
    let pas = build_pas();
    let requests = workload();
    let mut c = Criterion::default();
    bench_obs(&mut c, &pas, &requests);
    write_summary(&c, &pas, &requests);
}

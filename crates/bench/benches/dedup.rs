//! Dedup-backend comparison: embedding+HNSW vs MinHash+LSH on the same
//! corpus — the two routes the selection pipeline can take.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pas_ann::{DedupConfig, Deduplicator, MinHashConfig, MinHashDeduplicator};
use pas_data::{Corpus, CorpusConfig};
use pas_embed::{Embedder, NgramEmbedder};
use pas_text::ngram::word_shingle_hashes;

fn bench_backends(c: &mut Criterion) {
    let corpus =
        Corpus::generate(&CorpusConfig { size: 1500, seed: 29, ..CorpusConfig::default() });
    let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();

    let embedder = NgramEmbedder::new(64, 3);
    let embeddings: Vec<Vec<f32>> = texts.iter().map(|t| embedder.embed(t)).collect();
    let shingles: Vec<Vec<u64>> = texts
        .iter()
        .map(|t| {
            let mut s = word_shingle_hashes(t, 3);
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();

    let mut group = c.benchmark_group("dedup_1500_prompts");
    group.sample_size(10);
    group.bench_function("embedding_hnsw", |b| {
        b.iter(|| {
            let out = Deduplicator::run(DedupConfig::default(), embeddings.clone());
            black_box(out.kept.len())
        });
    });
    group.bench_function("minhash_lsh", |b| {
        b.iter(|| {
            let out = MinHashDeduplicator::run(MinHashConfig::default(), &shingles, 0.7);
            black_box(out.kept.len())
        });
    });
    // Include featurization cost for a fair end-to-end comparison.
    group.bench_function("embedding_hnsw_incl_embed", |b| {
        b.iter(|| {
            let em: Vec<Vec<f32>> = texts.iter().map(|t| embedder.embed(t)).collect();
            let out = Deduplicator::run(DedupConfig::default(), em);
            black_box(out.kept.len())
        });
    });
    group.bench_function("minhash_lsh_incl_shingle", |b| {
        b.iter(|| {
            let sh: Vec<Vec<u64>> = texts
                .iter()
                .map(|t| {
                    let mut s = word_shingle_hashes(t, 3);
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let out = MinHashDeduplicator::run(MinHashConfig::default(), &sh, 0.7);
            black_box(out.kept.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);

//! Data-pipeline throughput: §3.1 selection and Algorithm 1 generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pas_data::{Corpus, CorpusConfig, GenConfig, Generator, SelectionConfig, SelectionPipeline};

fn bench_selection(c: &mut Criterion) {
    let corpus =
        Corpus::generate(&CorpusConfig { size: 1000, seed: 17, ..CorpusConfig::default() });
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("selection_pipeline_1000", |b| {
        b.iter(|| {
            let (selected, report) = SelectionPipeline::new(SelectionConfig {
                labeled_size: 500,
                ..SelectionConfig::default()
            })
            .run(black_box(&corpus.records));
            black_box((selected.len(), report.after_dedup))
        });
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig { size: 800, seed: 19, ..CorpusConfig::default() });
    let world = Arc::new(corpus.world.clone());
    let (selected, _) =
        SelectionPipeline::new(SelectionConfig { labeled_size: 500, ..SelectionConfig::default() })
            .run(&corpus.records);
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.bench_function("algorithm1_generation", |b| {
        b.iter(|| {
            let (dataset, _) =
                Generator::new(GenConfig::default(), Arc::clone(&world)).run(black_box(&selected));
            black_box(dataset.len())
        });
    });
    g.finish();
}

fn bench_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.sample_size(10);
    g.bench_function("corpus_generate_2000", |b| {
        b.iter(|| {
            let corpus =
                Corpus::generate(&CorpusConfig { size: 2000, seed: 23, ..CorpusConfig::default() });
            black_box(corpus.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_corpus, bench_selection, bench_generation);
criterion_main!(benches);

//! HNSW vs exact-scan performance: the dedup substrate of §3.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pas_ann::{CosineDistance, ExactIndex, Hnsw, HnswConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
            pas_embed::normalize_in_place(&mut v);
            v
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("hnsw_insert");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let vectors = random_unit_vectors(n, 64, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &vectors, |b, vecs| {
            b.iter(|| {
                let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
                for v in vecs {
                    idx.insert(v.clone());
                }
                black_box(idx.len())
            });
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let vectors = random_unit_vectors(5000, 64, 2);
    let queries = random_unit_vectors(64, 64, 3);
    let mut hnsw = Hnsw::new(HnswConfig::default(), CosineDistance);
    let mut exact = ExactIndex::new(CosineDistance);
    for v in &vectors {
        hnsw.insert(v.clone());
        exact.insert(v.clone());
    }

    let mut group = c.benchmark_group("knn_search_5000x64");
    group.sample_size(20);
    group.bench_function("hnsw_ef48", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(hnsw.search(q, 10, 48));
            }
        });
    });
    group.bench_function("exact_scan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(exact.search(q, 10));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_search);
criterion_main!(benches);

//! BPE tokenizer training and encoding throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use pas_data::{Corpus, CorpusConfig};
use pas_tokenizer::{BpeTrainer, TrainConfig};

fn corpus_lines(n: usize) -> Vec<String> {
    Corpus::generate(&CorpusConfig { size: n, seed: 5, ..CorpusConfig::default() })
        .records
        .into_iter()
        .map(|r| r.text)
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let lines = corpus_lines(600);
    let mut g = c.benchmark_group("bpe_train");
    g.sample_size(10);
    g.bench_function("bpe_train_600_prompts_400_merges", |b| {
        b.iter(|| {
            let tok = BpeTrainer::new(TrainConfig { merges: 400, min_pair_count: 2 })
                .train(lines.iter().map(String::as_str));
            black_box(tok.merge_count())
        });
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let lines = corpus_lines(600);
    let tok = BpeTrainer::new(TrainConfig { merges: 400, min_pair_count: 2 })
        .train(lines.iter().map(String::as_str));
    let bytes: usize = lines.iter().map(String::len).sum();

    let mut group = c.benchmark_group("bpe_encode");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("encode_600_prompts", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for line in &lines {
                total += tok.encode(line).len();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_train, bench_encode);
criterion_main!(benches);

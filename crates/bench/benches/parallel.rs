//! Serial vs parallel wall-clock for the three pipelines the deterministic
//! runtime (`pas-par`) parallelizes: the §3.1 selection pipeline, HNSW
//! batch build, and suite evaluation.
//!
//! Unlike the other benches this one has a hand-written `main`: after the
//! Criterion runs it computes elements/sec and serial-vs-parallel speedup
//! per workload and writes a machine-readable summary to
//! `BENCH_parallel.json` at the workspace root. Speedup is only expected
//! on multi-core machines — the summary embeds the host metadata (`nproc`,
//! arch, OS) and the worker-thread count actually used, so single-core CI
//! numbers aren't misread as a regression.

use criterion::Criterion;
use std::hint::black_box;

use pas_ann::{CosineDistance, Hnsw, HnswConfig};
use pas_core::NoOptimizer;
use pas_data::{Corpus, CorpusConfig, SelectionConfig, SelectionPipeline};
use pas_eval::{evaluate_suite, EvalEnv, EvalEnvConfig, Judge};
use pas_llm::SimLlm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SELECTION_ELEMENTS: usize = 1200;
const HNSW_ELEMENTS: usize = 2000;
const EVAL_ELEMENTS: usize = 150;

fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
            pas_embed::normalize_in_place(&mut v);
            v
        })
        .collect()
}

/// Benches `work` at one thread and at the default thread count, under
/// `group/serial` and `group/parallel`.
fn bench_pair<R, F: Fn() -> R>(c: &mut Criterion, group: &str, work: F) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("serial", |b| {
        pas_par::with_threads(1, || b.iter(|| black_box(work())));
    });
    g.bench_function("parallel", |b| {
        pas_par::with_threads(0, || b.iter(|| black_box(work())));
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        size: SELECTION_ELEMENTS,
        seed: 29,
        ..CorpusConfig::default()
    });
    bench_pair(c, "parallel_selection", || {
        let (selected, report) = SelectionPipeline::new(SelectionConfig {
            labeled_size: 600,
            ..SelectionConfig::default()
        })
        .run(&corpus.records);
        (selected.len(), report.after_dedup)
    });
}

fn bench_hnsw_batch(c: &mut Criterion) {
    let vectors = random_unit_vectors(HNSW_ELEMENTS, 64, 31);
    bench_pair(c, "parallel_hnsw_build", || {
        let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
        idx.build_batch(vectors.clone());
        idx.len()
    });
}

fn bench_suite_eval(c: &mut Criterion) {
    let env =
        EvalEnv::build(&EvalEnvConfig { arena_items: EVAL_ELEMENTS, alpaca_items: 10, seed: 37 });
    let model = SimLlm::named("gpt-4-0613", env.world.clone());
    let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
    let judge = Judge::default();
    bench_pair(c, "parallel_suite_eval", || {
        evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge).win_rate
    });
}

/// One workload's summary line in `BENCH_parallel.json`.
struct Workload {
    name: &'static str,
    group: &'static str,
    elements: usize,
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "selection_pipeline",
        group: "parallel_selection",
        elements: SELECTION_ELEMENTS,
    },
    Workload { name: "hnsw_batch_build", group: "parallel_hnsw_build", elements: HNSW_ELEMENTS },
    Workload { name: "suite_evaluation", group: "parallel_suite_eval", elements: EVAL_ELEMENTS },
];

fn median_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no bench result named {name}"))
        .median_ns
}

fn write_summary(c: &Criterion) {
    let mut lines = Vec::new();
    for w in &WORKLOADS {
        let serial_ns = median_ns(c, &format!("{}/serial", w.group));
        let parallel_ns = median_ns(c, &format!("{}/parallel", w.group));
        let per_sec = |ns: f64| w.elements as f64 / (ns / 1e9);
        lines.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"elements\": {}, ",
                "\"serial_ns\": {:.0}, \"parallel_ns\": {:.0}, ",
                "\"serial_elements_per_sec\": {:.1}, ",
                "\"parallel_elements_per_sec\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            w.name,
            w.elements,
            serial_ns,
            parallel_ns,
            per_sec(serial_ns),
            per_sec(parallel_ns),
            serial_ns / parallel_ns,
        ));
    }
    let json = format!(
        "{{\n  \"host\": {},\n  \"threads\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        bench::host_json(),
        pas_par::threads(),
        lines.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {path}:\n{json}");
}

fn main() {
    let mut c = Criterion::default();
    bench_selection(&mut c);
    bench_hnsw_batch(&mut c);
    bench_suite_eval(&mut c);
    write_summary(&c);
}

//! Warm-restart cost of the persistent semantic cache.
//!
//! Populates a `pas-store`-backed cache by soaking a seeded Zipf workload
//! through the full gateway once, checkpoints it, then benches the three
//! ways the next process can get that cache back:
//!
//! - `open/warm` — restore the checkpoint snapshot (entries + HNSW graph
//!   dump) and replay only the log suffix (empty here);
//! - `open/cold_replay` — ignore the snapshot, replay every log record
//!   re-inserting the *logged* embeddings (graph rebuilt, no embedding);
//! - `open/reembed` — replay while re-embedding every prompt: the
//!   pre-`pas-store` restart cost, i.e. what a gateway had to pay before
//!   persistence existed.
//!
//! All three produce bit-identical caches (proven by the chaos and
//! persistence suites); this bench prices them. Hand-written `main` like
//! `obs.rs`: after the Criterion runs it writes medians, the speedup
//! ratios, and the store's recovery counters to `BENCH_store.json` at the
//! workspace root, asserting the headline claim that a warm open is at
//! least 10x faster than re-embedding.

use criterion::Criterion;
use std::hint::black_box;
use std::path::{Path, PathBuf};

use pas_core::{BuildOptions, Pas, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_gateway::{
    cache_embedder, generate, Gateway, GatewayCache, GatewayConfig, OpenMode, SemanticCache,
    SemanticCacheConfig, WorkloadConfig,
};

const REQUESTS: usize = 4000;
const UNIVERSE: usize = 2000;
const ZIPF_S: f64 = 1.1;

fn build_pas() -> Pas {
    let config = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    PasSystem::try_build(&config, &BuildOptions::default()).expect("clean build succeeds").pas
}

fn cache_config() -> SemanticCacheConfig {
    // τ well below the soak default: the near tier still exists (so the
    // checkpoint carries a real HNSW graph) but rarely absorbs a miss, so
    // the soak actually fills the cache and a restart has real state to
    // recover.
    SemanticCacheConfig { capacity: 8192, tau: 0.02, ..SemanticCacheConfig::default() }
}

fn store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("pas-bench-store-{}", std::process::id()))
}

/// One soak through the full gateway with the cache logging to `dir`,
/// then a checkpoint — the state a killed-and-restarted process reopens.
fn populate(dir: &Path) -> usize {
    let pas = build_pas();
    let requests = generate(&WorkloadConfig {
        requests: REQUESTS,
        universe: UNIVERSE,
        zipf_s: ZIPF_S,
        near_dup_rate: 0.2,
        ..WorkloadConfig::default()
    });
    let config = GatewayConfig { replicas: 2, cache: cache_config(), ..GatewayConfig::default() };
    let cache = SemanticCache::open_from(
        cache_config(),
        cache_embedder(&config.cache),
        dir,
        OpenMode::Warm,
    )
    .expect("fresh store opens");
    let mut gateway = Gateway::with_cache(config, vec![pas.clone(), pas], cache);
    gateway.run(&requests);
    let mut cache = gateway.into_cache();
    assert!(cache.store_error().is_none(), "soak must not freeze the store");
    cache.persist_to(dir).expect("checkpoint succeeds");
    cache.len()
}

fn open(dir: &Path, mode: OpenMode) -> GatewayCache {
    SemanticCache::open_from(cache_config(), cache_embedder(&cache_config()), dir, mode)
        .expect("populated store reopens")
}

fn bench_opens(c: &mut Criterion, dir: &Path) {
    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    g.bench_function("open/warm", |b| b.iter(|| black_box(open(dir, OpenMode::Warm))));
    g.bench_function("open/cold_replay", |b| b.iter(|| black_box(open(dir, OpenMode::Replay))));
    g.bench_function("open/reembed", |b| b.iter(|| black_box(open(dir, OpenMode::Reembed))));
    g.finish();
}

fn median_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no bench result named {name}"))
        .median_ns
}

fn write_summary(c: &Criterion, dir: &Path, entries: usize) {
    let warm_ns = median_ns(c, "store/open/warm");
    let cold_ns = median_ns(c, "store/open/cold_replay");
    let reembed_ns = median_ns(c, "store/open/reembed");
    let vs_cold = cold_ns / warm_ns;
    let vs_reembed = reembed_ns / warm_ns;
    // One recorded replay for the (deterministic) recovery counters.
    pas_obs::set_enabled(true);
    pas_obs::reset();
    let cache = open(dir, OpenMode::Replay);
    let snap = pas_obs::snapshot();
    pas_obs::set_enabled(false);
    assert_eq!(cache.len(), entries, "recorded replay must restore every entry");
    let json = format!(
        concat!(
            "{{\n  \"host\": {},\n  \"threads\": {},\n",
            "  \"workload\": {{\"requests\": {}, \"universe\": {}, \"zipf_s\": {}}},\n",
            "  \"cache_entries\": {},\n",
            "  \"warm_open\": {{\"median_ns\": {:.0}}},\n",
            "  \"cold_replay\": {{\"median_ns\": {:.0}}},\n",
            "  \"reembed\": {{\"median_ns\": {:.0}}},\n",
            "  \"store\": {{\"segments\": {}, \"recovered_records\": {}, ",
            "\"torn_tails\": {}, \"bytes\": {}}},\n",
            "  \"warm_speedup_vs_cold\": {:.2},\n",
            "  \"warm_speedup_vs_reembed\": {:.2}\n}}\n"
        ),
        bench::host_json(),
        pas_par::threads(),
        REQUESTS,
        UNIVERSE,
        ZIPF_S,
        entries,
        warm_ns,
        cold_ns,
        reembed_ns,
        snap.counter("store.segments"),
        snap.counter("store.recovered_records"),
        snap.counter("store.torn_tails"),
        snap.gauges.get("store.bytes").map(|g| g.last).unwrap_or(0),
        vs_cold,
        vs_reembed,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, &json).expect("write BENCH_store.json");
    println!("\nwrote {path}:\n{json}");
    assert!(vs_reembed >= 10.0, "warm open must beat re-embedding by >= 10x, got {vs_reembed:.2}x");
}

fn main() {
    let dir = store_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let entries = populate(&dir);
    assert!(entries > 500, "workload too small to price a restart: {entries} entries");
    let mut c = Criterion::default();
    bench_opens(&mut c, &dir);
    write_summary(&c, &dir, entries);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Fleet scaling and chaos-resilience of the cluster simulation.
//!
//! Criterion-times cluster runs at 1, 2, 4, and 8 nodes (each node gets
//! its own decorrelated workload slice of the same per-node size, so the
//! fleet's total offered load scales with the node count), then replays
//! each size once for its deterministic `ClusterReport` and writes
//! `BENCH_cluster.json` at the workspace root with:
//!
//! - *simulated* fleet throughput (completed requests per simulated
//!   second) per size — the scaling headline, asserted ≥ 6x at 8 nodes
//!   vs 1 (near-linear: nodes serve their shards concurrently in
//!   simulated time, paying only cross-shard forwarding latency);
//! - wall-clock medians per size (the cost of *running* the simulation,
//!   which is serial per event — expected to grow with fleet size);
//! - a partition+heal chaos scenario (lossy net, node 3 isolated for a
//!   window, a leave and a rejoin) asserted to complete every request —
//!   the zero-error degradation contract under chaos;
//! - a replication-plane scenario (write-fanout + anti-entropy + gossip
//!   on a lossy partitioned net with a crash) asserted to complete every
//!   request with zero gossip false deaths;
//! - a replica-warmth measurement: after a primary crashes, the hit rate
//!   its heirs serve the orphaned keys at, with write-fanout on vs off —
//!   asserted ≥5x the cold baseline and ≥0.9 absolute;
//! - host metadata (`nproc`, arch, os) so numbers from different machines
//!   are never compared blind.

use criterion::Criterion;
use std::hint::black_box;

use pas_cluster::{fleet_workloads, hrw, Cluster, ClusterConfig, ClusterReport, Membership};
use pas_core::{BuildOptions, Pas, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, SelectionConfig};
use pas_fault::NetFaultProfile;
use pas_gateway::{GatewayConfig, Request, SemanticCacheConfig, WorkloadConfig};

const REQUESTS_PER_NODE: usize = 1200;
const UNIVERSE: usize = 120;
const SIZES: [usize; 4] = [1, 2, 4, 8];

fn build_pas() -> Pas {
    let config = SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        ..SystemConfig::default()
    };
    PasSystem::try_build(&config, &BuildOptions::default()).expect("clean build succeeds").pas
}

fn base_workload() -> WorkloadConfig {
    WorkloadConfig {
        requests: REQUESTS_PER_NODE,
        universe: UNIVERSE,
        zipf_s: 1.1,
        near_dup_rate: 0.15,
        ..WorkloadConfig::default()
    }
}

fn config(nodes: usize, net: NetFaultProfile, script: Vec<(u64, Membership)>) -> ClusterConfig {
    ClusterConfig {
        nodes,
        replication: 2.min(nodes),
        gateway: GatewayConfig {
            replicas: 2,
            cache: SemanticCacheConfig {
                capacity: 2048,
                tau: 0.15,
                ..SemanticCacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        net,
        script,
        ..ClusterConfig::default()
    }
}

fn soak(pas: &Pas, cfg: ClusterConfig) -> ClusterReport {
    let workloads = fleet_workloads(&base_workload(), cfg.nodes);
    let mut cluster = Cluster::new(cfg, |_, _| pas.clone());
    let (responses, report) = cluster.run(&workloads);
    black_box(responses);
    report
}

/// The chaos scenario: lossy wide-area net, node 3 partitioned off for
/// [400, 1200) sim-ms, node 1 leaves at 800 and rejoins at 1600.
fn chaos_config() -> ClusterConfig {
    config(
        8,
        NetFaultProfile::lossy().with_partition(400, 1200, vec![3]),
        vec![(800, Membership::Leave(1)), (1600, Membership::Join(1))],
    )
}

/// The replication-plane scenario: chaos plus the full round-2 stack —
/// write-fanout, anti-entropy sweeps, the gossip failure detector, and a
/// hard crash replacing the graceful leave.
fn replication_config() -> ClusterConfig {
    ClusterConfig {
        ae_interval_ms: 40,
        gossip_interval_ms: 30,
        gossip_dead_rounds: 24,
        quiet_ms: 30 * 40,
        ..config(
            8,
            NetFaultProfile::lossy().with_partition(400, 1200, vec![3]),
            vec![(800, Membership::Crash(1)), (1600, Membership::Join(1))],
        )
    }
}

/// Measures how warm the heirs of a crashed primary are: warms the victim
/// with every prompt it owns, crashes it, then probes each orphaned key
/// exactly once at its new owner. The probe window's fleet hit rate is
/// the warmth — near 1.0 with write-fanout on, near 0.0 without.
fn replica_warmth(pas: &Pas, fanout: bool) -> f64 {
    let full: Vec<u32> = (0..4).collect();
    let victim = 0u32;
    let prompts: Vec<(String, u32)> = (0..)
        .map(|i| format!("prompt {i} about topic {}", i % 13))
        .filter_map(|p| {
            let cands = hrw::candidates(&p, &full, 2);
            (cands[0] == victim).then(|| (p.clone(), cands[1]))
        })
        .take(60)
        .collect();

    let mut cfg = ClusterConfig {
        repl_fanout: fanout,
        ..config(4, NetFaultProfile::none(), vec![(1000, Membership::Crash(victim))])
    };
    // Exact-match cache semantics: with a near-hit threshold, similar
    // prompts serve off each other without installing, which blurs the
    // warm/cold contrast this measurement pins.
    cfg.gateway.cache.tau = 0.0;
    let mut cluster = Cluster::new(cfg, |_, _| pas.clone());

    let mut warm: Vec<Vec<Request>> = vec![Vec::new(); 4];
    for (i, (prompt, _)) in prompts.iter().enumerate() {
        warm[victim as usize].push(Request {
            id: i,
            arrival_ms: 10 * i as u64,
            prompt: prompt.clone(),
        });
    }
    let (_, warm_report) = cluster.run(&warm);
    assert_eq!(warm_report.errors(), 0);
    assert_eq!(warm_report.crashes, 1, "the victim must die after the warm window");

    // The crash script re-fires as a no-op on the dead node; the report
    // covers the probe window alone.
    let mut probes: Vec<Vec<Request>> = vec![Vec::new(); 4];
    for (i, (prompt, heir)) in prompts.iter().enumerate() {
        probes[*heir as usize].push(Request {
            id: i,
            arrival_ms: 3 * i as u64,
            prompt: prompt.clone(),
        });
    }
    let (_, probe_report) = cluster.run(&probes);
    assert_eq!(probe_report.errors(), 0);
    assert_eq!(probe_report.fleet.requests, prompts.len() as u64);
    probe_report.fleet.hit_rate()
}

fn bench_cluster(c: &mut Criterion, pas: &Pas) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    for nodes in SIZES {
        g.bench_function(format!("nodes_{nodes}"), |b| {
            b.iter(|| soak(pas, config(nodes, NetFaultProfile::lan(), Vec::new())))
        });
    }
    g.bench_function("partition_heal_8", |b| b.iter(|| soak(pas, chaos_config())));
    g.bench_function("replication_8", |b| b.iter(|| soak(pas, replication_config())));
    g.finish();
}

fn median_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no bench result named {name}"))
        .median_ns
}

fn write_summary(c: &Criterion, pas: &Pas) {
    // Replay each size once for its (deterministic) report.
    let mut sizes_json = Vec::new();
    let mut sim_rps = std::collections::BTreeMap::new();
    for nodes in SIZES {
        let report = soak(pas, config(nodes, NetFaultProfile::lan(), Vec::new()));
        assert_eq!(report.errors(), 0, "{nodes}-node soak must answer everything");
        assert_eq!(report.fleet.requests, (nodes * REQUESTS_PER_NODE) as u64);
        let rps = report.throughput_rps();
        sim_rps.insert(nodes, rps);
        sizes_json.push(format!(
            concat!(
                "    {{\"nodes\": {}, \"requests\": {}, \"wall_median_ns\": {:.0}, ",
                "\"sim_duration_ms\": {}, \"sim_requests_per_sec\": {:.1}, ",
                "\"forwards\": {}, \"hedges_fired\": {}, \"hit_rate\": {:.3}}}"
            ),
            nodes,
            report.fleet.requests,
            median_ns(c, &format!("cluster/nodes_{nodes}")),
            report.fleet.sim_duration_ms,
            rps,
            report.forwards,
            report.hedges_fired,
            report.fleet.hit_rate(),
        ));
    }
    let scaling = sim_rps[&8] / sim_rps[&1];
    assert!(
        scaling >= 6.0,
        "8-node fleet must scale ≥6x over 1 node in simulated throughput, got {scaling:.2}x"
    );

    let chaos = soak(pas, chaos_config());
    assert_eq!(chaos.errors(), 0, "partition+heal must answer everything");
    assert!(chaos.net_cut > 0 && chaos.net_drops > 0, "chaos must actually bite");
    assert!(chaos.hedges_fired > 0, "lossy links must trigger hedges");

    let repl = soak(pas, replication_config());
    assert_eq!(repl.errors(), 0, "the replication-plane scenario must answer everything");
    assert!(repl.repl_sent > 0 && repl.repl_applied > 0, "fanout must install replicas");
    assert!(repl.ae_digests > 0 && repl.ae_repairs > 0, "anti-entropy must repair chaos damage");
    assert!(repl.gossip_heartbeats > 0, "the failure detector must gossip");
    assert_eq!(repl.gossip_false_deaths, 0, "no live reachable node may be declared dead");

    let warm = replica_warmth(pas, true);
    let cold = replica_warmth(pas, false);
    assert!(warm >= 0.9, "fanout-warmed heirs must serve ≥90% from cache, got {warm:.3}");
    assert!(warm >= 5.0 * cold, "warm rate {warm:.3} must beat the cold baseline {cold:.3} ≥5x");

    let json = format!(
        concat!(
            "{{\n  \"host\": {},\n  \"threads\": {},\n",
            "  \"workload\": {{\"requests_per_node\": {}, \"universe\": {}, ",
            "\"zipf_s\": 1.1, \"near_dup_rate\": 0.15}},\n",
            "  \"sizes\": [\n{}\n  ],\n",
            "  \"sim_scaling_8x_vs_1x\": {:.2},\n",
            "  \"partition_heal\": {{\"nodes\": 8, \"wall_median_ns\": {:.0}, ",
            "\"errors\": {}, \"net_cut\": {}, \"net_drops\": {}, ",
            "\"hedges_fired\": {}, \"hedges_won\": {}, \"rescues\": {}, ",
            "\"local_fallbacks\": {}, \"rebalance_moved\": {}}},\n",
            "  \"replication\": {{\"nodes\": 8, \"wall_median_ns\": {:.0}, ",
            "\"errors\": {}, \"repl_sent\": {}, \"repl_applied\": {}, ",
            "\"repl_stale\": {}, \"ae_digests\": {}, \"ae_repairs\": {}, ",
            "\"ae_last_repair_ms\": {}, \"gossip_heartbeats\": {}, ",
            "\"gossip_deaths\": {}, \"gossip_false_deaths\": {}, ",
            "\"crash_retries\": {}}},\n",
            "  \"replica_warmth\": {{\"warm_hit_rate\": {:.3}, ",
            "\"cold_hit_rate\": {:.3}}}\n}}\n"
        ),
        bench::host_json(),
        pas_par::threads(),
        REQUESTS_PER_NODE,
        UNIVERSE,
        sizes_json.join(",\n"),
        scaling,
        median_ns(c, "cluster/partition_heal_8"),
        chaos.errors(),
        chaos.net_cut,
        chaos.net_drops,
        chaos.hedges_fired,
        chaos.hedges_won,
        chaos.rescues,
        chaos.local_fallbacks,
        chaos.rebalance_moved,
        median_ns(c, "cluster/replication_8"),
        repl.errors(),
        repl.repl_sent,
        repl.repl_applied,
        repl.repl_stale,
        repl.ae_digests,
        repl.ae_repairs,
        repl.ae_last_repair_ms,
        repl.gossip_heartbeats,
        repl.gossip_deaths,
        repl.gossip_false_deaths,
        repl.crash_retries,
        warm,
        cold,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, &json).expect("write BENCH_cluster.json");
    println!("\nwrote {path}:\n{json}");
}

fn main() {
    let pas = build_pas();
    let mut c = Criterion::default();
    bench_cluster(&mut c, &pas);
    write_summary(&c, &pas);
}

//! Deterministic parallel runtime for the PAS pipeline.
//!
//! Every hot loop in the workspace — corpus generation, embedding, dedup,
//! Algorithm 1 generation, suite evaluation, table regeneration — is a map
//! over independent items. This crate provides that map as a shared
//! primitive with a hard determinism contract:
//!
//! 1. **Ordered results.** [`par_map`] returns results in item order no
//!    matter which worker computed them or when it finished.
//! 2. **Per-item seeds.** Randomized work must not share a sequential RNG
//!    across items (the draw order would depend on scheduling). Instead,
//!    [`par_map_seeded`] hands each item its own seed derived from
//!    `(base_seed, item_index)` via [`derive_seed`], so item `i` sees the
//!    same RNG stream at any thread count.
//! 3. **Ordered reduction.** Aggregates (token counters, reports) are
//!    folded from the ordered result vector *after* the parallel region,
//!    never accumulated through shared mutable state.
//!
//! Under this contract, outputs are bit-for-bit identical at `--threads 1`
//! and `--threads N` — enforced end-to-end by `tests/parallel_determinism.rs`
//! at the workspace root.
//!
//! The thread count is a process-wide setting ([`set_threads`]), defaulting
//! to [`std::thread::available_parallelism`]. Workers claim items from a
//! shared atomic cursor (dynamic load balancing — item costs in this
//! workspace vary wildly, e.g. regeneration loops), and each worker buffers
//! `(index, result)` pairs that are re-assembled in order at the end.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Process-wide worker-count override; 0 means "use available parallelism".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on a [`par_map`] worker thread. A nested `par_map` (e.g.
    /// per-item judging inside a parallel table cell) runs serially instead
    /// of spawning `workers²` threads — results are identical either way,
    /// only the scheduling changes.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker count for all subsequent parallel calls.
/// `0` restores the default (available parallelism).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel calls will use.
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Derives the RNG seed for item `index` under `base` (splitmix64-style
/// finalizer). Statistically independent across indices and bases, and a
/// pure function of its arguments — the root of the determinism contract.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh [`StdRng`] for item `index` under `base`.
pub fn rng_for(base: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base, index))
}

/// Derives a seed for a *nested* stream: [`derive_seed`] folded over a
/// coordinate path, e.g. `(stream, call, attempt)`. Used wherever one item
/// owns a whole family of independent draws (the fault-injection layer keys
/// its schedule on `(base, stream, call, attempt)` this way), so every
/// coordinate combination sees a statistically independent stream that is
/// still a pure function of its path.
pub fn derive_seed_path(base: u64, path: &[u64]) -> u64 {
    path.iter().fold(base, |acc, &p| derive_seed(acc, p))
}

/// Maps `f` over `items` in parallel, returning results in item order.
///
/// `f` receives `(index, &item)`. Results are identical to the serial
/// `items.iter().enumerate().map(...)` as long as `f` is a pure function
/// of its arguments. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || IN_WORKER.with(Cell::get) {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(out) => per_worker.push(out),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    // Re-assemble in item order.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "item {i} computed twice");
        slots[i] = Some(r);
    }
    slots.into_iter().map(|slot| slot.expect("every item computed")).collect()
}

/// [`par_map`] for randomized work: `f` receives `(seed, index, &item)`
/// where `seed = derive_seed(base_seed, index)`. Seed the item's own
/// `StdRng` from it; never share an RNG across items.
pub fn par_map_seeded<T, R, F>(base_seed: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(u64, usize, &T) -> R + Sync,
{
    par_map(items, |i, item| f(derive_seed(base_seed, i as u64), i, item))
}

/// Runs `f` with the thread count temporarily forced to `n`, restoring the
/// previous setting afterwards. Test helper for 1-vs-N comparisons.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.swap(n, Ordering::Relaxed));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = with_threads(8, || par_map(&items, |i, &x| x * 2 + i as u64));
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<usize> = (0..100).collect();
        let run = |threads| {
            with_threads(threads, || {
                par_map_seeded(42, &items, |seed, _, &n| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    (0..n % 7).map(|_| rng.random::<u64>()).fold(0u64, u64::wrapping_add)
                })
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 0xdead_beef] {
            for i in 0..1000 {
                assert!(seen.insert(derive_seed(base, i)), "collision at ({base}, {i})");
            }
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |i, &x| x + i as u32), vec![7]);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&[1, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                    assert!(x != 5, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_par_map_matches_serial() {
        let items: Vec<u64> = (0..40).collect();
        let inner = [1u64, 2, 3];
        let run = |threads| {
            with_threads(threads, || {
                par_map(&items, |_, &x| par_map(&inner, |_, &y| x * y).iter().sum::<u64>())
            })
        };
        assert_eq!(run(8), run(1));
    }

    #[test]
    fn derive_seed_path_folds_derive_seed() {
        assert_eq!(derive_seed_path(7, &[]), 7);
        assert_eq!(derive_seed_path(7, &[3]), derive_seed(7, 3));
        assert_eq!(derive_seed_path(7, &[3, 9]), derive_seed(derive_seed(7, 3), 9));
        // Distinct paths land on distinct seeds.
        let mut seen = std::collections::HashSet::new();
        for a in 0..20u64 {
            for b in 0..20u64 {
                assert!(seen.insert(derive_seed_path(1, &[a, b])), "collision at ({a}, {b})");
            }
        }
    }

    #[test]
    fn rng_for_matches_derive_seed() {
        let mut a = rng_for(9, 3);
        let mut b = StdRng::seed_from_u64(derive_seed(9, 3));
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}

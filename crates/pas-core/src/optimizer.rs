//! The automatic-prompt-engineering interface.
//!
//! Every APE method — PAS, BPO, OPRO, ProTeGi, the preference baselines —
//! implements [`PromptOptimizer`]. The trait carries two things:
//!
//! 1. the transformation itself ([`PromptOptimizer::optimize`]), and
//! 2. the *flexibility metadata* the paper compares in Table 3: whether the
//!    method needs human-labeled data, whether it works with any downstream
//!    LLM, and whether it works on any task. The Table 3 regenerator reads
//!    these straight off the implementations, so the table is a property of
//!    the code rather than a hand-written matrix.

/// An automatic prompt-engineering method.
pub trait PromptOptimizer: Send + Sync {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Transforms a user prompt into the text submitted to the main model.
    /// The identity transformation is the "None" baseline.
    fn optimize(&self, prompt: &str) -> String;

    /// Whether building this method required human-labeled data (Table 3,
    /// "No Human Labor" column is the negation).
    fn requires_human_labels(&self) -> bool;

    /// Whether one trained instance works with any downstream LLM.
    fn llm_agnostic(&self) -> bool;

    /// Whether one trained instance works on any task/category.
    fn task_agnostic(&self) -> bool;

    /// Training-data consumption in pairs, for the data-efficiency
    /// comparison (Figure 7). `None` for untrained methods.
    fn training_pairs(&self) -> Option<usize> {
        None
    }
}

/// The no-APE baseline: passes prompts through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOptimizer;

impl PromptOptimizer for NoOptimizer {
    fn name(&self) -> &str {
        "None"
    }

    fn optimize(&self, prompt: &str) -> String {
        prompt.to_string()
    }

    fn requires_human_labels(&self) -> bool {
        false
    }

    fn llm_agnostic(&self) -> bool {
        true
    }

    fn task_agnostic(&self) -> bool {
        true
    }
}

impl<T: PromptOptimizer + ?Sized> PromptOptimizer for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn optimize(&self, prompt: &str) -> String {
        (**self).optimize(prompt)
    }
    fn requires_human_labels(&self) -> bool {
        (**self).requires_human_labels()
    }
    fn llm_agnostic(&self) -> bool {
        (**self).llm_agnostic()
    }
    fn task_agnostic(&self) -> bool {
        (**self).task_agnostic()
    }
    fn training_pairs(&self) -> Option<usize> {
        (**self).training_pairs()
    }
}

impl PromptOptimizer for Box<dyn PromptOptimizer> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn optimize(&self, prompt: &str) -> String {
        (**self).optimize(prompt)
    }
    fn requires_human_labels(&self) -> bool {
        (**self).requires_human_labels()
    }
    fn llm_agnostic(&self) -> bool {
        (**self).llm_agnostic()
    }
    fn task_agnostic(&self) -> bool {
        (**self).task_agnostic()
    }
    fn training_pairs(&self) -> Option<usize> {
        (**self).training_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_optimizer_is_identity() {
        let p = "leave me alone";
        assert_eq!(NoOptimizer.optimize(p), p);
        assert_eq!(NoOptimizer.name(), "None");
    }

    #[test]
    fn no_optimizer_is_fully_flexible() {
        assert!(!NoOptimizer.requires_human_labels());
        assert!(NoOptimizer.llm_agnostic());
        assert!(NoOptimizer.task_agnostic());
        assert!(NoOptimizer.training_pairs().is_none());
    }

    #[test]
    fn trait_objects_delegate() {
        let boxed: Box<dyn PromptOptimizer> = Box::new(NoOptimizer);
        assert_eq!(boxed.optimize("x"), "x");
        assert_eq!(boxed.name(), "None");
        let by_ref: &dyn PromptOptimizer = &NoOptimizer;
        assert!(by_ref.task_agnostic());
    }
}

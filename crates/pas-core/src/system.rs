//! One-call construction of a trained PAS from raw data.
//!
//! `PasSystem::build` chains the whole paper pipeline — synthetic corpus →
//! §3.1 selection → Algorithm 1 generation (with or without the
//! selection/regeneration phase) → §3.4 SFT — and keeps every stage report
//! so experiments and examples can print what happened.

use std::sync::Arc;

use pas_data::{
    Corpus, CorpusConfig, GenConfig, GenReport, Generator, PairDataset, SelectionConfig,
    SelectionPipeline, SelectionReport,
};
use pas_llm::World;

use crate::pas::{Pas, PasConfig};

/// End-to-end system configuration.
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// Raw-corpus generation parameters.
    pub corpus: CorpusConfig,
    /// §3.1 selection parameters.
    pub selection: SelectionConfig,
    /// Algorithm 1 parameters (set `selection_enabled: false` for the
    /// Table 5 ablation).
    pub generation: GenConfig,
    /// SFT parameters.
    pub pas: PasConfig,
}

/// A fully built PAS system with its stage artifacts.
pub struct PasSystem {
    /// The trained plug-and-play model.
    pub pas: Pas,
    /// The generated fine-tuning dataset.
    pub dataset: PairDataset,
    /// Selection-stage report.
    pub selection_report: SelectionReport,
    /// Generation-stage report.
    pub generation_report: GenReport,
    /// Final SFT loss.
    pub sft_loss: f32,
    /// The latent world built by the corpus (needed to run simulated
    /// downstream models over the same prompts).
    pub world: Arc<World>,
}

impl PasSystem {
    /// Runs corpus → selection → generation → SFT.
    pub fn build(config: &SystemConfig) -> PasSystem {
        let corpus = Corpus::generate(&config.corpus);
        let world = Arc::new(corpus.world.clone());
        let (selected, selection_report) =
            SelectionPipeline::new(config.selection.clone()).run(&corpus.records);
        let (dataset, generation_report) =
            Generator::new(config.generation.clone(), Arc::clone(&world)).run(&selected);
        let (pas, sft_loss) = Pas::sft(&config.pas, &dataset);
        PasSystem { pas, dataset, selection_report, generation_report, sft_loss, world }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::PromptOptimizer;
    use pas_core_test_support::small_system_config;

    /// Shared tiny configuration for fast tests.
    mod pas_core_test_support {
        use super::*;

        pub fn small_system_config(seed: u64) -> SystemConfig {
            SystemConfig {
                corpus: CorpusConfig { size: 350, seed, ..CorpusConfig::default() },
                selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
                generation: GenConfig::default(),
                pas: PasConfig::default(),
            }
        }
    }

    #[test]
    fn build_produces_consistent_artifacts() {
        let sys = PasSystem::build(&small_system_config(3));
        assert_eq!(sys.dataset.len(), sys.selection_report.after_quality);
        assert_eq!(sys.dataset.len(), sys.generation_report.generated);
        assert!(sys.dataset.len() > 100, "dataset size {}", sys.dataset.len());
        assert!(sys.sft_loss.is_finite());
        assert!(!sys.world.is_empty());
        assert_eq!(sys.pas.trained_pairs(), sys.dataset.len());
    }

    #[test]
    fn ablation_flag_propagates() {
        let mut cfg = small_system_config(4);
        cfg.generation.selection_enabled = false;
        let ablated = PasSystem::build(&cfg);
        let full = PasSystem::build(&small_system_config(4));
        assert!(
            ablated.generation_report.residual_flaw_rate()
                > full.generation_report.residual_flaw_rate(),
            "ablation must leave more flaws: {} vs {}",
            ablated.generation_report.residual_flaw_rate(),
            full.generation_report.residual_flaw_rate()
        );
    }

    #[test]
    fn built_pas_augments_corpus_like_prompts() {
        let sys = PasSystem::build(&small_system_config(5));
        let out = sys.pas.optimize("How should I implement a rate limiter in a production system?");
        assert!(out.starts_with("How should I implement"));
        assert!(out.len() > 60, "augmented: {out}");
    }
}

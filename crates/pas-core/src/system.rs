//! One-call construction of a trained PAS from raw data.
//!
//! `PasSystem::build` chains the whole paper pipeline — synthetic corpus →
//! §3.1 selection → Algorithm 1 generation (with or without the
//! selection/regeneration phase) → §3.4 SFT — and keeps every stage report
//! so experiments and examples can print what happened.
//!
//! [`PasSystem::try_build`] is the fault-aware entry point: it surfaces
//! backend/journal failures as [`BuildError`] instead of panicking, and a
//! [`BuildOptions::journal`] path makes the expensive stages (Algorithm 1
//! generation, SFT epochs) resumable — a killed build reopened on the same
//! journal finishes bit-identically to an uninterrupted one. The journal is
//! fingerprinted with the full [`SystemConfig`] debug rendering so a
//! checkpoint can never silently resume under a different configuration.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use pas_data::{
    Corpus, CorpusConfig, GenConfig, GenError, GenReport, Generator, PairDataset, SelectionConfig,
    SelectionPipeline, SelectionReport,
};
use pas_fault::{FaultReport, Journal};
use pas_llm::World;
use pas_text::fx_hash_str;

use crate::pas::{Pas, PasConfig};

/// End-to-end system configuration.
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// Raw-corpus generation parameters.
    pub corpus: CorpusConfig,
    /// §3.1 selection parameters.
    pub selection: SelectionConfig,
    /// Algorithm 1 parameters (set `selection_enabled: false` for the
    /// Table 5 ablation).
    pub generation: GenConfig,
    /// SFT parameters.
    pub pas: PasConfig,
}

/// Options for a fault-aware [`PasSystem::try_build`].
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Checkpoint-journal path. `Some` makes the build resumable: finished
    /// generation pairs and SFT epochs are committed as they complete, and
    /// reopening the same path skips them.
    pub journal: Option<PathBuf>,
}

/// Why a fault-aware build stopped.
#[derive(Debug)]
pub enum BuildError {
    /// The generation stage exhausted its retry budget on a backend call.
    Generation(GenError),
    /// The checkpoint journal could not be opened or written, or belongs to
    /// a different configuration.
    Journal(io::Error),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Generation(e) => write!(f, "generation stage failed: {e}"),
            BuildError::Journal(e) => write!(f, "checkpoint journal error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Generation(e) => Some(e),
            BuildError::Journal(e) => Some(e),
        }
    }
}

/// A fully built PAS system with its stage artifacts.
pub struct PasSystem {
    /// The trained plug-and-play model.
    pub pas: Pas,
    /// The generated fine-tuning dataset.
    pub dataset: PairDataset,
    /// Selection-stage report.
    pub selection_report: SelectionReport,
    /// Generation-stage report.
    pub generation_report: GenReport,
    /// Fault-layer accounting for the generation stage (all zeros when the
    /// configured fault profile is clean).
    pub fault_report: FaultReport,
    /// Final SFT loss.
    pub sft_loss: f32,
    /// The latent world built by the corpus (needed to run simulated
    /// downstream models over the same prompts).
    pub world: Arc<World>,
}

impl PasSystem {
    /// Runs corpus → selection → generation → SFT. Panics on backend
    /// failure; use [`PasSystem::try_build`] to handle failure explicitly.
    pub fn build(config: &SystemConfig) -> PasSystem {
        Self::try_build(config, &BuildOptions::default())
            .unwrap_or_else(|e| panic!("build failed: {e}"))
    }

    /// The journal fingerprint for `config`: any config change invalidates
    /// existing checkpoints instead of resuming under wrong parameters.
    pub fn config_fingerprint(config: &SystemConfig) -> u64 {
        fx_hash_str(&format!("{config:?}"))
    }

    /// [`PasSystem::build`] with explicit failure and optional
    /// checkpoint/resume via [`BuildOptions::journal`].
    pub fn try_build(
        config: &SystemConfig,
        options: &BuildOptions,
    ) -> Result<PasSystem, BuildError> {
        let journal = match &options.journal {
            None => None,
            Some(path) => Some(
                Journal::open(path, Self::config_fingerprint(config))
                    .map_err(BuildError::Journal)?,
            ),
        };
        // Stage spans open and close on this (serial) driving thread; the
        // parallelism lives inside each stage, so the trace order is fixed.
        let mut stage = pas_obs::span("pipeline.corpus");
        let corpus = Corpus::generate(&config.corpus);
        stage.items(corpus.records.len() as u64);
        stage.finish();
        let world = Arc::new(corpus.world.clone());
        let mut stage = pas_obs::span("pipeline.select");
        let (selected, selection_report) =
            SelectionPipeline::new(config.selection.clone()).run(&corpus.records);
        stage.items(selected.len() as u64);
        stage.finish();
        let mut stage = pas_obs::span("pipeline.generate");
        let (dataset, generation_report, fault_report) =
            Generator::new(config.generation.clone(), Arc::clone(&world))
                .try_run_journaled(&selected, journal.as_ref())
                .map_err(BuildError::Generation)?;
        stage.items(dataset.len() as u64);
        stage.finish();
        let mut stage = pas_obs::span("pipeline.sft");
        let (pas, sft_loss) = Pas::sft_with_journal(&config.pas, &dataset, journal.as_ref())
            .map_err(BuildError::Journal)?;
        stage.items(dataset.len() as u64);
        stage.finish();
        Ok(PasSystem {
            pas,
            dataset,
            selection_report,
            generation_report,
            fault_report,
            sft_loss,
            world,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::PromptOptimizer;
    use pas_core_test_support::small_system_config;

    /// Shared tiny configuration for fast tests.
    mod pas_core_test_support {
        use super::*;

        pub fn small_system_config(seed: u64) -> SystemConfig {
            SystemConfig {
                corpus: CorpusConfig { size: 350, seed, ..CorpusConfig::default() },
                selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
                generation: GenConfig::default(),
                pas: PasConfig::default(),
            }
        }
    }

    #[test]
    fn config_fingerprint_tracks_the_configuration() {
        let a = PasSystem::config_fingerprint(&small_system_config(3));
        let b = PasSystem::config_fingerprint(&small_system_config(4));
        assert_eq!(a, PasSystem::config_fingerprint(&small_system_config(3)));
        assert_ne!(a, b, "different configs must fingerprint differently");
    }

    #[test]
    fn journal_from_another_configuration_is_rejected() {
        let path = std::env::temp_dir()
            .join(format!("pas-core-system-fpr-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // A journal stamped with some other configuration's fingerprint…
        drop(pas_fault::Journal::open(&path, 0xdead_beef).unwrap());
        // …must refuse to resume this build rather than mix checkpoints.
        let result = PasSystem::try_build(
            &small_system_config(3),
            &BuildOptions { journal: Some(path.clone()) },
        );
        match result {
            Err(BuildError::Journal(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "got: {e}")
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("a mismatched journal must not open"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn build_produces_consistent_artifacts() {
        let sys = PasSystem::build(&small_system_config(3));
        assert_eq!(sys.dataset.len(), sys.selection_report.after_quality);
        assert_eq!(sys.dataset.len(), sys.generation_report.generated);
        assert!(sys.dataset.len() > 100, "dataset size {}", sys.dataset.len());
        assert!(sys.sft_loss.is_finite());
        assert!(!sys.world.is_empty());
        assert_eq!(sys.pas.trained_pairs(), sys.dataset.len());
    }

    #[test]
    fn ablation_flag_propagates() {
        let mut cfg = small_system_config(4);
        cfg.generation.selection_enabled = false;
        let ablated = PasSystem::build(&cfg);
        let full = PasSystem::build(&small_system_config(4));
        assert!(
            ablated.generation_report.residual_flaw_rate()
                > full.generation_report.residual_flaw_rate(),
            "ablation must leave more flaws: {} vs {}",
            ablated.generation_report.residual_flaw_rate(),
            full.generation_report.residual_flaw_rate()
        );
    }

    #[test]
    fn built_pas_augments_corpus_like_prompts() {
        let sys = PasSystem::build(&small_system_config(5));
        let out = sys.pas.optimize("How should I implement a rate limiter in a production system?");
        assert!(out.starts_with("How should I implement"));
        assert!(out.len() > 60, "augmented: {out}");
    }
}

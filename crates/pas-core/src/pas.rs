//! The PAS model: `M_p ← SFT(M; D_generated)`.
//!
//! Fine-tuning here is real gradient descent, not a stand-in: the generated
//! (prompt, complement) pairs become supervised examples for a multi-label
//! *aspect model* — given a prompt's features, which aspects should the
//! complementary prompt request? The targets are read off each pair's
//! complement **text** with [`detect_aspects`], so flawed pairs (the ones
//! Algorithm 1's selection phase would have removed) inject label noise and
//! measurably degrade the model — the mechanism behind the paper's Table 5
//! ablation.
//!
//! At augmentation time the model predicts aspects for the incoming prompt
//! and realizes them as a Figure 4-style complement. The base model's
//! capability bounds how faithfully the intended aspects make it into text
//! (`fidelity`), which is what separates a Qwen2-7B-based PAS from a
//! LLaMA-2-7B-based one (Table 2).

use std::io;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use pas_data::features::{prompt_features, FEATURE_DIM};
use pas_data::PairDataset;
use pas_fault::Journal;
use pas_llm::teacher::realize_complement_in;
use pas_llm::world::{detect_aspects, Aspect, AspectSet};
use pas_llm::{ChatModel, Critic, ModelProfile};
use pas_nn::{MultiLabelClassifier, SftCheckpoint, TrainParams};
use pas_text::top_keywords;

use crate::optimizer::PromptOptimizer;

/// PAS fine-tuning configuration.
#[derive(Debug, Clone)]
pub struct PasConfig {
    /// Profile name of the base model being fine-tuned (e.g.
    /// `"qwen2-7b-chat"`). Its capability bounds realization fidelity.
    pub base_model: String,
    /// Probability threshold above which an aspect is requested.
    pub aspect_threshold: f32,
    /// Maximum aspects per complement (Figure 4 keeps complements short).
    pub max_aspects: usize,
    /// Aspect-model training parameters.
    pub trainer: TrainParams,
    /// Seed for initialization and generation.
    pub seed: u64,
}

impl Default for PasConfig {
    fn default() -> Self {
        PasConfig {
            base_model: "qwen2-7b-chat".into(),
            aspect_threshold: 0.5,
            max_aspects: 3,
            trainer: TrainParams { epochs: 15, ..TrainParams::default() },
            seed: 0x9a5,
        }
    }
}

/// The fine-tuned plug-and-play prompt-complement model.
///
/// ```
/// use pas_core::{Pas, PasConfig, PromptOptimizer};
/// use pas_data::{PairDataset, PairRecord};
/// use pas_llm::Category;
///
/// let mut dataset = PairDataset::new();
/// dataset.pairs.push(PairRecord {
///     prompt: "How do I profile my parser?".into(),
///     complement: "please reason step by step".into(),
///     category: Category::Coding,
/// });
/// let (pas, _loss) = Pas::sft(&PasConfig::default(), &dataset);
/// let out = pas.optimize("How do I profile my tokenizer?");
/// assert!(out.starts_with("How do I profile my tokenizer?"));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pas {
    name: String,
    aspect_model: MultiLabelClassifier,
    /// Probability each intended aspect survives into the realized text.
    fidelity: f32,
    aspect_threshold: f32,
    max_aspects: usize,
    trained_pairs: usize,
    /// Flawed training complements the model will imitate — an SFT model
    /// reproduces its training distribution, so a contaminated dataset
    /// contaminates generations at the same rate (the Table 5 mechanism).
    contaminated_styles: Vec<String>,
    /// Fraction of the training set that was flawed.
    contamination_rate: f32,
    seed: u64,
}

impl Pas {
    /// Fine-tunes a PAS model on the generated dataset (§3.4's
    /// `M_p ← SFT(M; D_generated)`). Returns the trained model and the
    /// final training loss.
    pub fn sft(config: &PasConfig, dataset: &PairDataset) -> (Pas, f32) {
        Self::sft_with_journal(config, dataset, None).expect("journal-free SFT is infallible")
    }

    /// [`Pas::sft`] with per-epoch checkpointing to a fault journal.
    ///
    /// After every completed epoch the full trainer state (weights, Adam
    /// moments, shuffle-RNG state) is committed under `sft:{epoch}`, so a
    /// killed run can be resumed by reopening the same journal: training
    /// restarts after the highest committed epoch and the finished model is
    /// bit-identical to an uninterrupted run. With `journal = None` this is
    /// exactly [`Pas::sft`].
    pub fn sft_with_journal(
        config: &PasConfig,
        dataset: &PairDataset,
        journal: Option<&Journal>,
    ) -> io::Result<(Pas, f32)> {
        let base = ModelProfile::named(&config.base_model)
            .unwrap_or_else(|| panic!("unknown base model '{}'", config.base_model));
        let features: Vec<Vec<f32>> =
            dataset.pairs.iter().map(|p| prompt_features(&p.prompt)).collect();
        let targets: Vec<Vec<f32>> = dataset
            .pairs
            .iter()
            .map(|p| {
                let detected = detect_aspects(&p.complement);
                Aspect::ALL.iter().map(|&a| if detected.contains(a) { 1.0 } else { 0.0 }).collect()
            })
            .collect();
        let mut aspect_model =
            MultiLabelClassifier::new(FEATURE_DIM, Aspect::ALL.len(), config.seed);
        // Resume from the highest epoch the journal has a checkpoint for.
        let resume: Option<SftCheckpoint> = match journal.and_then(|j| {
            (0..=config.trainer.epochs).rev().find_map(|e| j.get(&format!("sft:{e}")))
        }) {
            None => None,
            Some(payload) => Some(serde_json::from_str(&payload).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("corrupt SFT checkpoint: {e}"))
            })?),
        };
        let mut io_err: Option<io::Error> = None;
        let loss = match journal {
            None => aspect_model.train(&features, &targets, &config.trainer),
            Some(j) => {
                let mut commit = |cp: &SftCheckpoint| {
                    if io_err.is_some() {
                        return; // already failing; don't mask the first error
                    }
                    let payload = serde_json::to_string(cp).expect("checkpoint serializes");
                    if let Err(e) = j.commit(&format!("sft:{}", cp.epochs_done), &payload) {
                        io_err = Some(e);
                    }
                };
                aspect_model.train_resumable(
                    &features,
                    &targets,
                    &config.trainer,
                    resume,
                    Some(&mut commit),
                )
            }
        };
        if let Some(e) = io_err {
            return Err(e);
        }
        let fidelity = (0.33 + 0.75 * base.capability).min(0.98);
        // An SFT model imitates its data: measure, with the same text rules
        // the pipeline critic applies, how much of the training set is
        // flawed, and keep those complements as styles to reproduce.
        let critic = Critic::default();
        let contaminated_styles: Vec<String> = dataset
            .pairs
            .iter()
            .filter(|p| !critic.is_correct_pair(&p.prompt, &p.complement))
            .map(|p| p.complement.clone())
            .collect();
        let contamination_rate = if dataset.is_empty() {
            0.0
        } else {
            contaminated_styles.len() as f32 / dataset.len() as f32
        };
        let pas = Pas {
            name: format!("PAS ({})", base.name),
            aspect_model,
            fidelity,
            aspect_threshold: config.aspect_threshold,
            max_aspects: config.max_aspects,
            trained_pairs: dataset.len(),
            contaminated_styles,
            contamination_rate,
            seed: config.seed,
        };
        Ok((pas, loss))
    }

    /// Aspects the model *intends* to request for `prompt` (before base-
    /// model realization noise): thresholded probabilities, top-k capped,
    /// falling back to the single most likely aspect.
    pub fn predict_aspects(&self, prompt: &str) -> AspectSet {
        let probs = self.aspect_model.predict_probs(&prompt_features(prompt));
        let mut scored: Vec<(usize, f32)> = probs.into_iter().enumerate().collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut set = AspectSet::EMPTY;
        for &(i, p) in scored.iter().take(self.max_aspects) {
            if p >= self.aspect_threshold {
                set.insert(Aspect::from_index(i).expect("index in range"));
            }
        }
        if set.is_empty() {
            if let Some(&(i, _)) = scored.first() {
                set.insert(Aspect::from_index(i).expect("index in range"));
            }
        }
        set
    }

    /// `p_c = M_p(p)`: generates the complementary prompt.
    pub fn augment(&self, prompt: &str) -> String {
        let mut rng =
            StdRng::seed_from_u64(pas_text::fx_hash_str(prompt) ^ self.seed.rotate_left(9));
        // Style imitation: a model fine-tuned on flawed pairs emits flawed
        // complements at the training contamination rate.
        if !self.contaminated_styles.is_empty() && rng.random::<f32>() < self.contamination_rate {
            let i = rng.random_range(0..self.contaminated_styles.len());
            return self.contaminated_styles[i].clone();
        }
        let intended = self.predict_aspects(prompt);
        // Base-model realization: a weaker base model drops intended
        // aspects from the generated text more often.
        let realized: AspectSet =
            intended.iter().filter(|_| rng.random::<f32>() < self.fidelity).collect();
        let final_set = if realized.is_empty() { intended } else { realized };
        let topic = top_keywords(prompt, 3).join(" ");
        realize_complement_in(pas_text::lang::detect_language(prompt), &topic, final_set)
    }

    /// `r_e = LLM(cat(p, p_c))`: augments and queries a downstream model.
    pub fn enhance<M: ChatModel>(&self, llm: &M, prompt: &str) -> String {
        llm.chat(&self.optimize(prompt))
    }

    /// Number of pairs the model was fine-tuned on.
    pub fn trained_pairs(&self) -> usize {
        self.trained_pairs
    }

    /// Realization fidelity derived from the base model.
    pub fn fidelity(&self) -> f32 {
        self.fidelity
    }
}

impl PromptOptimizer for Pas {
    fn name(&self) -> &str {
        &self.name
    }

    /// PAS complements — it never rewrites: the original prompt is kept
    /// verbatim and the complement is appended.
    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} {}", self.augment(prompt))
    }

    fn requires_human_labels(&self) -> bool {
        false // the dataset is generated fully automatically (Algorithm 1)
    }

    fn llm_agnostic(&self) -> bool {
        true // one trained PAS plugs into any ChatModel
    }

    fn task_agnostic(&self) -> bool {
        true // trained across all 14 categories at once
    }

    fn training_pairs(&self) -> Option<usize> {
        Some(self.trained_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_data::{PairDataset, PairRecord};
    use pas_llm::Category;

    /// A tiny synthetic SFT set with a clean prompt→aspect mapping.
    fn toy_dataset(n: usize) -> PairDataset {
        let mut ds = PairDataset::new();
        for i in 0..n {
            // Coding prompts pair with step-by-step+examples complements;
            // writing prompts with style complements.
            if i % 2 == 0 {
                ds.pairs.push(PairRecord {
                    prompt: format!("How do I implement feature {i} in my parser code?"),
                    complement: pas_llm::teacher::realize_complement(
                        "parser code",
                        [Aspect::StepByStep, Aspect::Examples].into_iter().collect(),
                    ),
                    category: Category::Coding,
                });
            } else {
                ds.pairs.push(PairRecord {
                    prompt: format!("Help me write announcement number {i} for the team."),
                    complement: pas_llm::teacher::realize_complement(
                        "announcement team",
                        [Aspect::StyleConstraint, Aspect::Audience].into_iter().collect(),
                    ),
                    category: Category::Writing,
                });
            }
        }
        ds
    }

    #[test]
    fn sft_learns_prompt_to_aspect_mapping() {
        let (pas, loss) = Pas::sft(&PasConfig::default(), &toy_dataset(200));
        assert!(loss < 0.3, "training loss {loss}");
        let coding = pas.predict_aspects("How do I implement caching in my parser code?");
        assert!(coding.contains(Aspect::StepByStep) || coding.contains(Aspect::Examples));
        let writing = pas.predict_aspects("Help me write a kind announcement for the team.");
        assert!(writing.contains(Aspect::StyleConstraint) || writing.contains(Aspect::Audience));
    }

    #[test]
    fn optimize_preserves_the_original_prompt() {
        let (pas, _) = Pas::sft(&PasConfig::default(), &toy_dataset(50));
        let prompt = "How do I implement retry logic in my parser code?";
        let out = pas.optimize(prompt);
        assert!(out.starts_with(prompt), "PAS must complement, not rewrite");
        assert!(out.len() > prompt.len());
    }

    #[test]
    fn augmentation_is_deterministic() {
        let (pas, _) = Pas::sft(&PasConfig::default(), &toy_dataset(50));
        let p = "How do I implement pagination in my parser code?";
        assert_eq!(pas.augment(p), pas.augment(p));
    }

    #[test]
    fn weaker_base_model_realizes_fewer_aspects() {
        let ds = toy_dataset(200);
        let strong = Pas::sft(&PasConfig::default(), &ds).0;
        let weak = Pas::sft(
            &PasConfig { base_model: "llama-2-7b-instruct".into(), ..PasConfig::default() },
            &ds,
        )
        .0;
        assert!(strong.fidelity() > weak.fidelity());
        // Aggregate over many prompts: the weak base drops more aspects.
        let count = |pas: &Pas| -> usize {
            (0..200)
                .map(|i| {
                    let p = format!("How do I implement module {i} in my parser code?");
                    detect_aspects(&pas.augment(&p)).len()
                })
                .sum()
        };
        assert!(count(&strong) > count(&weak));
    }

    #[test]
    fn flexibility_metadata_matches_table3() {
        let (pas, _) = Pas::sft(&PasConfig::default(), &toy_dataset(20));
        assert!(!pas.requires_human_labels());
        assert!(pas.llm_agnostic());
        assert!(pas.task_agnostic());
        assert_eq!(pas.training_pairs(), Some(20));
    }

    #[test]
    fn empty_dataset_still_produces_a_model() {
        let (pas, _) = Pas::sft(&PasConfig::default(), &PairDataset::new());
        let out = pas.augment("anything at all");
        assert!(!out.is_empty());
        assert_eq!(pas.trained_pairs(), 0);
    }
}

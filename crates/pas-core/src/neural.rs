//! The fully neural PAS variant.
//!
//! [`crate::Pas`] factors the complement model into a trained aspect
//! predictor plus a template realizer. `NeuralPas` is the end-to-end
//! reading of §3.4: a BPE tokenizer and a feed-forward causal LM are
//! fine-tuned directly on `prompt <sep> complement <eos>` token sequences,
//! and augmentation is autoregressive generation after the separator. It is
//! weaker than the factored model (the ablation bench quantifies the gap)
//! but demonstrates that the workspace's training substrate carries a real
//! text-to-text fine-tune.

use pas_data::PairDataset;
use pas_nn::{Adam, AdamConfig, FfnLm, GenerateConfig, LmConfig};
use pas_tokenizer::{BpeTokenizer, BpeTrainer, SpecialToken, TrainConfig};

use crate::optimizer::PromptOptimizer;

/// Neural PAS hyper-parameters.
#[derive(Debug, Clone)]
pub struct NeuralPasConfig {
    /// BPE merge budget.
    pub merges: usize,
    /// LM context window.
    pub context: usize,
    /// LM embedding width.
    pub embed_dim: usize,
    /// LM hidden width.
    pub hidden_dim: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Max complement tokens at generation time.
    pub max_tokens: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for NeuralPasConfig {
    fn default() -> Self {
        NeuralPasConfig {
            merges: 600,
            context: 6,
            embed_dim: 24,
            hidden_dim: 64,
            epochs: 8,
            lr: 0.02,
            max_tokens: 40,
            seed: 0xe2e,
        }
    }
}

/// The end-to-end neural complement model.
#[derive(Debug, Clone)]
pub struct NeuralPas {
    tokenizer: BpeTokenizer,
    lm: FfnLm,
    max_tokens: usize,
    trained_pairs: usize,
}

impl NeuralPas {
    /// Fine-tunes the tokenizer + LM on the generated dataset. Returns the
    /// model and the final-epoch mean token loss.
    pub fn sft(config: &NeuralPasConfig, dataset: &PairDataset) -> (NeuralPas, f32) {
        // 1. Train the tokenizer over both sides of every pair.
        let mut corpus: Vec<String> = Vec::with_capacity(dataset.len() * 2);
        for p in &dataset.pairs {
            corpus.push(p.prompt.clone());
            corpus.push(p.complement.clone());
        }
        let tokenizer = BpeTrainer::new(TrainConfig { merges: config.merges, min_pair_count: 2 })
            .train(corpus.iter().map(String::as_str));

        // 2. Build training sequences `bos prompt sep complement eos`.
        let sequences: Vec<Vec<u32>> = dataset
            .pairs
            .iter()
            .map(|p| {
                let mut seq = vec![SpecialToken::Bos.id()];
                seq.extend(tokenizer.encode(&p.prompt));
                seq.push(SpecialToken::Sep.id());
                seq.extend(tokenizer.encode(&p.complement));
                seq.push(SpecialToken::Eos.id());
                seq
            })
            .collect();

        // 3. Fine-tune the LM.
        let mut lm = FfnLm::new(LmConfig {
            vocab_size: tokenizer.vocab().len(),
            context: config.context,
            embed_dim: config.embed_dim,
            hidden_dim: config.hidden_dim,
            seed: config.seed,
        });
        let mut adam = Adam::new(AdamConfig { lr: config.lr, ..AdamConfig::default() });
        let mut loss = f32::INFINITY;
        for _ in 0..config.epochs {
            loss = lm.train_epoch(&sequences, &mut adam);
        }
        (
            NeuralPas {
                tokenizer,
                lm,
                max_tokens: config.max_tokens,
                trained_pairs: dataset.len(),
            },
            loss,
        )
    }

    /// Generates a complement for `prompt` by continuing after `<sep>`.
    pub fn augment(&self, prompt: &str) -> String {
        let mut prefix = vec![SpecialToken::Bos.id()];
        prefix.extend(self.tokenizer.encode(prompt));
        prefix.push(SpecialToken::Sep.id());
        let cfg = GenerateConfig {
            max_tokens: self.max_tokens,
            temperature: 0.0,
            top_k: 0,
            stop_token: Some(SpecialToken::Eos.id()),
            seed: 0,
        };
        let tokens = self.lm.generate(&prefix, &cfg);
        self.tokenizer.decode(&tokens)
    }

    /// Mean token negative log-likelihood of a held-out pair set.
    pub fn eval_nll(&self, dataset: &PairDataset) -> f32 {
        if dataset.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for p in &dataset.pairs {
            let mut seq = vec![SpecialToken::Bos.id()];
            seq.extend(self.tokenizer.encode(&p.prompt));
            seq.push(SpecialToken::Sep.id());
            seq.extend(self.tokenizer.encode(&p.complement));
            seq.push(SpecialToken::Eos.id());
            total += self.lm.nll(&seq);
        }
        total / dataset.len() as f32
    }

    /// Number of fine-tuning pairs.
    pub fn trained_pairs(&self) -> usize {
        self.trained_pairs
    }
}

impl PromptOptimizer for NeuralPas {
    fn name(&self) -> &str {
        "PAS-neural"
    }

    fn optimize(&self, prompt: &str) -> String {
        let complement = self.augment(prompt);
        if complement.trim().is_empty() {
            prompt.to_string()
        } else {
            format!("{prompt} {complement}")
        }
    }

    fn requires_human_labels(&self) -> bool {
        false
    }

    fn llm_agnostic(&self) -> bool {
        true
    }

    fn task_agnostic(&self) -> bool {
        true
    }

    fn training_pairs(&self) -> Option<usize> {
        Some(self.trained_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_data::PairRecord;
    use pas_llm::Category;

    /// A highly regular dataset the small LM can actually learn.
    fn regular_dataset(n: usize) -> PairDataset {
        let mut ds = PairDataset::new();
        for i in 0..n {
            ds.pairs.push(PairRecord {
                prompt: format!("explain topic {}", i % 5),
                complement: "please reason step by step".to_string(),
                category: Category::Knowledge,
            });
        }
        ds
    }

    fn quick_config() -> NeuralPasConfig {
        NeuralPasConfig { merges: 80, epochs: 20, ..NeuralPasConfig::default() }
    }

    #[test]
    fn sft_converges_on_regular_data() {
        let (model, loss) = NeuralPas::sft(&quick_config(), &regular_dataset(40));
        assert!(loss < 1.0, "loss {loss}");
        let out = model.augment("explain topic 2");
        assert!(out.contains("step"), "learned complement: {out:?}");
    }

    #[test]
    fn augment_is_deterministic() {
        let (model, _) = NeuralPas::sft(&quick_config(), &regular_dataset(30));
        assert_eq!(model.augment("explain topic 1"), model.augment("explain topic 1"));
    }

    #[test]
    fn optimize_keeps_prompt_prefix() {
        let (model, _) = NeuralPas::sft(&quick_config(), &regular_dataset(30));
        let out = model.optimize("explain topic 3");
        assert!(out.starts_with("explain topic 3"));
    }

    #[test]
    fn eval_nll_decreases_with_training() {
        let ds = regular_dataset(40);
        let (short, _) = NeuralPas::sft(
            &NeuralPasConfig { epochs: 1, merges: 80, ..NeuralPasConfig::default() },
            &ds,
        );
        let (long, _) = NeuralPas::sft(&quick_config(), &ds);
        assert!(long.eval_nll(&ds) < short.eval_nll(&ds));
    }

    #[test]
    fn flexibility_metadata() {
        let (model, _) = NeuralPas::sft(&quick_config(), &regular_dataset(10));
        assert!(!model.requires_human_labels());
        assert!(model.llm_agnostic());
        assert!(model.task_agnostic());
        assert_eq!(model.training_pairs(), Some(10));
    }
}

//! The PAS system: fine-tuning and the plug-and-play augmentation API.
//!
//! This crate implements §3.4 of the paper:
//!
//! - [`optimizer`] — the [`PromptOptimizer`] trait every automatic-prompt-
//!   engineering method implements, carrying the flexibility metadata that
//!   Table 3 compares (human labor, LLM-agnostic, task-agnostic).
//! - [`pas`] — the [`Pas`] model: `M_p ← SFT(M; D_generated)`. Fine-tuning
//!   really trains a multi-label aspect model (and optionally a neural
//!   complement LM) on the generated pairs; augmentation is
//!   `p_c = M_p(p)` and enhancement `r_e = LLM(cat(p, p_c))`.
//! - [`neural`] — the fully neural complement generator variant
//!   ([`NeuralPas`]): a BPE tokenizer + feed-forward LM fine-tuned on
//!   `prompt <sep> complement` sequences, provided as the paper's
//!   "train one LLM" reading and used in an ablation bench.
//! - [`system`] — [`PasSystem`]: one-call pipeline from raw corpus to a
//!   trained PAS (corpus → selection → Algorithm 1 → SFT), with the stage
//!   reports the experiments print. [`PasSystem::try_build`] adds explicit
//!   failure and checkpoint/resume via a `pas-fault` journal.
//! - [`serve`] — [`DegradingServer`]: serve-time fault tolerance. When the
//!   complement model `M_p` is unreachable the server degrades to
//!   passthrough (the bare prompt) and counts it, instead of failing the
//!   request — the operational reading of "plug-and-play".

pub mod neural;
pub mod optimizer;
pub mod pas;
pub mod serve;
pub mod system;

pub use neural::{NeuralPas, NeuralPasConfig};
pub use optimizer::{NoOptimizer, PromptOptimizer};
pub use pas::{Pas, PasConfig};
pub use serve::{DegradingServer, OptimizerService};
pub use system::{BuildError, BuildOptions, PasSystem, SystemConfig};

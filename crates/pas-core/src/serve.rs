//! Degraded-mode serving: the plug-and-play guarantee under failure.
//!
//! The paper's pitch is that PAS is a *plug-in*: it sits in front of any
//! main model and only ever appends a complement to the user's prompt. The
//! serve-time corollary, implemented here, is that when `M_p` (the
//! complement model) is unreachable the system must answer with the bare
//! prompt `p` — exactly what the user would have gotten without PAS — and
//! never surface an error for a request the main model could have served.
//!
//! [`DegradingServer`] wraps any [`PromptOptimizer`] behind the full
//! `pas-fault` stack (deterministic injector → retry engine with breaker).
//! While the boundary is healthy, `optimize` returns the wrapped
//! optimizer's output bit-identically; when the retry budget is exhausted
//! it falls back to passthrough and counts the degradation.

use std::sync::atomic::{AtomicU64, Ordering};

use pas_fault::{streams, FaultConfig, FaultReport, FaultyModel, Resilient};
use pas_llm::{ChatError, ChatModel, TryChatModel};

use crate::optimizer::PromptOptimizer;

// Passthrough fallbacks served because the optimizer boundary was down.
// A plain commutative add — safe from any context, including the gateway's
// parallel batch dispatch.
static OBS_DEGRADED: pas_obs::Counter = pas_obs::Counter::new("serve.degraded");

/// A [`PromptOptimizer`] viewed as a [`ChatModel`]: "chat" is the prompt
/// transformation `p → cat(p, p_c)`. This is the adapter that lets the
/// serve-time `M_p` boundary reuse the whole chat-level fault stack.
pub struct OptimizerService<O: PromptOptimizer> {
    inner: O,
}

impl<O: PromptOptimizer> OptimizerService<O> {
    /// Wraps `optimizer` as a chat boundary.
    pub fn new(optimizer: O) -> Self {
        OptimizerService { inner: optimizer }
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: PromptOptimizer> ChatModel for OptimizerService<O> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn chat(&self, input: &str) -> String {
        self.inner.optimize(input)
    }
}

/// A serve-time optimizer boundary that degrades instead of failing.
///
/// `optimize` first drives the wrapped optimizer through the fault stack;
/// on success the augmented prompt is bit-identical to calling the
/// optimizer directly. If the boundary is exhausted (permanent outage,
/// open breaker), the original prompt passes through unchanged and
/// [`DegradingServer::degraded`] counts it — requests are *never* failed.
pub struct DegradingServer<O: PromptOptimizer> {
    boundary: Resilient<FaultyModel<OptimizerService<O>>>,
    degraded: AtomicU64,
}

impl<O: PromptOptimizer> DegradingServer<O> {
    /// Puts `optimizer` behind the fault stack described by `fault` (use a
    /// clean profile in production; injecting profiles exist for chaos
    /// testing).
    pub fn new(optimizer: O, fault: &FaultConfig) -> Self {
        let model =
            FaultyModel::new(OptimizerService::new(optimizer), fault.injector(), streams::SERVE_MP);
        let boundary = Resilient::new(model, fault.engine());
        DegradingServer { boundary, degraded: AtomicU64::new(0) }
    }

    /// The wrapped optimizer.
    pub fn optimizer(&self) -> &O {
        self.boundary.inner().inner().inner()
    }

    /// Requests served with the passthrough prompt because the optimizer
    /// boundary was exhausted.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Fault-layer accounting, with the degradation count folded in.
    pub fn fault_report(&self) -> FaultReport {
        let mut report = self.boundary.report();
        report.degraded = self.degraded();
        report
    }

    /// True while the boundary's circuit breaker is open — the serve-level
    /// health signal a replica pool routes around. An open breaker is not
    /// final: every `breaker_probe_interval`-th call probes the backend, and
    /// a successful probe closes it again (half-open → closed).
    pub fn breaker_open(&self) -> bool {
        self.boundary.engine().breaker().is_open()
    }

    /// Drives one request through the fault stack *without* the passthrough
    /// fallback: the augmented prompt on success, the final [`ChatError`]
    /// when the boundary is exhausted. Callers that own a failover story (a
    /// replica pool trying the next replica) use this; [`DegradingServer::
    /// optimize`] is this plus passthrough-and-count on error.
    pub fn try_optimize(&self, prompt: &str) -> Result<String, ChatError> {
        self.boundary.try_chat(prompt)
    }
}

impl<O: PromptOptimizer> PromptOptimizer for DegradingServer<O> {
    fn name(&self) -> &str {
        self.optimizer().name()
    }

    /// The plug-and-play guarantee: the optimizer's output when the
    /// boundary holds, the bare prompt when it doesn't — never an error.
    fn optimize(&self, prompt: &str) -> String {
        match self.try_optimize(prompt) {
            Ok(augmented) => augmented,
            Err(_) => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                OBS_DEGRADED.incr();
                prompt.to_string()
            }
        }
    }

    fn requires_human_labels(&self) -> bool {
        self.optimizer().requires_human_labels()
    }

    fn llm_agnostic(&self) -> bool {
        self.optimizer().llm_agnostic()
    }

    fn task_agnostic(&self) -> bool {
        self.optimizer().task_agnostic()
    }

    fn training_pairs(&self) -> Option<usize> {
        self.optimizer().training_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::NoOptimizer;
    use pas_fault::FaultProfile;

    /// A toy optimizer with visible output.
    struct Suffix;

    impl PromptOptimizer for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn optimize(&self, prompt: &str) -> String {
            format!("{prompt} [augmented]")
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
        fn training_pairs(&self) -> Option<usize> {
            Some(7)
        }
    }

    fn config(profile: FaultProfile) -> FaultConfig {
        FaultConfig { profile, ..FaultConfig::default() }
    }

    #[test]
    fn healthy_boundary_is_transparent() {
        let server = DegradingServer::new(Suffix, &FaultConfig::default());
        assert_eq!(server.optimize("hello"), "hello [augmented]");
        assert_eq!(server.degraded(), 0);
        assert!(server.fault_report().is_clean());
        assert_eq!(server.name(), "suffix");
        assert_eq!(server.training_pairs(), Some(7));
    }

    #[test]
    fn chaos_boundary_still_returns_the_exact_augmentation() {
        let server = DegradingServer::new(Suffix, &config(FaultProfile::chaos()));
        for i in 0..50 {
            let prompt = format!("request {i}");
            assert_eq!(server.optimize(&prompt), format!("{prompt} [augmented]"));
        }
        assert_eq!(server.degraded(), 0, "eventual-success faults must never degrade");
        let report = server.fault_report();
        assert!(report.total_faults() > 0, "chaos must actually inject");
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn outage_degrades_to_passthrough_and_counts() {
        let server = DegradingServer::new(Suffix, &config(FaultProfile::outage()));
        for i in 0..20 {
            let prompt = format!("request {i}");
            assert_eq!(server.optimize(&prompt), prompt, "degraded serve must be passthrough");
        }
        assert_eq!(server.degraded(), 20);
        let report = server.fault_report();
        assert_eq!(report.degraded, 20);
        assert!(report.breaker_trips >= 1, "hard outage must trip the breaker");
        assert!(
            report.breaker_fast_fails > 0,
            "open breaker must shed most attempts during an outage"
        );
    }

    #[test]
    fn try_optimize_surfaces_the_error_without_degrading() {
        let healthy = DegradingServer::new(Suffix, &FaultConfig::default());
        assert_eq!(healthy.try_optimize("x").as_deref(), Ok("x [augmented]"));
        assert!(!healthy.breaker_open());

        let down = DegradingServer::new(Suffix, &config(FaultProfile::outage()));
        for _ in 0..10 {
            assert!(down.try_optimize("x").is_err());
        }
        assert_eq!(down.degraded(), 0, "failover callers own the degradation decision");
        assert!(down.breaker_open(), "a hard outage must open the breaker");
    }

    #[test]
    fn passthrough_degradation_equals_no_optimizer() {
        let down = DegradingServer::new(Suffix, &config(FaultProfile::outage()));
        for prompt in ["alpha", "beta", "gamma delta"] {
            assert_eq!(down.optimize(prompt), NoOptimizer.optimize(prompt));
        }
    }
}

//! Property-based tests for the neural substrate: gradient checks against
//! finite differences and optimizer invariants over random inputs.

use proptest::prelude::*;

use pas_nn::loss::{bce_with_logits, softmax, softmax_cross_entropy};
use pas_nn::{Adam, AdamConfig, FfnLm, LmConfig, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-10.0f32..10.0, 1..12)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Order-preserving.
        for i in 0..logits.len() {
            for j in 0..logits.len() {
                if logits[i] > logits[j] {
                    prop_assert!(p[i] >= p[j] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference(
        logits in prop::collection::vec(-3.0f32..3.0, 3..6),
        target_pick in 0usize..100,
    ) {
        let k = logits.len();
        let target = (target_pick % k) as u32;
        let m = Matrix::from_vec(1, k, logits.clone());
        let (_, grad) = softmax_cross_entropy(&m, &[target]);
        let eps = 1e-2;
        for c in 0..k {
            let mut lp = m.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let mut lm = m.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let (loss_p, _) = softmax_cross_entropy(&lp, &[target]);
            let (loss_m, _) = softmax_cross_entropy(&lm, &[target]);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            prop_assert!((grad.get(0, c) - numeric).abs() < 5e-3,
                "c={c}: {} vs {numeric}", grad.get(0, c));
        }
    }

    #[test]
    fn bce_gradient_matches_finite_difference(
        logits in prop::collection::vec(-3.0f32..3.0, 2..5),
        bits in prop::collection::vec(0u8..2, 2..5),
    ) {
        let k = logits.len().min(bits.len());
        let m = Matrix::from_vec(1, k, logits[..k].to_vec());
        let t = Matrix::from_vec(1, k, bits[..k].iter().map(|&b| b as f32).collect());
        let (_, grad) = bce_with_logits(&m, &t);
        let eps = 1e-2;
        for c in 0..k {
            let mut lp = m.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let mut lm = m.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let numeric = (bce_with_logits(&lp, &t).0 - bce_with_logits(&lm, &t).0) / (2.0 * eps);
            prop_assert!((grad.get(0, c) - numeric).abs() < 5e-3);
        }
    }

    #[test]
    fn matmul_is_distributive_over_addition(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
        c in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        // (A + B)·C == A·C + B·C for 2×3 and 3×2 matrices.
        let ma = Matrix::from_vec(2, 3, a.clone());
        let mb = Matrix::from_vec(2, 3, b.clone());
        let mc = Matrix::from_vec(3, 2, c);
        let sum = Matrix::from_vec(2, 3, a.iter().zip(&b).map(|(x, y)| x + y).collect());
        let lhs = sum.matmul(&mc);
        let rhs_a = ma.matmul(&mc);
        let rhs_b = mb.matmul(&mc);
        for i in 0..4 {
            prop_assert!((lhs.data()[i] - rhs_a.data()[i] - rhs_b.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn lm_generation_stays_in_vocabulary(seed in 0u64..500) {
        let lm = FfnLm::new(LmConfig { vocab_size: 12, context: 2, embed_dim: 4, hidden_dim: 8, seed });
        let out = lm.generate(&[1], &pas_nn::GenerateConfig {
            max_tokens: 8, temperature: 1.0, top_k: 5, stop_token: None, seed,
        });
        prop_assert!(out.iter().all(|&t| (t as usize) < 12));
        prop_assert_eq!(out.len(), 8);
    }
}

#[test]
fn adam_reduces_loss_on_random_regression() {
    // Deterministic but structurally random: fit y = 2x with Adam.
    let mut w = [0.0f32];
    let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
    let data: Vec<(f32, f32)> = (0..32).map(|i| (i as f32 / 16.0, i as f32 / 8.0)).collect();
    let loss = |w: f32| -> f32 {
        data.iter().map(|&(x, y)| (w * x - y).powi(2)).sum::<f32>() / data.len() as f32
    };
    let initial = loss(w[0]);
    for _ in 0..300 {
        let grad: f32 =
            data.iter().map(|&(x, y)| 2.0 * (w[0] * x - y) * x).sum::<f32>() / data.len() as f32;
        adam.begin_step();
        adam.update(&mut w, &[grad]);
    }
    assert!(loss(w[0]) < initial / 100.0, "loss {} → {}", initial, loss(w[0]));
    assert!((w[0] - 2.0).abs() < 0.05, "w = {}", w[0]);
}

//! Optimizers: plain SGD and Adam.
//!
//! Optimizers are stateless w.r.t. the model structure: callers hand in
//! `(param, grad)` slice pairs in a fixed registration order. Adam keeps its
//! moment buffers keyed by that order, so the same optimizer instance must
//! always see the same parameter sequence — which the model `step`
//! implementations guarantee.

use serde::{Deserialize, Serialize};

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Per-parameter-tensor max L2 norm for the gradient; `None` disables.
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, clip_norm: None }
    }

    /// Applies one update to `param` from `grad`.
    pub fn update(&mut self, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        let scale = clip_scale(grad, self.clip_norm);
        for (p, &g) in param.iter_mut().zip(grad) {
            *p -= self.lr * g * scale;
        }
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Per-tensor gradient-norm clip; `None` disables.
    pub clip_norm: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-2, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: Some(5.0) }
    }
}

/// Adam optimizer with per-tensor moment state.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    /// `(m, v)` buffers per registered tensor, in registration order.
    moments: Vec<(Vec<f32>, Vec<f32>)>,
    /// Global step count (for bias correction).
    step: u64,
    /// Cursor into `moments` within the current step.
    cursor: usize,
}

impl Adam {
    /// Creates an Adam optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, moments: Vec::new(), step: 0, cursor: 0 }
    }

    /// Begins an optimization step; call before the per-tensor updates.
    pub fn begin_step(&mut self) {
        self.step += 1;
        self.cursor = 0;
    }

    /// Updates one tensor. Must be called in the same tensor order every
    /// step.
    pub fn update(&mut self, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.cursor == self.moments.len() {
            self.moments.push((vec![0.0; param.len()], vec![0.0; param.len()]));
        }
        let (m, v) = &mut self.moments[self.cursor];
        assert_eq!(m.len(), param.len(), "tensor order changed between steps");
        self.cursor += 1;

        let scale = clip_scale(grad, self.config.clip_norm);
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bc1 = 1.0 - b1.powi(self.step as i32);
        let bc2 = 1.0 - b2.powi(self.step as i32);
        for ((p, &g0), (mi, vi)) in param.iter_mut().zip(grad).zip(m.iter_mut().zip(v.iter_mut())) {
            let g = g0 * scale;
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.config.lr * m_hat / (v_hat.sqrt() + self.config.eps);
        }
    }

    /// Current global step.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// A serializable snapshot of the moment buffers and step counter, for
    /// checkpointing. Restoring it with [`Adam::restore`] continues the
    /// optimization bit-identically.
    pub fn state(&self) -> AdamState {
        AdamState { moments: self.moments.clone(), step: self.step }
    }

    /// Rebuilds an optimizer from a [`Adam::state`] snapshot.
    pub fn restore(config: AdamConfig, state: AdamState) -> Adam {
        Adam { config, moments: state.moments, step: state.step, cursor: 0 }
    }
}

/// Checkpointable [`Adam`] state: the `(m, v)` moment buffers in
/// registration order plus the global step count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// `(m, v)` buffers per registered tensor.
    pub moments: Vec<(Vec<f32>, Vec<f32>)>,
    /// Global step count (bias correction).
    pub step: u64,
}

fn clip_scale(grad: &[f32], clip: Option<f32>) -> f32 {
    let Some(max_norm) = clip else { return 1.0 };
    let norm = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm {
        max_norm / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x-3)² with an optimizer; returns final x.
    fn minimize_quadratic<F: FnMut(&mut [f32], &[f32])>(mut update: F, iters: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..iters {
            let grad = [2.0 * (x[0] - 3.0)];
            update(&mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = minimize_quadratic(|p, g| sgd.update(p, g), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(AdamConfig { lr: 0.3, ..AdamConfig::default() });
        let x = minimize_quadratic(
            |p, g| {
                adam.begin_step();
                adam.update(p, g);
            },
            200,
        );
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut sgd = Sgd { lr: 1.0, clip_norm: Some(1.0) };
        let mut x = [0.0f32];
        sgd.update(&mut x, &[100.0]);
        assert!((x[0] + 1.0).abs() < 1e-6, "clipped step should be -1, got {}", x[0]);
    }

    #[test]
    fn adam_handles_multiple_tensors() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut a = [0.0f32; 2];
        let mut b = [0.0f32; 3];
        for _ in 0..10 {
            adam.begin_step();
            adam.update(&mut a, &[1.0, 1.0]);
            adam.update(&mut b, &[1.0, 1.0, 1.0]);
        }
        assert!(a[0] < 0.0 && b[0] < 0.0);
        assert_eq!(adam.steps(), 10);
    }

    #[test]
    fn state_snapshot_resumes_bit_identically() {
        let grad = [0.3f32, -0.2, 0.1];
        let mut full = Adam::new(AdamConfig::default());
        let mut a1 = [0.5f32; 3];
        for _ in 0..5 {
            full.begin_step();
            full.update(&mut a1, &grad);
        }
        let mut resumed = Adam::restore(AdamConfig::default(), full.state());
        let mut a2 = a1;
        for _ in 0..5 {
            full.begin_step();
            full.update(&mut a1, &grad);
            resumed.begin_step();
            resumed.update(&mut a2, &grad);
        }
        assert_eq!(a1, a2);
        assert_eq!(full.state(), resumed.state());
    }

    #[test]
    #[should_panic(expected = "tensor order changed")]
    fn adam_detects_order_change() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut a = [0.0f32; 2];
        let mut b = [0.0f32; 3];
        adam.begin_step();
        adam.update(&mut a, &[1.0, 1.0]);
        adam.begin_step();
        adam.update(&mut b, &[1.0, 1.0, 1.0]); // wrong tensor first
    }
}

//! Minimal neural-network library for the PAS fine-tuning substrate.
//!
//! The paper fine-tunes 7B-parameter chat models on 8×H100s; this workspace
//! substitutes laptop-scale models that are nonetheless *really trained* by
//! gradient descent, so that the quality of the generated dataset measurably
//! changes model behaviour — the property every PAS experiment rests on.
//!
//! Contents:
//! - [`matrix`] — row-major `f32` matrices with the handful of BLAS-ish ops
//!   the models need.
//! - [`layers`] — `Linear` and `Embedding` layers with manual backward
//!   passes.
//! - [`loss`] — softmax cross-entropy and multi-label binary cross-entropy.
//! - [`optim`] — SGD and Adam.
//! - [`lm`] — a feed-forward causal token LM (Bengio-style fixed-context
//!   neural LM) with temperature/top-k sampling: the "fine-tunable LLM".
//! - [`classifier`] — softmax and multi-label logistic classifiers over
//!   hashed text features: the trainable selection/aspect models.
//! - [`attn`] — a single-head causal self-attention LM with hand-written
//!   backprop, gradient-checked against finite differences.

pub mod attn;
pub mod classifier;
pub mod layers;
pub mod lm;
pub mod loss;
pub mod matrix;
pub mod optim;

pub use attn::{AttnLm, AttnLmConfig};
pub use classifier::{MultiLabelClassifier, SftCheckpoint, SoftmaxClassifier, TrainParams};
pub use layers::{Embedding, Linear};
pub use lm::{FfnLm, GenerateConfig, LmConfig};
pub use loss::{bce_with_logits, softmax_cross_entropy};
pub use matrix::Matrix;
pub use optim::{Adam, AdamConfig, AdamState, Sgd};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_learns_a_tiny_sequence() {
        // The LM must be able to memorize a short deterministic sequence —
        // the smoke test that gradients flow end to end.
        let vocab = 10u32;
        let seq: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8];
        let cfg = LmConfig {
            vocab_size: vocab as usize,
            context: 3,
            embed_dim: 8,
            hidden_dim: 16,
            seed: 1,
        };
        let mut lm = FfnLm::new(cfg);
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
        let mut last = f32::INFINITY;
        for _ in 0..150 {
            last = lm.train_epoch(std::slice::from_ref(&seq), &mut adam);
        }
        assert!(last < 0.5, "loss did not converge: {last}");
        // Greedy continuation of [1,2,3] must be 4.
        let next = lm.predict_next(&[1, 2, 3]);
        assert_eq!(next, 4);
    }
}

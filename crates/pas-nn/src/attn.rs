//! A single-head causal self-attention language model.
//!
//! The feed-forward LM in [`crate::lm`] conditions on a fixed window; this
//! model attends over the whole (bounded) prefix:
//!
//! ```text
//! x_t = tokenEmb[id_t] + posEmb[t]
//! q = x·Wq,  k = x·Wk,  v = x·Wv
//! a_t = softmax_{s ≤ t}( q_t·k_s / √d )
//! c_t = Σ_s a_ts · v_s
//! h_t = tanh(c_t·W1 + b1),  logits_t = h_t·W2 + b2
//! ```
//!
//! Backpropagation through the masked-softmax attention is implemented by
//! hand and verified against finite differences in the tests. The model is
//! deliberately small (no residual stack, one head) — the point is a real
//! attention fine-tune at workspace scale, not a GPT.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::layers::{tanh_backward, tanh_forward, Embedding, Linear};
use crate::loss::{softmax, softmax_cross_entropy};
use crate::matrix::Matrix;
use crate::optim::Adam;

/// Attention-LM hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttnLmConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum attended context length.
    pub context: usize,
    /// Embedding / head dimension.
    pub embed_dim: usize,
    /// FFN hidden width.
    pub hidden_dim: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for AttnLmConfig {
    fn default() -> Self {
        AttnLmConfig { vocab_size: 256, context: 16, embed_dim: 16, hidden_dim: 32, seed: 0xa77 }
    }
}

/// The attention LM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttnLm {
    config: AttnLmConfig,
    token_emb: Embedding,
    pos_emb: Embedding,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    ffn1: Linear,
    ffn2: Linear,
}

/// Forward-pass cache for one sequence.
struct Cache {
    /// Input embeddings (T×E).
    x: Matrix,
    /// Queries, keys, values (T×E each).
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Attention weights (T×T, causal lower-triangular rows).
    attn: Matrix,
    /// Context vectors (T×E).
    ctx: Matrix,
    /// FFN activations (T×H).
    h: Matrix,
}

impl AttnLm {
    /// Creates a freshly initialized model.
    pub fn new(config: AttnLmConfig) -> Self {
        assert!(config.vocab_size > 1, "vocab too small");
        assert!(config.context > 0 && config.embed_dim > 0, "bad dimensions");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let e = config.embed_dim;
        AttnLm {
            token_emb: Embedding::new(config.vocab_size, e, &mut rng),
            pos_emb: Embedding::new(config.context, e, &mut rng),
            wq: Linear::new(e, e, &mut rng),
            wk: Linear::new(e, e, &mut rng),
            wv: Linear::new(e, e, &mut rng),
            ffn1: Linear::new(e, config.hidden_dim, &mut rng),
            ffn2: Linear::new(config.hidden_dim, config.vocab_size, &mut rng),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AttnLmConfig {
        &self.config
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        let lin = |l: &Linear| l.weight.rows() * l.weight.cols() + l.bias.len();
        self.token_emb.table.rows() * self.token_emb.table.cols()
            + self.pos_emb.table.rows() * self.pos_emb.table.cols()
            + lin(&self.wq)
            + lin(&self.wk)
            + lin(&self.wv)
            + lin(&self.ffn1)
            + lin(&self.ffn2)
    }

    /// Clips `ids` to the trailing `context` tokens.
    fn clip<'a>(&self, ids: &'a [u32]) -> &'a [u32] {
        let c = self.config.context;
        if ids.len() > c {
            &ids[ids.len() - c..]
        } else {
            ids
        }
    }

    fn forward(&self, ids: &[u32]) -> (Matrix, Cache) {
        let ids = self.clip(ids);
        let t_len = ids.len();
        let e = self.config.embed_dim;
        let scale = 1.0 / (e as f32).sqrt();

        let mut x = Matrix::zeros(t_len, e);
        for (t, &id) in ids.iter().enumerate() {
            let tok = self.token_emb.table.row(id as usize);
            let pos = self.pos_emb.table.row(t);
            for (o, (&a, &b)) in x.row_mut(t).iter_mut().zip(tok.iter().zip(pos)) {
                *o = a + b;
            }
        }
        let q = self.wq.forward(&x);
        let k = self.wk.forward(&x);
        let v = self.wv.forward(&x);

        // Causal attention weights.
        let mut attn = Matrix::zeros(t_len, t_len);
        for t in 0..t_len {
            let mut scores = Vec::with_capacity(t + 1);
            for s in 0..=t {
                let dot: f32 = q.row(t).iter().zip(k.row(s)).map(|(a, b)| a * b).sum();
                scores.push(dot * scale);
            }
            let weights = softmax(&scores);
            for (s, w) in weights.into_iter().enumerate() {
                attn.set(t, s, w);
            }
        }

        // Context vectors.
        let ctx = attn.matmul(&v);
        let mut h_pre = self.ffn1.forward(&ctx);
        let h = tanh_forward(&mut h_pre);
        let logits = self.ffn2.forward(&h);
        (logits, Cache { x, q, k, v, attn, ctx, h })
    }

    /// Logits for the next token after `prefix` (uses the last position).
    pub fn logits(&self, prefix: &[u32]) -> Vec<f32> {
        if prefix.is_empty() {
            // No context at all: score from a lone padding token.
            let (logits, _) = self.forward(&[0]);
            return logits.row(0).to_vec();
        }
        let (logits, _) = self.forward(prefix);
        logits.row(logits.rows() - 1).to_vec()
    }

    /// Greedy next-token prediction.
    pub fn predict_next(&self, prefix: &[u32]) -> u32 {
        let l = self.logits(prefix);
        l.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i as u32).unwrap_or(0)
    }

    /// One training pass over `sequences` (one Adam step per sequence).
    /// Returns the mean next-token loss.
    pub fn train_epoch(&mut self, sequences: &[Vec<u32>], adam: &mut Adam) -> f32 {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            let loss = self.train_sequence(seq, adam);
            total += loss * (seq.len() - 1) as f32;
            count += seq.len() - 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }

    fn zero_grads(&mut self) {
        self.token_emb.zero_grad();
        self.pos_emb.zero_grad();
        for l in [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.ffn1, &mut self.ffn2] {
            l.zero_grad();
        }
    }

    /// Computes the loss and accumulates all parameter gradients for one
    /// sequence (positions `0..T-1` predict `1..T`). Exposed at crate level
    /// for the finite-difference tests.
    pub(crate) fn loss_and_backward(&mut self, seq: &[u32]) -> f32 {
        let seq = self.clip(seq);
        let t_len = seq.len() - 1;
        let inputs = &seq[..t_len];
        let targets = &seq[1..];
        let e = self.config.embed_dim;
        let scale = 1.0 / (e as f32).sqrt();

        let (logits, cache) = self.forward(inputs);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, targets);

        self.zero_grads();
        // FFN backward.
        let grad_h = self.ffn2.backward(&cache.h, &grad_logits);
        let grad_h_pre = tanh_backward(&grad_h, &cache.h);
        let grad_ctx = self.ffn1.backward(&cache.ctx, &grad_h_pre);

        // Attention backward.
        // ctx = attn · v  ⇒  d_attn = d_ctx · vᵀ ; d_v = attnᵀ · d_ctx
        let grad_attn_full = grad_ctx.matmul_t(&cache.v);
        let grad_v = cache.attn.t_matmul(&grad_ctx);
        // Softmax backward per causal row.
        let mut grad_scores = Matrix::zeros(t_len, t_len);
        for t in 0..t_len {
            let mut dot = 0.0f32;
            for s in 0..=t {
                dot += cache.attn.get(t, s) * grad_attn_full.get(t, s);
            }
            for s in 0..=t {
                let a = cache.attn.get(t, s);
                grad_scores.set(t, s, a * (grad_attn_full.get(t, s) - dot) * scale);
            }
        }
        // scores = q·kᵀ (scaled) ⇒ d_q = d_scores·k ; d_k = d_scoresᵀ·q
        let grad_q = grad_scores.matmul(&cache.k);
        let grad_k = grad_scores.t_matmul(&cache.q);

        // Projection backward; input gradients accumulate across q/k/v.
        let gx_q = self.wq.backward(&cache.x, &grad_q);
        let gx_k = self.wk.backward(&cache.x, &grad_k);
        let gx_v = self.wv.backward(&cache.x, &grad_v);

        // Embedding scatter: x_t = tokEmb[id_t] + posEmb[t].
        for (t, &id) in inputs.iter().enumerate() {
            let mut grad_row = vec![0.0f32; e];
            for (g, ((a, b), c)) in
                grad_row.iter_mut().zip(gx_q.row(t).iter().zip(gx_k.row(t)).zip(gx_v.row(t)))
            {
                *g = a + b + c;
            }
            let gm = Matrix::from_vec(1, e, grad_row);
            self.token_emb.backward_concat(&[id], &gm);
            self.pos_emb.backward_concat(&[t as u32], &gm);
        }
        loss
    }

    fn train_sequence(&mut self, seq: &[u32], adam: &mut Adam) -> f32 {
        let loss = self.loss_and_backward(seq);
        adam.begin_step();
        adam.update(self.token_emb.table.data_mut(), self.token_emb.grad.data());
        adam.update(self.pos_emb.table.data_mut(), self.pos_emb.grad.data());
        // Split borrows: take grads out as owned clones (small tensors).
        macro_rules! step {
            ($layer:expr) => {{
                let gw = $layer.grad_weight.data().to_vec();
                let gb = $layer.grad_bias.clone();
                adam.update($layer.weight.data_mut(), &gw);
                adam.update(&mut $layer.bias, &gb);
            }};
        }
        step!(self.wq);
        step!(self.wk);
        step!(self.wv);
        step!(self.ffn1);
        step!(self.ffn2);
        loss
    }

    /// Mean next-token NLL of `seq`.
    pub fn nll(&self, seq: &[u32]) -> f32 {
        let seq = self.clip(seq);
        if seq.len() < 2 {
            return 0.0;
        }
        let (logits, _) = self.forward(&seq[..seq.len() - 1]);
        let mut total = 0.0f32;
        for (t, &target) in seq[1..].iter().enumerate() {
            let probs = softmax(logits.row(t));
            total += -(probs[target as usize].max(1e-12)).ln();
        }
        total / (seq.len() - 1) as f32
    }

    /// Greedy autoregressive generation (no sampling — the attention model
    /// is used for representation comparisons, not production decoding).
    pub fn generate(&self, prefix: &[u32], max_tokens: usize, stop: Option<u32>) -> Vec<u32> {
        let mut seq = prefix.to_vec();
        let mut out = Vec::new();
        for _ in 0..max_tokens {
            let next = self.predict_next(&seq);
            if Some(next) == stop {
                break;
            }
            out.push(next);
            seq.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;

    fn tiny() -> AttnLm {
        AttnLm::new(AttnLmConfig {
            vocab_size: 9,
            context: 6,
            embed_dim: 6,
            hidden_dim: 10,
            seed: 10,
        })
    }

    #[test]
    fn attention_rows_are_causal_distributions() {
        let lm = tiny();
        let (_, cache) = lm.forward(&[1, 2, 3, 4]);
        for t in 0..4 {
            let row_sum: f32 = (0..4).map(|s| cache.attn.get(t, s)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {t} sums to {row_sum}");
            for s in (t + 1)..4 {
                assert_eq!(cache.attn.get(t, s), 0.0, "future leak at ({t},{s})");
            }
        }
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut lm = tiny();
        let seq = vec![1u32, 3, 2, 5, 4];
        let _ = lm.loss_and_backward(&seq);
        let eps = 1e-2;

        // Check a handful of parameters across every tensor family.
        let check = |lm: &AttnLm,
                     get: &dyn Fn(&AttnLm) -> f32,
                     set: &dyn Fn(&mut AttnLm, f32),
                     analytic: f32,
                     label: &str| {
            let base = get(lm);
            let mut plus = lm.clone();
            set(&mut plus, base + eps);
            let mut minus = lm.clone();
            set(&mut minus, base - eps);
            let numeric =
                (plus.loss_and_backward(&seq) - minus.loss_and_backward(&seq)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "{label}: analytic {analytic} vs numeric {numeric}"
            );
        };

        let g = lm.wq.grad_weight.get(1, 2);
        check(&lm, &|m| m.wq.weight.get(1, 2), &|m, v| m.wq.weight.set(1, 2, v), g, "Wq[1,2]");
        let g = lm.wk.grad_weight.get(0, 3);
        check(&lm, &|m| m.wk.weight.get(0, 3), &|m, v| m.wk.weight.set(0, 3, v), g, "Wk[0,3]");
        let g = lm.wv.grad_weight.get(2, 1);
        check(&lm, &|m| m.wv.weight.get(2, 1), &|m, v| m.wv.weight.set(2, 1, v), g, "Wv[2,1]");
        let g = lm.ffn1.grad_weight.get(4, 5);
        check(&lm, &|m| m.ffn1.weight.get(4, 5), &|m, v| m.ffn1.weight.set(4, 5, v), g, "W1[4,5]");
        let g = lm.token_emb.grad.get(3, 0);
        check(
            &lm,
            &|m| m.token_emb.table.get(3, 0),
            &|m, v| m.token_emb.table.set(3, 0, v),
            g,
            "tokEmb[3,0]",
        );
        let g = lm.pos_emb.grad.get(1, 2);
        check(
            &lm,
            &|m| m.pos_emb.table.get(1, 2),
            &|m, v| m.pos_emb.table.set(1, 2, v),
            g,
            "posEmb[1,2]",
        );
    }

    #[test]
    fn training_memorizes_a_short_sequence() {
        let mut lm = tiny();
        let mut adam = Adam::new(AdamConfig { lr: 0.03, ..AdamConfig::default() });
        let seq = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let before = lm.nll(&seq);
        for _ in 0..250 {
            lm.train_epoch(std::slice::from_ref(&seq), &mut adam);
        }
        let after = lm.nll(&seq);
        assert!(after < before * 0.3, "nll {before} → {after}");
        assert_eq!(lm.predict_next(&[1, 2, 3]), 4);
    }

    #[test]
    fn long_prefixes_are_clipped_to_context() {
        let lm = tiny();
        let long: Vec<u32> = (0..20).map(|i| (i % 9) as u32).collect();
        let l = lm.logits(&long);
        assert_eq!(l.len(), 9);
        // Clipped prefix equals the trailing window's logits.
        let window = &long[long.len() - 6..];
        assert_eq!(lm.logits(window), l);
    }

    #[test]
    fn generation_respects_stop_token() {
        let mut lm = tiny();
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
        for _ in 0..200 {
            lm.train_epoch(&[vec![3, 7, 2]], &mut adam);
        }
        let out = lm.generate(&[3], 10, Some(2));
        assert!(!out.contains(&2));
    }

    #[test]
    fn serde_round_trip() {
        let lm = tiny();
        let json = serde_json::to_string(&lm).unwrap();
        let back: AttnLm = serde_json::from_str(&json).unwrap();
        assert_eq!(back.logits(&[1, 2]), lm.logits(&[1, 2]));
        assert_eq!(back.parameter_count(), lm.parameter_count());
    }

    #[test]
    fn empty_prefix_is_handled() {
        let lm = tiny();
        assert_eq!(lm.logits(&[]).len(), 9);
    }
}

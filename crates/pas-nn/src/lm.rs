//! A feed-forward causal token language model.
//!
//! Architecture (Bengio et al., 2003): the previous `context` token
//! embeddings are concatenated, passed through one tanh hidden layer, and
//! projected to vocabulary logits. Small enough to fine-tune on a laptop in
//! seconds, expressive enough to memorize the phrase structure of the
//! synthetic complement corpus — which is the job the PAS complement
//! generator needs done.
//!
//! Token id 0 is reserved as left-padding for positions before the start of
//! a sequence (matching `pas_tokenizer::SpecialToken::Pad`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::layers::{tanh_backward, tanh_forward, Embedding, Linear};
use crate::loss::{softmax, softmax_cross_entropy};
use crate::matrix::Matrix;
use crate::optim::Adam;

/// Model hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LmConfig {
    /// Vocabulary size (token ids `0..vocab_size`).
    pub vocab_size: usize,
    /// Context window: number of previous tokens conditioning the next.
    pub context: usize,
    /// Token embedding dimension.
    pub embed_dim: usize,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig { vocab_size: 256, context: 4, embed_dim: 16, hidden_dim: 32, seed: 0x11 }
    }
}

/// Sampling parameters for [`FfnLm::generate`].
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Maximum number of tokens to emit.
    pub max_tokens: usize,
    /// Softmax temperature; `0.0` means greedy decoding.
    pub temperature: f32,
    /// Sample only among the `top_k` most likely tokens (0 = full vocab).
    pub top_k: usize,
    /// Stop when this token is produced (it is not included in the output).
    pub stop_token: Option<u32>,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig { max_tokens: 64, temperature: 0.0, top_k: 0, stop_token: Some(2), seed: 0 }
    }
}

/// The feed-forward causal LM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FfnLm {
    config: LmConfig,
    embedding: Embedding,
    hidden: Linear,
    output: Linear,
}

impl FfnLm {
    /// Creates a freshly initialized model.
    pub fn new(config: LmConfig) -> Self {
        assert!(config.vocab_size > 1, "vocab too small");
        assert!(config.context > 0, "context must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embedding = Embedding::new(config.vocab_size, config.embed_dim, &mut rng);
        let hidden = Linear::new(config.context * config.embed_dim, config.hidden_dim, &mut rng);
        let output = Linear::new(config.hidden_dim, config.vocab_size, &mut rng);
        FfnLm { config, embedding, hidden, output }
    }

    /// The model configuration.
    pub fn config(&self) -> &LmConfig {
        &self.config
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        self.embedding.table.rows() * self.embedding.table.cols()
            + self.hidden.weight.rows() * self.hidden.weight.cols()
            + self.hidden.bias.len()
            + self.output.weight.rows() * self.output.weight.cols()
            + self.output.bias.len()
    }

    /// Left-pads/truncates `prefix` into a fixed-width context window.
    fn window(&self, prefix: &[u32]) -> Vec<u32> {
        let c = self.config.context;
        let mut w = vec![0u32; c];
        let take = prefix.len().min(c);
        w[c - take..].copy_from_slice(&prefix[prefix.len() - take..]);
        w
    }

    /// Logits for the next token after `prefix`.
    pub fn logits(&self, prefix: &[u32]) -> Vec<f32> {
        let ids = self.window(prefix);
        let x = self.embedding.lookup_concat(&ids);
        let mut h = self.hidden.forward(&x);
        let _ = tanh_forward(&mut h);
        self.output.forward(&h).data().to_vec()
    }

    /// Greedy next-token prediction.
    pub fn predict_next(&self, prefix: &[u32]) -> u32 {
        let logits = self.logits(prefix);
        argmax(&logits) as u32
    }

    /// One training pass over `sequences`; one Adam step per sequence (all
    /// next-token windows of a sequence form one batch). Returns the mean
    /// window loss over the epoch.
    pub fn train_epoch(&mut self, sequences: &[Vec<u32>], adam: &mut Adam) -> f32 {
        let mut total = 0.0f32;
        let mut windows = 0usize;
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            let loss = self.train_sequence(seq, adam);
            total += loss * (seq.len() - 1) as f32;
            windows += seq.len() - 1;
        }
        if windows == 0 {
            0.0
        } else {
            total / windows as f32
        }
    }

    fn train_sequence(&mut self, seq: &[u32], adam: &mut Adam) -> f32 {
        let c = self.config.context;
        let batch = seq.len() - 1;
        // Forward: build the batch of context windows.
        let mut contexts: Vec<Vec<u32>> = Vec::with_capacity(batch);
        let mut targets: Vec<u32> = Vec::with_capacity(batch);
        for t in 1..seq.len() {
            contexts.push(self.window(&seq[..t]));
            targets.push(seq[t]);
        }
        let mut x = Matrix::zeros(batch, c * self.config.embed_dim);
        for (r, ctx) in contexts.iter().enumerate() {
            let row = self.embedding.lookup_concat(ctx);
            x.row_mut(r).copy_from_slice(row.data());
        }
        let mut h_pre = self.hidden.forward(&x);
        let h_act = tanh_forward(&mut h_pre);
        let logits = self.output.forward(&h_act);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, &targets);

        // Backward.
        self.embedding.zero_grad();
        self.hidden.zero_grad();
        self.output.zero_grad();
        let grad_h_act = self.output.backward(&h_act, &grad_logits);
        let grad_h_pre = tanh_backward(&grad_h_act, &h_act);
        let grad_x = self.hidden.backward(&x, &grad_h_pre);
        for (r, ctx) in contexts.iter().enumerate() {
            let row = Matrix::from_vec(1, grad_x.cols(), grad_x.row(r).to_vec());
            self.embedding.backward_concat(ctx, &row);
        }

        // Update.
        adam.begin_step();
        adam.update(self.embedding.table.data_mut(), self.embedding.grad.data());
        adam.update(self.hidden.weight.data_mut(), self.hidden.grad_weight.data());
        adam.update(&mut self.hidden.bias, &self.hidden.grad_bias.clone());
        adam.update(self.output.weight.data_mut(), self.output.grad_weight.data());
        adam.update(&mut self.output.bias, &self.output.grad_bias.clone());
        loss
    }

    /// Mean negative log-likelihood per token of `seq` (natural log).
    pub fn nll(&self, seq: &[u32]) -> f32 {
        if seq.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0f32;
        for t in 1..seq.len() {
            let probs = softmax(&self.logits(&seq[..t]));
            total += -(probs[seq[t] as usize].max(1e-12)).ln();
        }
        total / (seq.len() - 1) as f32
    }

    /// Perplexity of `seq` under the model.
    pub fn perplexity(&self, seq: &[u32]) -> f32 {
        self.nll(seq).exp()
    }

    /// Autoregressive generation continuing `prefix`. The returned tokens do
    /// not include the prefix or the stop token.
    pub fn generate(&self, prefix: &[u32], cfg: &GenerateConfig) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut seq: Vec<u32> = prefix.to_vec();
        let mut out = Vec::new();
        for _ in 0..cfg.max_tokens {
            let logits = self.logits(&seq);
            let next = if cfg.temperature <= 0.0 {
                argmax(&logits) as u32
            } else {
                sample(&logits, cfg.temperature, cfg.top_k, &mut rng)
            };
            if Some(next) == cfg.stop_token {
                break;
            }
            out.push(next);
            seq.push(next);
        }
        out
    }

    /// Serializes the model to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model is serializable")
    }

    /// Restores a model from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn sample(logits: &[f32], temperature: f32, top_k: usize, rng: &mut StdRng) -> u32 {
    let mut scaled: Vec<(usize, f32)> =
        logits.iter().enumerate().map(|(i, &x)| (i, x / temperature)).collect();
    if top_k > 0 && top_k < scaled.len() {
        scaled.sort_by(|a, b| b.1.total_cmp(&a.1));
        scaled.truncate(top_k);
    }
    let max = scaled.iter().map(|&(_, x)| x).fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f32> = scaled.iter().map(|&(_, x)| (x - max).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut target = rng.random::<f32>() * total;
    for (&(i, _), &w) in scaled.iter().zip(&weights) {
        if target < w {
            return i as u32;
        }
        target -= w;
    }
    scaled.last().map(|&(i, _)| i as u32).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;

    fn tiny() -> FfnLm {
        FfnLm::new(LmConfig { vocab_size: 8, context: 2, embed_dim: 4, hidden_dim: 8, seed: 3 })
    }

    #[test]
    fn logits_have_vocab_width() {
        let lm = tiny();
        assert_eq!(lm.logits(&[1, 2]).len(), 8);
        assert_eq!(lm.logits(&[]).len(), 8, "empty prefix uses pure padding");
    }

    #[test]
    fn training_reduces_loss() {
        let mut lm = tiny();
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
        let data = vec![vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5]];
        let first = lm.train_epoch(&data, &mut adam);
        let mut last = first;
        for _ in 0..60 {
            last = lm.train_epoch(&data, &mut adam);
        }
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn perplexity_drops_after_training() {
        let mut lm = tiny();
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
        let seq = vec![1u32, 2, 3, 4, 5, 6];
        let before = lm.perplexity(&seq);
        for _ in 0..80 {
            lm.train_epoch(std::slice::from_ref(&seq), &mut adam);
        }
        assert!(lm.perplexity(&seq) < before);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let lm = tiny();
        let cfg = GenerateConfig { max_tokens: 5, ..GenerateConfig::default() };
        assert_eq!(lm.generate(&[1], &cfg), lm.generate(&[1], &cfg));
    }

    #[test]
    fn sampling_respects_seed() {
        let lm = tiny();
        let cfg = GenerateConfig {
            max_tokens: 5,
            temperature: 1.0,
            top_k: 4,
            seed: 9,
            ..GenerateConfig::default()
        };
        assert_eq!(lm.generate(&[1], &cfg), lm.generate(&[1], &cfg));
        let other = GenerateConfig { seed: 10, ..cfg };
        // Different seeds usually differ; don't assert inequality strictly,
        // just that generation stays in-vocabulary.
        for t in lm.generate(&[1], &other) {
            assert!((t as usize) < 8);
        }
    }

    #[test]
    fn generation_stops_at_stop_token() {
        let mut lm = tiny();
        let mut adam = Adam::new(AdamConfig { lr: 0.1, ..AdamConfig::default() });
        // Teach: 5 → 6 → 2(stop).
        for _ in 0..120 {
            lm.train_epoch(&[vec![5, 6, 2]], &mut adam);
        }
        let cfg =
            GenerateConfig { max_tokens: 10, stop_token: Some(2), ..GenerateConfig::default() };
        let out = lm.generate(&[5], &cfg);
        assert!(!out.contains(&2));
        assert!(out.len() < 10, "should stop early, got {out:?}");
    }

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let lm = tiny();
        let back = FfnLm::from_json(&lm.to_json()).unwrap();
        assert_eq!(lm.logits(&[3, 4]), back.logits(&[3, 4]));
    }

    #[test]
    fn window_pads_left() {
        let lm = tiny();
        assert_eq!(lm.window(&[7]), vec![0, 7]);
        assert_eq!(lm.window(&[1, 2, 3]), vec![2, 3]);
        assert_eq!(lm.window(&[]), vec![0, 0]);
    }

    #[test]
    fn parameter_count_matches_shapes() {
        let lm = tiny();
        // 8*4 (embed) + 8*8+8 (hidden) + 8*8+8 (output)
        assert_eq!(lm.parameter_count(), 32 + 64 + 8 + 64 + 8);
    }
}

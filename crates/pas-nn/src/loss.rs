//! Loss functions: forward value plus gradient w.r.t. logits.

use crate::matrix::Matrix;

/// Numerically stable softmax over a logit slice.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy for a batch of logit rows and integer targets.
///
/// Returns `(mean_loss, grad_logits)` where the gradient is already divided
/// by the batch size.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[u32]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "batch size mismatch");
    let classes = logits.cols();
    let batch = logits.rows() as f32;
    let mut grad = Matrix::zeros(logits.rows(), classes);
    let mut total = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        let t = t as usize;
        assert!(t < classes, "target {t} out of range for {classes} classes");
        let probs = softmax(logits.row(r));
        total += -(probs[t].max(1e-12)).ln();
        let grow = grad.row_mut(r);
        for (c, &p) in probs.iter().enumerate() {
            grow[c] = (p - if c == t { 1.0 } else { 0.0 }) / batch;
        }
    }
    (total / batch, grad)
}

/// Sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Multi-label binary cross-entropy with logits.
///
/// `targets` is a `{0,1}` matrix the same shape as `logits`. Returns
/// `(mean_loss_per_element, grad_logits)`.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!((logits.rows(), logits.cols()), (targets.rows(), targets.cols()), "shape mismatch");
    let n = (logits.rows() * logits.cols()) as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut total = 0.0f32;
    for (i, (&x, &t)) in logits.data().iter().zip(targets.data()).enumerate() {
        // Stable formulation: max(x,0) − x·t + ln(1 + e^{−|x|})
        total += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        grad.data_mut()[i] = (sigmoid(x) - t) / n;
    }
    (total / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[101.0, 102.0]);
        assert!((a[0] - b[0]).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Matrix::from_vec(1, 3, vec![100.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.2, -0.4, 0.9]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let mut lm = logits.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let (loss_p, _) = softmax_cross_entropy(&lp, &[1]);
            let (loss_m, _) = softmax_cross_entropy(&lm, &[1]);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (grad.get(0, c) - numeric).abs() < 1e-3,
                "c={c}: analytic {} vs numeric {numeric}",
                grad.get(0, c)
            );
        }
    }

    #[test]
    fn bce_gradient_finite_difference() {
        let logits = Matrix::from_vec(1, 2, vec![0.7, -1.1]);
        let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for c in 0..2 {
            let mut lp = logits.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let mut lm = logits.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let (loss_p, _) = bce_with_logits(&lp, &targets);
            let (loss_m, _) = bce_with_logits(&lm, &targets);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((grad.get(0, c) - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_confident_correct_is_small() {
        let logits = Matrix::from_vec(1, 2, vec![10.0, -10.0]);
        let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, _) = bce_with_logits(&logits, &targets);
        assert!(loss < 1e-3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn target_range_checked() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}

//! Trainable text classifiers over dense (hashed) feature vectors.
//!
//! Two models back the PAS pipeline:
//!
//! - [`SoftmaxClassifier`] — single-label, used for the 14-way prompt
//!   category classifier of §3.1 (the paper fine-tunes BaiChuan-13B on 60k
//!   labeled examples; we train this on the synthetic labeled set).
//! - [`MultiLabelClassifier`] — independent sigmoid per label, used as the
//!   PAS aspect model: given a prompt's features, which complement aspects
//!   should the complementary prompt supply?
//!
//! Both are single linear layers trained with Adam; featurization lives in
//! `pas-data` so this crate stays purely numeric.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::layers::Linear;
use crate::loss::{bce_with_logits, sigmoid, softmax, softmax_cross_entropy};
use crate::matrix::Matrix;
use crate::optim::{Adam, AdamConfig, AdamState};

/// Shared training parameters.
#[derive(Debug, Clone)]
pub struct TrainParams {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams { epochs: 12, batch_size: 32, lr: 0.05, seed: 0xc1a55 }
    }
}

fn batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order.chunks(batch_size.max(1)).map(|c| c.to_vec()).collect()
}

fn stack_rows(features: &[Vec<f32>], idxs: &[usize], dim: usize) -> Matrix {
    let mut x = Matrix::zeros(idxs.len(), dim);
    for (r, &i) in idxs.iter().enumerate() {
        x.row_mut(r).copy_from_slice(&features[i]);
    }
    x
}

/// Single-label linear classifier with softmax output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftmaxClassifier {
    layer: Linear,
    classes: usize,
}

impl SoftmaxClassifier {
    /// Creates a classifier for `feature_dim`-dimensional inputs and
    /// `classes` output classes.
    pub fn new(feature_dim: usize, classes: usize, seed: u64) -> Self {
        assert!(classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(seed);
        SoftmaxClassifier { layer: Linear::new(feature_dim, classes, &mut rng), classes }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Input feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.layer.in_dim()
    }

    /// Trains on `(features, label)` pairs; returns the final-epoch mean loss.
    pub fn train(&mut self, features: &[Vec<f32>], labels: &[u32], params: &TrainParams) -> f32 {
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        if features.is_empty() {
            return 0.0;
        }
        let dim = self.feature_dim();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut adam = Adam::new(AdamConfig { lr: params.lr, ..AdamConfig::default() });
        let mut epoch_loss = 0.0;
        for _ in 0..params.epochs {
            let mut total = 0.0f32;
            let mut count = 0usize;
            for batch in batches(features.len(), params.batch_size, &mut rng) {
                let x = stack_rows(features, &batch, dim);
                let y: Vec<u32> = batch.iter().map(|&i| labels[i]).collect();
                let logits = self.layer.forward(&x);
                let (loss, grad) = softmax_cross_entropy(&logits, &y);
                self.layer.zero_grad();
                let _ = self.layer.backward(&x, &grad);
                adam.begin_step();
                adam.update(self.layer.weight.data_mut(), self.layer.grad_weight.data());
                adam.update(&mut self.layer.bias, &self.layer.grad_bias.clone());
                total += loss * batch.len() as f32;
                count += batch.len();
            }
            epoch_loss = total / count as f32;
        }
        epoch_loss
    }

    /// Class probabilities for one feature vector.
    pub fn probabilities(&self, features: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        softmax(self.layer.forward(&x).row(0))
    }

    /// Most likely class.
    pub fn predict(&self, features: &[f32]) -> u32 {
        let p = self.probabilities(features);
        p.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i as u32).unwrap_or(0)
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, features: &[Vec<f32>], labels: &[u32]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let hits = features.iter().zip(labels).filter(|(f, &l)| self.predict(f) == l).count();
        hits as f64 / features.len() as f64
    }
}

/// A completed-epoch snapshot of an in-progress [`MultiLabelClassifier`]
/// training run: model weights, optimizer moments, and the shuffling RNG
/// state. Feeding it back into
/// [`MultiLabelClassifier::train_resumable`] continues training
/// bit-identically to a run that was never interrupted — every remaining
/// shuffle, gradient, and Adam update replays exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SftCheckpoint {
    /// Epochs fully completed.
    pub epochs_done: usize,
    /// Model weights after `epochs_done` epochs.
    pub model: MultiLabelClassifier,
    /// Optimizer state after `epochs_done` epochs.
    pub adam: AdamState,
    /// Shuffling-RNG state after `epochs_done` epochs.
    pub rng: [u64; 4],
    /// Mean loss of the last completed epoch.
    pub last_epoch_loss: f32,
}

/// Multi-label linear classifier with independent sigmoids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLabelClassifier {
    layer: Linear,
    labels: usize,
}

impl MultiLabelClassifier {
    /// Creates a classifier for `feature_dim` inputs and `labels` outputs.
    pub fn new(feature_dim: usize, labels: usize, seed: u64) -> Self {
        assert!(labels >= 1, "need at least one label");
        let mut rng = StdRng::seed_from_u64(seed);
        MultiLabelClassifier { layer: Linear::new(feature_dim, labels, &mut rng), labels }
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels
    }

    /// Input feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.layer.in_dim()
    }

    /// Trains on `(features, target-bitmask-rows)`; `targets[i]` has one 0/1
    /// entry per label. Returns the final-epoch mean loss.
    pub fn train(
        &mut self,
        features: &[Vec<f32>],
        targets: &[Vec<f32>],
        params: &TrainParams,
    ) -> f32 {
        self.train_resumable(features, targets, params, None, None)
    }

    /// [`MultiLabelClassifier::train`] with checkpoint/resume.
    ///
    /// With `resume`, training restarts *after* the checkpoint's completed
    /// epoch: weights, Adam moments, and the shuffle RNG are restored, so
    /// the remaining epochs replay bit-identically to an uninterrupted run.
    /// `on_epoch` (if given) receives a [`SftCheckpoint`] after every
    /// completed epoch — commit it to a journal to make the run killable.
    /// The fresh-start path consumes RNG and optimizer state in exactly the
    /// order [`MultiLabelClassifier::train`] always has, so existing
    /// seed-pinned results are unchanged.
    pub fn train_resumable(
        &mut self,
        features: &[Vec<f32>],
        targets: &[Vec<f32>],
        params: &TrainParams,
        resume: Option<SftCheckpoint>,
        mut on_epoch: Option<&mut dyn FnMut(&SftCheckpoint)>,
    ) -> f32 {
        assert_eq!(features.len(), targets.len(), "features/targets length mismatch");
        if features.is_empty() {
            return 0.0;
        }
        let adam_config = AdamConfig { lr: params.lr, ..AdamConfig::default() };
        let (mut rng, mut adam, start_epoch, mut epoch_loss) = match resume {
            None => (StdRng::seed_from_u64(params.seed), Adam::new(adam_config), 0, 0.0),
            Some(cp) => {
                assert_eq!(
                    cp.model.feature_dim(),
                    self.feature_dim(),
                    "checkpoint feature_dim mismatch"
                );
                assert_eq!(cp.model.label_count(), self.labels, "checkpoint label count mismatch");
                assert!(
                    cp.epochs_done <= params.epochs,
                    "checkpoint has more epochs ({}) than requested ({})",
                    cp.epochs_done,
                    params.epochs
                );
                *self = cp.model;
                (
                    StdRng::from_state(cp.rng),
                    Adam::restore(adam_config, cp.adam),
                    cp.epochs_done,
                    cp.last_epoch_loss,
                )
            }
        };
        let dim = self.feature_dim();
        for epoch in start_epoch..params.epochs {
            let mut total = 0.0f32;
            let mut count = 0usize;
            for batch in batches(features.len(), params.batch_size, &mut rng) {
                let x = stack_rows(features, &batch, dim);
                let mut y = Matrix::zeros(batch.len(), self.labels);
                for (r, &i) in batch.iter().enumerate() {
                    y.row_mut(r).copy_from_slice(&targets[i]);
                }
                let logits = self.layer.forward(&x);
                let (loss, grad) = bce_with_logits(&logits, &y);
                self.layer.zero_grad();
                let _ = self.layer.backward(&x, &grad);
                adam.begin_step();
                adam.update(self.layer.weight.data_mut(), self.layer.grad_weight.data());
                adam.update(&mut self.layer.bias, &self.layer.grad_bias.clone());
                total += loss * batch.len() as f32;
                count += batch.len();
            }
            epoch_loss = total / count as f32;
            if let Some(cb) = on_epoch.as_deref_mut() {
                cb(&SftCheckpoint {
                    epochs_done: epoch + 1,
                    model: self.clone(),
                    adam: adam.state(),
                    rng: rng.state(),
                    last_epoch_loss: epoch_loss,
                });
            }
        }
        epoch_loss
    }

    /// Per-label probabilities for one feature vector.
    pub fn predict_probs(&self, features: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        self.layer.forward(&x).row(0).iter().map(|&l| sigmoid(l)).collect()
    }

    /// Labels whose probability exceeds `threshold`.
    pub fn predict_labels(&self, features: &[f32], threshold: f32) -> Vec<usize> {
        self.predict_probs(features)
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| (p >= threshold).then_some(i))
            .collect()
    }

    /// Micro-averaged F1 over a labeled set at `threshold`.
    pub fn micro_f1(&self, features: &[Vec<f32>], targets: &[Vec<f32>], threshold: f32) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
        for (f, t) in features.iter().zip(targets) {
            let probs = self.predict_probs(f);
            for (&p, &truth) in probs.iter().zip(t) {
                let pred = p >= threshold;
                let actual = truth >= 0.5;
                match (pred, actual) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    (false, false) => {}
                }
            }
        }
        if tp == 0 {
            return 0.0;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / (tp + fn_) as f64;
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Linearly separable 3-class toy set: class = argmax coordinate.
    fn toy_multiclass(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let v: Vec<f32> = (0..3).map(|_| rng.random::<f32>()).collect();
            let label = v
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as u32)
                .unwrap();
            xs.push(v);
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn softmax_classifier_learns_separable_data() {
        let (xs, ys) = toy_multiclass(300, 5);
        let mut clf = SoftmaxClassifier::new(3, 3, 1);
        clf.train(&xs, &ys, &TrainParams { epochs: 40, ..TrainParams::default() });
        assert!(clf.accuracy(&xs, &ys) > 0.9, "accuracy {}", clf.accuracy(&xs, &ys));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let clf = SoftmaxClassifier::new(4, 3, 2);
        let p = clf.probabilities(&[0.1, 0.2, 0.3, 0.4]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn multilabel_learns_identity_mapping() {
        // Each label fires iff the matching feature is high.
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for _ in 0..400 {
            let v: Vec<f32> =
                (0..4).map(|_| if rng.random::<f32>() > 0.5 { 1.0 } else { 0.0 }).collect();
            ts.push(v.clone());
            xs.push(v);
        }
        let mut clf = MultiLabelClassifier::new(4, 4, 3);
        clf.train(&xs, &ts, &TrainParams { epochs: 30, ..TrainParams::default() });
        let f1 = clf.micro_f1(&xs, &ts, 0.5);
        assert!(f1 > 0.95, "micro-F1 {f1}");
    }

    /// Toy multi-label set shared by the resume tests.
    fn toy_multilabel(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for _ in 0..n {
            let v: Vec<f32> =
                (0..4).map(|_| if rng.random::<f32>() > 0.5 { 1.0 } else { 0.0 }).collect();
            ts.push(v.clone());
            xs.push(v);
        }
        (xs, ts)
    }

    #[test]
    fn resumable_matches_plain_train_bit_for_bit() {
        let (xs, ts) = toy_multilabel(200, 31);
        let params = TrainParams { epochs: 10, ..TrainParams::default() };
        let mut plain = MultiLabelClassifier::new(4, 4, 5);
        let plain_loss = plain.train(&xs, &ts, &params);
        let mut observed = MultiLabelClassifier::new(4, 4, 5);
        let mut checkpoints: Vec<SftCheckpoint> = Vec::new();
        let mut record = |cp: &SftCheckpoint| checkpoints.push(cp.clone());
        let observed_loss = observed.train_resumable(&xs, &ts, &params, None, Some(&mut record));
        assert_eq!(plain_loss.to_bits(), observed_loss.to_bits());
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&observed).unwrap(),
            "checkpoint callback must not perturb training"
        );
        assert_eq!(checkpoints.len(), params.epochs);
        assert_eq!(checkpoints.last().unwrap().epochs_done, params.epochs);
    }

    #[test]
    fn resuming_mid_run_reproduces_the_uninterrupted_model() {
        let (xs, ts) = toy_multilabel(200, 32);
        let params = TrainParams { epochs: 12, ..TrainParams::default() };
        let mut uninterrupted = MultiLabelClassifier::new(4, 4, 6);
        let full_loss = uninterrupted.train(&xs, &ts, &params);
        // "Kill" the run after epoch 5: keep only that checkpoint.
        let mut killed = MultiLabelClassifier::new(4, 4, 6);
        let mut at_five: Option<SftCheckpoint> = None;
        let mut grab = |cp: &SftCheckpoint| {
            if cp.epochs_done == 5 {
                at_five = Some(cp.clone());
            }
        };
        killed.train_resumable(&xs, &ts, &params, None, Some(&mut grab));
        let checkpoint = at_five.expect("epoch 5 checkpoint");
        // Round-trip through JSON, as a journal would store it.
        let thawed: SftCheckpoint =
            serde_json::from_str(&serde_json::to_string(&checkpoint).unwrap()).unwrap();
        let mut resumed = MultiLabelClassifier::new(4, 4, 6);
        let resumed_loss = resumed.train_resumable(&xs, &ts, &params, Some(thawed), None);
        assert_eq!(full_loss.to_bits(), resumed_loss.to_bits());
        assert_eq!(
            serde_json::to_string(&uninterrupted).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "resumed weights must be bit-identical"
        );
    }

    #[test]
    fn resume_from_final_epoch_is_a_noop() {
        let (xs, ts) = toy_multilabel(100, 33);
        let params = TrainParams { epochs: 6, ..TrainParams::default() };
        let mut trained = MultiLabelClassifier::new(4, 4, 7);
        let mut last: Option<SftCheckpoint> = None;
        let mut grab = |cp: &SftCheckpoint| last = Some(cp.clone());
        let loss = trained.train_resumable(&xs, &ts, &params, None, Some(&mut grab));
        let cp = last.unwrap();
        let mut resumed = MultiLabelClassifier::new(4, 4, 7);
        let resumed_loss = resumed.train_resumable(&xs, &ts, &params, Some(cp), None);
        assert_eq!(loss.to_bits(), resumed_loss.to_bits());
        assert_eq!(
            serde_json::to_string(&trained).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
    }

    #[test]
    fn predict_labels_thresholds() {
        let clf = MultiLabelClassifier::new(2, 3, 0);
        let labels = clf.predict_labels(&[0.0, 0.0], 2.0); // impossible threshold
        assert!(labels.is_empty());
        let all = clf.predict_labels(&[0.0, 0.0], 0.0);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn training_on_empty_set_is_noop() {
        let mut clf = SoftmaxClassifier::new(2, 2, 0);
        let loss = clf.train(&[], &[], &TrainParams::default());
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn noisier_labels_reduce_accuracy() {
        // The property the PAS ablation rests on: label noise in training
        // data degrades the learned model.
        let (xs, ys) = toy_multiclass(300, 21);
        let mut noisy = ys.clone();
        let mut rng = StdRng::seed_from_u64(99);
        for y in noisy.iter_mut() {
            if rng.random::<f32>() < 0.35 {
                *y = rng.random_range(0..3);
            }
        }
        let params = TrainParams { epochs: 40, ..TrainParams::default() };
        let mut clean_clf = SoftmaxClassifier::new(3, 3, 1);
        clean_clf.train(&xs, &ys, &params);
        let mut noisy_clf = SoftmaxClassifier::new(3, 3, 1);
        noisy_clf.train(&xs, &noisy, &params);
        let (vx, vy) = toy_multiclass(200, 77);
        assert!(clean_clf.accuracy(&vx, &vy) > noisy_clf.accuracy(&vx, &vy));
    }
}

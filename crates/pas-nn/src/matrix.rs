//! Row-major `f32` matrices.
//!
//! Only the operations the models need are implemented. The arithmetic
//! lives in [`pas_kernels`]: `matmul` is the blocked/packed
//! [`pas_kernels::gemm`] (bit-identical to the naive i-k-j loop — blocking
//! reorders memory traffic, not the per-element additions), `t_matmul`
//! accumulates through [`pas_kernels::axpy`] rows, and `matmul_t` computes
//! each output row with one [`pas_kernels::dot_block`] panel probe (every
//! element still the 8-lane striped dot, bit for bit). Shapes are asserted
//! aggressively — a shape mismatch is always a bug.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length does not match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — (m×k)·(k×n) → m×n, via the blocked/packed
    /// [`pas_kernels::gemm`] (attention forward and the classifier/LM
    /// forward passes run on cache-resident tiles).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        pas_kernels::gemm(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `selfᵀ · other` — (m×k)ᵀ·(m×n) → k×n. Used for weight gradients.
    /// Row-accumulation via [`pas_kernels::axpy`]; per output element the
    /// additions run in increasing-`i` order, as before.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let brow = &other.data[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate() {
                pas_kernels::axpy(a, brow, &mut out.data[p * n..(p + 1) * n]);
            }
        }
        out
    }

    /// `self · otherᵀ` — (m×k)·(n×k)ᵀ → m×n. Used for input gradients.
    /// `other`'s row-major buffer *is* a packed panel of `n` contiguous
    /// rows, so each output row is one [`pas_kernels::dot_block`] call —
    /// the SIMD backends keep several dot accumulator chains in flight per
    /// panel, with every row still bit-identical to the striped
    /// [`pas_kernels::dot`] it replaces.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        if n == 0 {
            return out;
        }
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            pas_kernels::dot_block(arow, &other.data, &mut out.data[i * n..(i + 1) * n]);
        }
        out
    }

    /// Adds `v` to every row in place (bias broadcast).
    pub fn add_row_in_place(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            pas_kernels::add(self.row_mut(r), v);
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            pas_kernels::add(&mut out, self.row(r));
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise product in place: `self[i] *= other[i]`.
    pub fn mul_in_place(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "hadamard shape mismatch");
        pas_kernels::mul(&mut self.data, &other.data);
    }

    /// Frobenius norm (for gradient-clipping and tests), via the striped
    /// [`pas_kernels::sum_sq`].
    pub fn frobenius_norm(&self) -> f32 {
        pas_kernels::sum_sq(&self.data).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        // aᵀ·a computed two ways.
        let m = a();
        let direct = m.t_matmul(&m);
        assert_eq!(direct.rows(), 3);
        assert_eq!(direct.cols(), 3);
        // spot check: (aᵀa)[0][0] = 1*1 + 4*4 = 17
        assert_eq!(direct.get(0, 0), 17.0);
        assert_eq!(direct.get(2, 1), 3.0 * 2.0 + 6.0 * 5.0);
    }

    #[test]
    fn matmul_t_matches_manual() {
        // a (2×3) · a (2×3)ᵀ → 2×2 gram matrix.
        let g = a().matmul_t(&a());
        assert_eq!(g.get(0, 0), 14.0);
        assert_eq!(g.get(0, 1), 32.0);
        assert_eq!(g.get(1, 1), 77.0);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_in_place(&[1.0, 2.0, 3.0]);
        assert_eq!(m.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn map_and_hadamard() {
        let m = a().map(|x| x * 2.0);
        assert_eq!(m.get(1, 2), 12.0);
        let mut h = a();
        h.mul_in_place(&a());
        assert_eq!(h.get(0, 1), 4.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_bit_matches_naive_ikj_at_model_shapes() {
        // The blocked gemm must not change the math — per-element additions
        // stay in increasing-p order, so results equal the naive loop
        // bit-for-bit at the shapes the LM and classifier actually use.
        for &(m, k, n) in &[(32, 64, 32), (32, 32, 256), (16, 16, 16), (5, 7, 3)] {
            let a = Matrix::from_vec(
                m,
                k,
                (0..m * k).map(|i| (i as f32 * 0.23).sin()).collect::<Vec<_>>(),
            );
            let b = Matrix::from_vec(
                k,
                n,
                (0..k * n).map(|i| (i as f32 * 0.71).cos()).collect::<Vec<_>>(),
            );
            let fast = a.matmul(&b);
            let mut slow = vec![0.0f32; m * n];
            pas_kernels::reference::gemm(m, k, n, a.data(), b.data(), &mut slow);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(fast.data()), bits(&slow), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let _ = a().matmul(&a());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}

//! Trainable layers with manual backward passes.
//!
//! Each layer owns its parameters and accumulates gradients; an optimizer
//! from [`crate::optim`] later consumes `(param, grad)` pairs. Initialization
//! is seeded Xavier-uniform so training runs are reproducible.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0f32 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.random::<f32>() * 2.0 * bound - bound).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Fully connected layer `y = x·W + b` with `W: in×out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub weight: Matrix,
    /// Bias vector, length `out_dim`.
    pub bias: Vec<f32>,
    /// Accumulated weight gradient.
    pub grad_weight: Matrix,
    /// Accumulated bias gradient.
    pub grad_bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights from `rng`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: xavier(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass over a batch (`batch × in_dim` → `batch × out_dim`).
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.weight);
        out.add_row_in_place(&self.bias);
        out
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the input. `input` must be the forward-pass input.
    pub fn backward(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix {
        // dW = xᵀ · dy ; db = Σ rows dy ; dx = dy · Wᵀ
        let gw = input.t_matmul(grad_out);
        for (a, b) in self.grad_weight.data_mut().iter_mut().zip(gw.data()) {
            *a += b;
        }
        for (a, b) in self.grad_bias.iter_mut().zip(grad_out.col_sums()) {
            *a += b;
        }
        grad_out.matmul_t(&self.weight)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.data_mut().fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

/// Token embedding table, `vocab × dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// The table, one row per token id.
    pub table: Matrix,
    /// Accumulated gradient (dense; vocabularies here are small).
    pub grad: Matrix,
}

impl Embedding {
    /// Creates a table with Xavier-uniform rows from `rng`.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding { table: xavier(vocab, dim, rng), grad: Matrix::zeros(vocab, dim) }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Looks up and concatenates `ids` into one row vector
    /// (`1 × ids.len()·dim`). Out-of-range ids panic.
    pub fn lookup_concat(&self, ids: &[u32]) -> Matrix {
        let dim = self.dim();
        let mut data = Vec::with_capacity(ids.len() * dim);
        for &id in ids {
            data.extend_from_slice(self.table.row(id as usize));
        }
        Matrix::from_vec(1, ids.len() * dim, data)
    }

    /// Scatters the gradient of a concatenated lookup back into the table
    /// gradient. `grad_out` must be `1 × ids.len()·dim`.
    pub fn backward_concat(&mut self, ids: &[u32], grad_out: &Matrix) {
        let dim = self.dim();
        assert_eq!(grad_out.cols(), ids.len() * dim, "gradient width mismatch");
        for (slot, &id) in ids.iter().enumerate() {
            let src = &grad_out.data()[slot * dim..(slot + 1) * dim];
            let dst = self.grad.row_mut(id as usize);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// In-place tanh; returns a copy of the activations for the backward pass.
pub fn tanh_forward(m: &mut Matrix) -> Matrix {
    for x in m.data_mut() {
        *x = x.tanh();
    }
    m.clone()
}

/// Backward through tanh: `dx = dy ⊙ (1 − a²)` where `a` is the activation.
pub fn tanh_backward(grad_out: &Matrix, activations: &Matrix) -> Matrix {
    let mut g = grad_out.clone();
    let deriv = activations.map(|a| 1.0 - a * a);
    g.mul_in_place(&deriv);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut r = rng();
        let mut l = Linear::new(3, 2, &mut r);
        l.bias = vec![1.0, -1.0];
        let x = Matrix::zeros(4, 3);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn linear_gradient_check_finite_difference() {
        let mut r = rng();
        let mut l = Linear::new(3, 2, &mut r);
        let x = Matrix::from_vec(1, 3, vec![0.5, -0.3, 0.8]);
        // Loss = sum of outputs; dL/dy = ones.
        let ones = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        l.zero_grad();
        let _ = l.backward(&x, &ones);
        let analytic = l.grad_weight.get(1, 0);
        // Finite difference on weight (1,0).
        let eps = 1e-3;
        let loss = |l: &Linear| l.forward(&x).data().iter().sum::<f32>();
        let mut lp = l.clone();
        lp.weight.set(1, 0, lp.weight.get(1, 0) + eps);
        let mut lm = l.clone();
        lm.weight.set(1, 0, lm.weight.get(1, 0) - eps);
        let numeric = (loss(&lp) - loss(&lm)) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-2, "analytic {analytic} vs numeric {numeric}");
    }

    #[test]
    fn linear_input_gradient_check() {
        let mut r = rng();
        let mut l = Linear::new(2, 2, &mut r);
        let x = Matrix::from_vec(1, 2, vec![0.4, -0.6]);
        let ones = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dx = l.backward(&x, &ones);
        let eps = 1e-3;
        let loss = |x: &Matrix| l.forward(x).data().iter().sum::<f32>();
        let mut xp = x.clone();
        xp.set(0, 1, xp.get(0, 1) + eps);
        let mut xm = x.clone();
        xm.set(0, 1, xm.get(0, 1) - eps);
        let numeric = (loss(&xp) - loss(&xm)) / (2.0 * eps);
        assert!((dx.get(0, 1) - numeric).abs() < 1e-2);
    }

    #[test]
    fn embedding_lookup_concat_shape() {
        let mut r = rng();
        let e = Embedding::new(10, 4, &mut r);
        let m = e.lookup_concat(&[1, 5, 1]);
        assert_eq!((m.rows(), m.cols()), (1, 12));
        assert_eq!(&m.data()[0..4], &m.data()[8..12], "same id, same slice");
    }

    #[test]
    fn embedding_backward_accumulates_per_id() {
        let mut r = rng();
        let mut e = Embedding::new(5, 2, &mut r);
        let grad = Matrix::from_vec(1, 4, vec![1.0, 1.0, 2.0, 2.0]);
        e.backward_concat(&[3, 3], &grad);
        assert_eq!(e.grad.row(3), &[3.0, 3.0]);
        assert_eq!(e.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn tanh_round_trip_gradient() {
        let mut m = Matrix::from_vec(1, 2, vec![0.3, -1.2]);
        let act = tanh_forward(&mut m);
        let g = tanh_backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]), &act);
        // d tanh(0.3)/dx = 1 - tanh(0.3)^2
        let expect = 1.0 - (0.3f32).tanh().powi(2);
        assert!((g.get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn zero_grad_clears() {
        let mut r = rng();
        let mut l = Linear::new(2, 2, &mut r);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let _ = l.backward(&x, &g);
        assert!(l.grad_weight.frobenius_norm() > 0.0);
        l.zero_grad();
        assert_eq!(l.grad_weight.frobenius_norm(), 0.0);
    }

    #[test]
    fn seeded_init_is_reproducible() {
        let a = Linear::new(4, 3, &mut StdRng::seed_from_u64(9));
        let b = Linear::new(4, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.weight, b.weight);
    }
}

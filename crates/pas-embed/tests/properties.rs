//! Property-based tests for the embedding layer.

use proptest::prelude::*;

use pas_embed::{cosine, feature_bag, l2_norm, Embedder, EmbeddingCache, IdfModel, NgramEmbedder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn embeddings_are_unit_or_zero(s in ".{0,120}") {
        let e = NgramEmbedder::default();
        let v = e.embed(&s);
        let n = l2_norm(&v);
        prop_assert!(n.abs() < 1e-5 || (n - 1.0).abs() < 1e-4, "norm {n}");
    }

    #[test]
    fn cosine_is_symmetric_and_bounded(a in ".{0,80}", b in ".{0,80}") {
        let e = NgramEmbedder::default();
        let va = e.embed(&a);
        let vb = e.embed(&b);
        let ab = cosine(&va, &vb);
        prop_assert!((-1.0001..=1.0001).contains(&ab));
        prop_assert!((ab - cosine(&vb, &va)).abs() < 1e-6);
    }

    #[test]
    fn self_similarity_is_one_for_nonempty(s in "[a-z]{3,20}( [a-z]{3,20}){1,5}") {
        let e = NgramEmbedder::default();
        let v = e.embed(&s);
        prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn surface_variants_stay_close(s in "[a-z]{3,12}( [a-z]{3,12}){2,6}") {
        let e = NgramEmbedder::default();
        let variant = format!("{}!!", s.to_uppercase());
        let sim = cosine(&e.embed(&s), &e.embed(&variant));
        prop_assert!(sim > 0.99, "case/punct variant similarity {sim}");
    }

    #[test]
    fn feature_bags_are_canonical(s in ".{0,120}") {
        let bag = feature_bag(&s);
        let hashes: Vec<u64> = bag.entries().iter().map(|e| e.0).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(hashes, sorted);
        prop_assert!(bag.entries().iter().all(|&(_, w)| w > 0.0));
    }

    // Cache accounting invariants (DESIGN.md §9): for any request
    // sequence, every lookup is exactly one hit or one miss, a bounded
    // cache never exceeds its capacity, and — because the inner embedder
    // is pure — a bounded cache returns byte-identical embeddings to the
    // unbounded one no matter what it evicted along the way.
    #[test]
    fn cache_accounting_invariants(
        // Each draw encodes (key = r % 12, as_batch = r >= 12).
        requests in prop::collection::vec(0usize..24, 1..80),
        capacity in 1usize..6,
    ) {
        let bounded = EmbeddingCache::bounded(NgramEmbedder::default(), capacity);
        let unbounded = EmbeddingCache::new(NgramEmbedder::default());
        let mut issued = 0u64;
        // Interleave single lookups and mini-batches, like serve traffic.
        for r in &requests {
            let (key, as_batch) = (r % 12, *r >= 12);
            let text = format!("prompt {key}");
            if as_batch {
                let pair = format!("prompt {}", (key + 1) % 12);
                let got = bounded.embed_batch(&[&text, &pair]);
                let want = unbounded.embed_batch(&[&text, &pair]);
                prop_assert_eq!(got, want);
                issued += 2;
            } else {
                let got = bounded.embed(&text);
                let want = unbounded.embed(&text);
                prop_assert_eq!(got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                                "bounded and unbounded caches must agree bit-for-bit");
                issued += 1;
            }
            prop_assert!(bounded.len() <= capacity, "len {} > capacity {capacity}", bounded.len());
            prop_assert_eq!(bounded.hits() + bounded.misses(), issued);
            prop_assert_eq!(unbounded.hits() + unbounded.misses(), issued);
            prop_assert_eq!(unbounded.evictions(), 0);
        }
        // Every eviction was a real entry that left the map.
        prop_assert_eq!(bounded.misses(), bounded.evictions() + bounded.len() as u64);
    }

    #[test]
    fn idf_is_positive_and_monotone(docs in prop::collection::vec("[a-z]{2,8}( [a-z]{2,8}){0,5}", 1..10)) {
        let bags: Vec<_> = docs.iter().map(|d| feature_bag(d)).collect();
        let idf = IdfModel::fit(bags.iter());
        for bag in &bags {
            for &(h, _) in bag.entries() {
                prop_assert!(idf.idf(h) > 0.0);
                // A seen feature is never rarer than an unseen one.
                prop_assert!(idf.idf(h) <= idf.idf(0xdead_beef_dead_beef) + 1e-6);
            }
        }
    }
}

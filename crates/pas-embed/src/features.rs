//! Hashed lexical feature extraction.
//!
//! A text becomes a sparse bag of 64-bit feature hashes with counts: one
//! feature per word and one per character trigram of the normalized text.
//! Words carry more weight than character grams (they are more
//! discriminative); character grams provide robustness to small edits and
//! typos, which is what makes near-duplicates land close together.

use pas_text::hash::{fx_combine, fx_hash_str};
use pas_text::normalize::normalize_for_dedup;
use pas_text::{char_ngrams, words};

/// Namespace tags keep word features and char-gram features from colliding.
const NS_WORD: u64 = 0x57_4f_52_44; // "WORD"
const NS_CHAR: u64 = 0x43_48_41_52; // "CHAR"

/// Relative weight of a word feature vs. a character-trigram feature.
pub const WORD_WEIGHT: f32 = 3.0;
/// Relative weight of a character-trigram feature.
pub const CHAR_WEIGHT: f32 = 1.0;

/// A sparse feature bag: `(feature_hash, weight)` pairs, hash-sorted and
/// aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBag {
    entries: Vec<(u64, f32)>,
}

impl FeatureBag {
    /// The `(hash, weight)` entries in ascending hash order.
    pub fn entries(&self) -> &[(u64, f32)] {
        &self.entries
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the text produced no features (empty/punctuation-only).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Extracts the hashed feature bag of `text`.
pub fn feature_bag(text: &str) -> FeatureBag {
    let canonical = normalize_for_dedup(text);
    let mut raw: Vec<(u64, f32)> = Vec::new();
    for w in words(&canonical) {
        raw.push((fx_combine(NS_WORD, fx_hash_str(&w)), WORD_WEIGHT));
    }
    for g in char_ngrams(&canonical, 3) {
        raw.push((fx_combine(NS_CHAR, fx_hash_str(&g)), CHAR_WEIGHT));
    }
    raw.sort_unstable_by_key(|&(h, _)| h);
    // Aggregate duplicate features.
    let mut entries: Vec<(u64, f32)> = Vec::with_capacity(raw.len());
    for (h, w) in raw {
        match entries.last_mut() {
            Some((lh, lw)) if *lh == h => *lw += w,
            _ => entries.push((h, w)),
        }
    }
    FeatureBag { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_identical_bags() {
        assert_eq!(feature_bag("Sort the list"), feature_bag("sort the list!"));
    }

    #[test]
    fn empty_text_empty_bag() {
        assert!(feature_bag("").is_empty());
        assert!(feature_bag("?!.,").is_empty());
    }

    #[test]
    fn repeated_words_aggregate_weight() {
        let once = feature_bag("rust");
        let thrice = feature_bag("rust rust rust");
        let w1: f32 = once.entries().iter().map(|e| e.1).sum();
        let w3: f32 = thrice.entries().iter().map(|e| e.1).sum();
        assert!(w3 > w1 * 2.0);
    }

    #[test]
    fn entries_are_hash_sorted_and_unique() {
        let bag = feature_bag("the quick brown fox jumps over the lazy dog");
        let hashes: Vec<u64> = bag.entries().iter().map(|e| e.0).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(hashes, sorted);
    }

    #[test]
    fn small_edit_shares_most_features() {
        let a = feature_bag("explain the merge sort algorithm step by step");
        let b = feature_bag("explain the merge sort algorithm step by steps");
        let set_a: std::collections::HashSet<u64> = a.entries().iter().map(|e| e.0).collect();
        let shared = b.entries().iter().filter(|e| set_a.contains(&e.0)).count();
        assert!(shared as f64 / b.len() as f64 > 0.8);
    }
}

//! Memoized embedding: never embed the same text twice.
//!
//! Dedup and selection both embed the corpus, and near-duplicate corpora
//! repeat texts; the §3.1 pipeline also re-touches records across stages.
//! [`EmbeddingCache`] wraps any [`Embedder`] with a `parking_lot::RwLock`
//! hash map from text to vector. Reads take the shared lock, so parallel
//! batch embedding scales; misses are computed *outside* any lock (the
//! inner embedder is pure, so racing computations of the same text agree)
//! and inserted under a short write lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::embedder::Embedder;

/// A read-through cache over an [`Embedder`].
pub struct EmbeddingCache<E> {
    inner: E,
    map: RwLock<HashMap<String, Vec<f32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<E: Embedder + Sync> EmbeddingCache<E> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: E) -> Self {
        EmbeddingCache {
            inner,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped embedder.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Number of distinct texts cached.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (inner embeddings computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl<E: Embedder + Sync> Embedder for EmbeddingCache<E> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        if let Some(v) = self.map.read().get(text) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.embed(text);
        self.map.write().entry(text.to_string()).or_insert_with(|| v.clone());
        v
    }

    /// Batch embed: cached texts are served from the map; misses are
    /// computed in parallel through `pas_par` (deterministic because the
    /// inner embedder is a pure function of the text).
    fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        let mut out: Vec<Option<Vec<f32>>> = vec![None; texts.len()];
        let mut miss_indices: Vec<usize> = Vec::new();
        {
            let map = self.map.read();
            for (i, t) in texts.iter().enumerate() {
                match map.get(*t) {
                    Some(v) => out[i] = Some(v.clone()),
                    None => miss_indices.push(i),
                }
            }
        }
        self.hits.fetch_add((texts.len() - miss_indices.len()) as u64, Ordering::Relaxed);
        self.misses.fetch_add(miss_indices.len() as u64, Ordering::Relaxed);

        let computed: Vec<Vec<f32>> =
            pas_par::par_map(&miss_indices, |_, &i| self.inner.embed(texts[i]));
        {
            let mut map = self.map.write();
            for (&i, v) in miss_indices.iter().zip(&computed) {
                map.entry(texts[i].to_string()).or_insert_with(|| v.clone());
            }
        }
        for (&i, v) in miss_indices.iter().zip(computed) {
            out[i] = Some(v);
        }
        out.into_iter().map(|v| v.expect("every slot filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::NgramEmbedder;

    #[test]
    fn cache_matches_inner_and_counts() {
        let cache = EmbeddingCache::new(NgramEmbedder::default());
        let direct = cache.inner().embed("hello world");
        assert_eq!(cache.embed("hello world"), direct);
        assert_eq!(cache.embed("hello world"), direct);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batch_dedups_repeated_texts() {
        let cache = EmbeddingCache::new(NgramEmbedder::default());
        let texts = ["alpha", "beta", "alpha", "gamma", "beta"];
        let batch = cache.embed_batch(&texts);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch[0], batch[2]);
        assert_eq!(batch[1], batch[4]);
        assert_eq!(cache.len(), 3, "only distinct texts cached");
        for (t, v) in texts.iter().zip(&batch) {
            assert_eq!(v, &cache.inner().embed(t));
        }
    }

    #[test]
    fn batch_is_identical_at_any_thread_count() {
        let texts: Vec<String> =
            (0..200).map(|i| format!("prompt number {i} about topic {}", i % 17)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let run = |threads| {
            pas_par::with_threads(threads, || {
                EmbeddingCache::new(NgramEmbedder::default()).embed_batch(&refs)
            })
        };
        assert_eq!(run(1), run(8));
    }
}

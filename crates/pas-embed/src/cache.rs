//! Memoized embedding: never embed the same text twice.
//!
//! Dedup and selection both embed the corpus, and near-duplicate corpora
//! repeat texts; the §3.1 pipeline also re-touches records across stages.
//! [`EmbeddingCache`] wraps any [`Embedder`] with a `parking_lot::RwLock`
//! hash map from text to vector. Reads take the shared lock, so parallel
//! batch embedding scales; misses are computed *outside* any lock (the
//! inner embedder is pure, so racing computations of the same text agree)
//! and inserted under a short write lock.
//!
//! The cache is **unbounded by default** — exactly the behaviour every
//! pipeline caller relies on. Serving traffic, where the set of distinct
//! prompts grows without bound, uses [`EmbeddingCache::bounded`] instead:
//! a least-recently-used capacity limit with eviction counting. Because the
//! inner embedder is a pure function of the text, eviction can never change
//! an answer — a bounded cache returns byte-identical embeddings to the
//! unbounded one, it just recomputes evicted texts (pinned by proptest in
//! `tests/properties.rs`). Recency updates on the bounded path take the
//! write lock, so bounded caches are meant for serial serve loops, not the
//! parallel batch pipeline.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::embedder::Embedder;

// Observability counters. Recorded only where the tallies are
// deterministic: the batch path (hits/misses are counted from the map
// state before the parallel region) and the bounded single path (meant
// for serial serve loops). The unbounded single path stays uncounted —
// racing misses on the same text would make its tallies scheduling-
// dependent, breaking snapshot thread-invariance.
static OBS_HITS: pas_obs::Counter = pas_obs::Counter::new("embed.cache.hits");
static OBS_MISSES: pas_obs::Counter = pas_obs::Counter::new("embed.cache.misses");
static OBS_EVICTIONS: pas_obs::Counter = pas_obs::Counter::new("embed.cache.evictions");

/// Map state behind the lock: values plus (when bounded) LRU bookkeeping.
///
/// Recency is a monotone `clock` stamp per entry; `stamps` mirrors
/// `entries` keyed by stamp so the least-recently-used entry is always the
/// first stamp. Stamps are unique (the clock only moves forward), so the
/// `BTreeMap` is a faithful recency queue.
struct LruState {
    entries: HashMap<String, (Vec<f32>, u64)>,
    stamps: BTreeMap<u64, String>,
    clock: u64,
}

impl LruState {
    fn new() -> Self {
        LruState { entries: HashMap::new(), stamps: BTreeMap::new(), clock: 0 }
    }

    /// Bumps `text` to most-recently-used. No-op when absent.
    fn touch(&mut self, text: &str) {
        let Some((_, stamp)) = self.entries.get_mut(text) else { return };
        self.stamps.remove(stamp);
        self.clock += 1;
        *stamp = self.clock;
        self.stamps.insert(self.clock, text.to_string());
    }

    /// Inserts `text` as most-recently-used; returns false when it was
    /// already present (the existing value is kept, recency untouched —
    /// matching the unbounded path's `or_insert_with`).
    fn insert(&mut self, text: &str, value: Vec<f32>) -> bool {
        if self.entries.contains_key(text) {
            return false;
        }
        self.clock += 1;
        self.entries.insert(text.to_string(), (value, self.clock));
        self.stamps.insert(self.clock, text.to_string());
        true
    }

    /// Evicts least-recently-used entries until `len ≤ capacity`, returning
    /// how many were dropped.
    fn enforce(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let (&stamp, _) = self.stamps.iter().next().expect("stamps mirror entries");
            let text = self.stamps.remove(&stamp).expect("stamp present");
            self.entries.remove(&text);
            evicted += 1;
        }
        evicted
    }
}

/// A read-through cache over an [`Embedder`], unbounded by default with an
/// optional LRU capacity (see [`EmbeddingCache::bounded`]).
pub struct EmbeddingCache<E> {
    inner: E,
    map: RwLock<LruState>,
    /// `None` = unbounded (the pipeline default).
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<E: Embedder + Sync> EmbeddingCache<E> {
    /// Wraps `inner` with an empty, unbounded cache.
    pub fn new(inner: E) -> Self {
        EmbeddingCache {
            inner,
            map: RwLock::new(LruState::new()),
            capacity: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` with an empty cache holding at most `capacity` entries
    /// (least-recently-used eviction).
    ///
    /// # Panics
    /// Panics when `capacity` is zero — a cache that can hold nothing is a
    /// configuration error, not a degenerate mode.
    pub fn bounded(inner: E, capacity: usize) -> Self {
        assert!(capacity > 0, "embedding cache capacity must be positive");
        EmbeddingCache { capacity: Some(capacity), ..EmbeddingCache::new(inner) }
    }

    /// The wrapped embedder.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The capacity bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of distinct texts cached.
    pub fn len(&self) -> usize {
        self.map.read().entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.read().entries.is_empty()
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (inner embeddings computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far (always 0 when
    /// unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl<E: Embedder + Sync> Embedder for EmbeddingCache<E> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        if let Some(capacity) = self.capacity {
            // Bounded: a hit must refresh recency, so even the hit path
            // takes the write lock.
            if let Some(v) = {
                let mut map = self.map.write();
                let v = map.entries.get(text).map(|(v, _)| v.clone());
                if v.is_some() {
                    map.touch(text);
                }
                v
            } {
                self.hits.fetch_add(1, Ordering::Relaxed);
                OBS_HITS.incr();
                return v;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            OBS_MISSES.incr();
            let v = self.inner.embed(text);
            let mut map = self.map.write();
            map.insert(text, v.clone());
            let evicted = map.enforce(capacity);
            drop(map);
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            OBS_EVICTIONS.add(evicted);
            return v;
        }
        if let Some((v, _)) = self.map.read().entries.get(text) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.embed(text);
        let mut map = self.map.write();
        if !map.entries.contains_key(text) {
            map.insert(text, v.clone());
        }
        v
    }

    /// Batch embed: cached texts are served from the map; misses are
    /// computed in parallel through `pas_par` (deterministic because the
    /// inner embedder is a pure function of the text). On a bounded cache,
    /// hit recencies are refreshed in item order and misses are inserted in
    /// item order, so eviction order is a pure function of the request
    /// sequence.
    fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        let mut out: Vec<Option<Vec<f32>>> = vec![None; texts.len()];
        let mut miss_indices: Vec<usize> = Vec::new();
        if self.capacity.is_some() {
            let mut map = self.map.write();
            for (i, t) in texts.iter().enumerate() {
                match map.entries.get(*t).map(|(v, _)| v.clone()) {
                    Some(v) => {
                        map.touch(t);
                        out[i] = Some(v);
                    }
                    None => miss_indices.push(i),
                }
            }
        } else {
            let map = self.map.read();
            for (i, t) in texts.iter().enumerate() {
                match map.entries.get(*t) {
                    Some((v, _)) => out[i] = Some(v.clone()),
                    None => miss_indices.push(i),
                }
            }
        }
        self.hits.fetch_add((texts.len() - miss_indices.len()) as u64, Ordering::Relaxed);
        self.misses.fetch_add(miss_indices.len() as u64, Ordering::Relaxed);
        OBS_HITS.add((texts.len() - miss_indices.len()) as u64);
        OBS_MISSES.add(miss_indices.len() as u64);

        let computed: Vec<Vec<f32>> =
            pas_par::par_map(&miss_indices, |_, &i| self.inner.embed(texts[i]));
        {
            let mut map = self.map.write();
            for (&i, v) in miss_indices.iter().zip(&computed) {
                map.insert(texts[i], v.clone());
            }
            if let Some(capacity) = self.capacity {
                let evicted = map.enforce(capacity);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                OBS_EVICTIONS.add(evicted);
            }
        }
        for (&i, v) in miss_indices.iter().zip(computed) {
            out[i] = Some(v);
        }
        out.into_iter().map(|v| v.expect("every slot filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::NgramEmbedder;

    #[test]
    fn cache_matches_inner_and_counts() {
        let cache = EmbeddingCache::new(NgramEmbedder::default());
        let direct = cache.inner().embed("hello world");
        assert_eq!(cache.embed("hello world"), direct);
        assert_eq!(cache.embed("hello world"), direct);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn batch_dedups_repeated_texts() {
        let cache = EmbeddingCache::new(NgramEmbedder::default());
        let texts = ["alpha", "beta", "alpha", "gamma", "beta"];
        let batch = cache.embed_batch(&texts);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch[0], batch[2]);
        assert_eq!(batch[1], batch[4]);
        assert_eq!(cache.len(), 3, "only distinct texts cached");
        for (t, v) in texts.iter().zip(&batch) {
            assert_eq!(v, &cache.inner().embed(t));
        }
    }

    #[test]
    fn batch_is_identical_at_any_thread_count() {
        let texts: Vec<String> =
            (0..200).map(|i| format!("prompt number {i} about topic {}", i % 17)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let run = |threads| {
            pas_par::with_threads(threads, || {
                EmbeddingCache::new(NgramEmbedder::default()).embed_batch(&refs)
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = EmbeddingCache::bounded(NgramEmbedder::default(), 2);
        cache.embed("a");
        cache.embed("b");
        cache.embed("a"); // refresh "a": "b" is now least recently used
        cache.embed("c"); // evicts "b"
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
        // "a" survived the eviction, "b" did not.
        cache.embed("a");
        assert_eq!(cache.hits(), 2);
        cache.embed("b");
        assert_eq!(cache.misses(), 4, "evicted text must recompute");
    }

    #[test]
    fn bounded_cache_matches_unbounded_values() {
        let bounded = EmbeddingCache::bounded(NgramEmbedder::default(), 3);
        let unbounded = EmbeddingCache::new(NgramEmbedder::default());
        for i in 0..40 {
            let text = format!("text {}", i % 7);
            assert_eq!(bounded.embed(&text), unbounded.embed(&text), "{text}");
            assert!(bounded.len() <= 3);
        }
    }

    #[test]
    fn bounded_batch_counts_and_caps() {
        let cache = EmbeddingCache::bounded(NgramEmbedder::default(), 4);
        let texts: Vec<String> = (0..10).map(|i| format!("t{i}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let batch = cache.embed_batch(&refs);
        assert_eq!(batch.len(), 10);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 6);
        assert_eq!(cache.misses(), 10);
        // The last 4 texts (most recently inserted) survived.
        cache.embed("t9");
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = EmbeddingCache::bounded(NgramEmbedder::default(), 0);
    }
}

//! Inverse-document-frequency weighting over hashed features.
//!
//! The quality filter and the classifier both benefit from down-weighting
//! boilerplate features ("please", template glue) that appear in most
//! prompts. [`IdfModel`] is fitted once over a corpus of [`FeatureBag`]s and
//! then reweights bags on demand.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::features::FeatureBag;

/// Smoothed IDF statistics: `idf(f) = ln((N + 1) / (df(f) + 1)) + 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdfModel {
    doc_count: u64,
    doc_freq: HashMap<u64, u64>,
}

impl IdfModel {
    /// Fits document frequencies over a corpus of feature bags.
    pub fn fit<'a, I>(bags: I) -> Self
    where
        I: IntoIterator<Item = &'a FeatureBag>,
    {
        let mut doc_freq: HashMap<u64, u64> = HashMap::new();
        let mut doc_count = 0u64;
        for bag in bags {
            doc_count += 1;
            for &(h, _) in bag.entries() {
                *doc_freq.entry(h).or_insert(0) += 1;
            }
        }
        IdfModel { doc_count, doc_freq }
    }

    /// Number of documents the model was fitted on.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Smoothed IDF of a feature hash. Unseen features get the maximum IDF.
    pub fn idf(&self, feature: u64) -> f32 {
        let df = self.doc_freq.get(&feature).copied().unwrap_or(0);
        (((self.doc_count + 1) as f32) / ((df + 1) as f32)).ln() + 1.0
    }

    /// Returns a new bag with each weight multiplied by its feature's IDF.
    pub fn reweight(&self, bag: &FeatureBag) -> Vec<(u64, f32)> {
        bag.entries().iter().map(|&(h, w)| (h, w * self.idf(h))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::feature_bag;

    #[test]
    fn common_features_get_lower_idf() {
        let corpus = [
            feature_bag("please sort my list"),
            feature_bag("please write a poem"),
            feature_bag("please explain recursion"),
            feature_bag("quantum entanglement basics"),
        ];
        let idf = IdfModel::fit(corpus.iter());
        // "please" appears in 3/4 docs, "quantum" in 1/4.
        let please = feature_bag("please").entries()[0].0;
        let quantum_bag = feature_bag("quantum");
        // word feature of "quantum": find any entry that exists in the corpus
        let quantum = quantum_bag.entries().last().unwrap().0;
        assert!(idf.idf(please) < idf.idf(quantum));
    }

    #[test]
    fn unseen_feature_gets_max_idf() {
        let corpus = [feature_bag("a b c")];
        let idf = IdfModel::fit(corpus.iter());
        let expected = ((2.0f32) / 1.0).ln() + 1.0;
        assert!((idf.idf(0xdead_beef) - expected).abs() < 1e-6);
    }

    #[test]
    fn empty_corpus_is_well_defined() {
        let idf = IdfModel::fit(std::iter::empty());
        assert_eq!(idf.doc_count(), 0);
        assert!((idf.idf(1) - 1.0).abs() < 1e-6); // ln(1/1)+1
    }

    #[test]
    fn reweight_preserves_feature_set() {
        let corpus = [feature_bag("x y z"), feature_bag("x y"), feature_bag("x")];
        let idf = IdfModel::fit(corpus.iter());
        let bag = feature_bag("x y z");
        let rw = idf.reweight(&bag);
        assert_eq!(rw.len(), bag.len());
        assert!(rw.iter().all(|&(_, w)| w > 0.0));
    }
}

//! Deterministic sentence embeddings.
//!
//! The paper's data-selection pipeline embeds every prompt with a SimCSE-bge
//! model before HNSW deduplication (§3.1). This crate provides the workspace
//! substitute: a hashed n-gram TF-IDF representation projected into a dense
//! unit vector with a seeded sign-random projection. The embedding is
//! deterministic (no model weights to ship), locality-preserving (texts that
//! share n-grams land close in cosine space), and fast enough to embed the
//! full synthetic corpus in milliseconds — exactly the properties dedup
//! needs.
//!
//! Layering:
//! - [`vector`] — dense `f32` vector arithmetic (dot, norm, cosine).
//! - [`features`] — hashed lexical feature extraction (words + char n-grams).
//! - [`tfidf`] — corpus-level inverse document frequency weighting.
//! - [`embedder`] — the [`Embedder`] trait and the default
//!   [`NgramEmbedder`] implementation.
//! - [`cache`] — the memoized [`EmbeddingCache`] wrapper with parallel
//!   batch embedding via `pas_par`.

pub mod cache;
pub mod embedder;
pub mod features;
pub mod tfidf;
pub mod vector;

pub use cache::EmbeddingCache;
pub use embedder::{Embedder, NgramEmbedder};
pub use features::{feature_bag, FeatureBag};
pub use tfidf::IdfModel;
pub use vector::{cosine, dot, l2_norm, normalize_in_place};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_duplicates_are_close_distinct_texts_are_far() {
        let emb = NgramEmbedder::default();
        let a = emb.embed("How do I sort a list of integers in Rust?");
        let b = emb.embed("How do I sort a list of integers in Rust??");
        let c = emb.embed("Write a poem about the autumn moon festival");
        let near = cosine(&a, &b);
        let far = cosine(&a, &c);
        assert!(near > 0.95, "near-duplicate cosine too low: {near}");
        assert!(far < 0.5, "unrelated cosine too high: {far}");
        assert!(near > far);
    }
}

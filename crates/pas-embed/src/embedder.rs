//! Dense embedding via seeded sign-random projection.
//!
//! Each hashed feature deterministically seeds a splitmix64 stream that
//! yields a ±1 sign per output dimension; the embedding is the weighted sum
//! of those sign vectors, L2-normalized. By the Johnson–Lindenstrauss
//! property, cosine similarity in the projected space approximates cosine
//! similarity of the sparse TF bags — which is what the HNSW dedup consumes.

use crate::features::{feature_bag, FeatureBag};
use crate::vector::normalize_in_place;

/// Anything that maps text to a fixed-dimension unit vector.
pub trait Embedder {
    /// Output dimensionality.
    fn dim(&self) -> usize;

    /// Embeds one text into a unit vector of [`Self::dim`] components.
    fn embed(&self, text: &str) -> Vec<f32>;

    /// Embeds a batch (default: map [`Self::embed`]).
    fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        texts.iter().map(|t| self.embed(t)).collect()
    }
}

/// The workspace's SimCSE-bge substitute: hashed n-gram features projected
/// with per-feature sign streams.
#[derive(Debug, Clone)]
pub struct NgramEmbedder {
    dim: usize,
    seed: u64,
}

impl Default for NgramEmbedder {
    fn default() -> Self {
        NgramEmbedder::new(64, 0x5eed_cafe)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl NgramEmbedder {
    /// Creates an embedder with output dimension `dim` (must be positive)
    /// and projection `seed`. Two embedders with the same parameters produce
    /// identical embeddings.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        NgramEmbedder { dim, seed }
    }

    /// Projects an explicit feature bag (used when the caller already has
    /// IDF-reweighted features).
    pub fn project(&self, entries: &[(u64, f32)]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for &(h, w) in entries {
            let mut state = h ^ self.seed;
            // Consume 64 sign bits at a time.
            let mut bits = 0u64;
            let mut remaining = 0u32;
            for slot in out.iter_mut() {
                if remaining == 0 {
                    bits = splitmix64(&mut state);
                    remaining = 64;
                }
                let sign = if bits & 1 == 1 { w } else { -w };
                *slot += sign;
                bits >>= 1;
                remaining -= 1;
            }
        }
        normalize_in_place(&mut out);
        out
    }

    /// Embeds a pre-extracted bag.
    pub fn embed_bag(&self, bag: &FeatureBag) -> Vec<f32> {
        self.project(bag.entries())
    }
}

impl Embedder for NgramEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        self.embed_bag(&feature_bag(text))
    }

    /// Parallel batch embedding. Each text embeds independently of every
    /// other (pure function of the text), so the ordered `par_map` returns
    /// exactly what the serial loop would.
    fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        pas_par::par_map(texts, |_, t| self.embed(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{cosine, l2_norm};

    #[test]
    fn embeddings_are_unit_norm() {
        let e = NgramEmbedder::default();
        let v = e.embed("a perfectly ordinary sentence");
        assert!((l2_norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let e = NgramEmbedder::default();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = NgramEmbedder::new(32, 7).embed("determinism matters");
        let b = NgramEmbedder::new(32, 7).embed("determinism matters");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = NgramEmbedder::new(32, 1).embed("same text");
        let b = NgramEmbedder::new(32, 2).embed("same text");
        assert_ne!(a, b);
    }

    #[test]
    fn dim_is_respected() {
        let e = NgramEmbedder::new(17, 0);
        assert_eq!(e.embed("x").len(), 17);
        assert_eq!(e.dim(), 17);
    }

    #[test]
    fn paraphrase_closer_than_unrelated() {
        let e = NgramEmbedder::default();
        let base = e.embed("how can I quickly boil water in ancient times");
        let para = e.embed("how to boil water quickly in ancient times");
        let other = e.embed("derive the gradient of the softmax function");
        assert!(cosine(&base, &para) > cosine(&base, &other) + 0.2);
    }

    #[test]
    fn batch_matches_single() {
        let e = NgramEmbedder::default();
        let batch = e.embed_batch(&["one", "two"]);
        assert_eq!(batch[0], e.embed("one"));
        assert_eq!(batch[1], e.embed("two"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        NgramEmbedder::new(0, 0);
    }
}

//! Dense `f32` vector arithmetic used by embeddings and the ANN index.
//!
//! Thin wrappers over the shared [`pas_kernels`] compute layer — the 8-lane
//! striped kernels that make every reduction bit-identical on every machine.
//! Keep the arithmetic there: this module only owns the conventions
//! (zero-vector cosine, normalize-leaves-zero-alone), not the loops.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics when the lengths differ — mixing dimensions is always a bug.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    pas_kernels::dot(a, b)
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    pas_kernels::sum_sq(v).sqrt()
}

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    pas_kernels::l2_sq(a, b)
}

/// Cosine similarity in `[-1, 1]`, computed in one fused pass
/// ([`pas_kernels::dot_norms`]). Returns 0.0 when either vector is zero so
/// degenerate inputs compare as "unrelated" rather than poisoning downstream
/// thresholds with NaN.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    pas_kernels::cosine_sim(a, b)
}

/// Scales `v` to unit L2 norm in place; leaves the zero vector untouched.
pub fn normalize_in_place(v: &mut [f32]) {
    let n = l2_norm(v);
    if n > 0.0 {
        pas_kernels::scale(v, 1.0 / n);
    }
}

/// Adds `src` into `dst` element-wise.
#[inline]
pub fn add_in_place(dst: &mut [f32], src: &[f32]) {
    pas_kernels::add(dst, src);
}

/// Mean of a set of equal-length vectors; `None` for an empty set.
pub fn mean(vectors: &[Vec<f32>]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0f32; first.len()];
    for v in vectors {
        add_in_place(&mut acc, v);
    }
    pas_kernels::scale(&mut acc, 1.0 / vectors.len() as f32);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_parallel_orthogonal_opposite() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize_in_place(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize_in_place(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn l2_distance_matches_hand_computation() {
        assert_eq!(l2_distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn mean_of_vectors() {
        let m = mean(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m, vec![2.0, 3.0]);
        assert!(mean(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_dims() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_matches_striped_reference_bitwise() {
        let a: Vec<f32> = (0..67).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..67).map(|i| (i as f32 * 0.7).cos()).collect();
        assert_eq!(dot(&a, &b).to_bits(), pas_kernels::reference::dot(&a, &b).to_bits());
    }
}

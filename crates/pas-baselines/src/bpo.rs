//! Black-box Prompt Optimization (BPO) — the previous state of the art.
//!
//! BPO fine-tunes a rewriter on ~14k pairs distilled from *human preference
//! data* (Cheng et al., 2023). Two things distinguish it from PAS and drive
//! the comparison in Tables 1–2:
//!
//! 1. **Label noise.** Preference-derived supervision is noisier than
//!    Algorithm 1's critic-curated pairs; we train the same multi-label
//!    aspect model as PAS but with a calibrated fraction of corrupted
//!    target bits.
//! 2. **Rewriting, not complementing.** BPO replaces the user prompt. Most
//!    rewrites keep the request intact, but with a small probability the
//!    rewrite buries the original question behind its additions — intent
//!    drift, the instability that makes BPO *underperform the baseline* on
//!    some models in the paper (GPT-3.5, Qwen2-72B).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_core::PromptOptimizer;
use pas_data::features::{prompt_features, FEATURE_DIM};
use pas_data::PairDataset;
use pas_llm::teacher::realize_complement_in;
use pas_llm::world::{detect_aspects, Aspect, AspectSet};
use pas_nn::{MultiLabelClassifier, TrainParams};
use pas_text::top_keywords;

/// BPO training configuration.
#[derive(Debug, Clone)]
pub struct BpoConfig {
    /// Fraction of target bits corrupted by preference-label noise.
    pub label_noise: f32,
    /// Probability that a rewrite drifts from the original intent.
    pub drift_rate: f32,
    /// Aspect threshold at rewrite time.
    pub aspect_threshold: f32,
    /// Maximum requested aspects per rewrite.
    pub max_aspects: usize,
    /// Trainer parameters.
    pub trainer: TrainParams,
    /// Seed.
    pub seed: u64,
}

impl Default for BpoConfig {
    fn default() -> Self {
        BpoConfig {
            label_noise: 0.32,
            drift_rate: 0.22,
            aspect_threshold: 0.5,
            max_aspects: 3,
            trainer: TrainParams { epochs: 15, ..TrainParams::default() },
            seed: 0xb90,
        }
    }
}

/// The trained BPO rewriter.
#[derive(Debug, Clone)]
pub struct Bpo {
    aspect_model: MultiLabelClassifier,
    config: BpoConfig,
    trained_pairs: usize,
}

impl Bpo {
    /// Trains BPO on a pair dataset, corrupting targets with preference
    /// noise. In the paper BPO consumes ~14k human-preference pairs; pass a
    /// proportionally larger dataset to mirror that consumption.
    pub fn train(config: &BpoConfig, dataset: &PairDataset) -> Bpo {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let features: Vec<Vec<f32>> =
            dataset.pairs.iter().map(|p| prompt_features(&p.prompt)).collect();
        let targets: Vec<Vec<f32>> = dataset
            .pairs
            .iter()
            .map(|p| {
                let detected = detect_aspects(&p.complement);
                Aspect::ALL
                    .iter()
                    .map(|&a| {
                        let bit = detected.contains(a);
                        // Preference-label noise: bits flip independently.
                        let flipped = rng.random::<f32>() < config.label_noise;
                        if bit != flipped {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let mut aspect_model =
            MultiLabelClassifier::new(FEATURE_DIM, Aspect::ALL.len(), config.seed);
        aspect_model.train(&features, &targets, &config.trainer);
        Bpo { aspect_model, config: config.clone(), trained_pairs: dataset.len() }
    }

    /// The aspects the rewriter decides to add for `prompt`.
    pub fn predict_aspects(&self, prompt: &str) -> AspectSet {
        let probs = self.aspect_model.predict_probs(&prompt_features(prompt));
        let mut scored: Vec<(usize, f32)> = probs.into_iter().enumerate().collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut set = AspectSet::EMPTY;
        for &(i, p) in scored.iter().take(self.config.max_aspects) {
            if p >= self.config.aspect_threshold {
                set.insert(Aspect::from_index(i).expect("index in range"));
            }
        }
        if set.is_empty() {
            if let Some(&(i, _)) = scored.first() {
                set.insert(Aspect::from_index(i).expect("index in range"));
            }
        }
        set
    }

    /// Whether this particular prompt's rewrite drifts (deterministic).
    /// Longer, constraint-laden prompts are riskier to rewrite — exactly
    /// the "complex and challenging scenarios" where the paper observes
    /// BPO's instability.
    pub fn drifts(&self, prompt: &str) -> bool {
        let mut rng =
            StdRng::seed_from_u64(pas_text::fx_hash_str(prompt) ^ self.config.seed.rotate_left(5));
        let complexity = (prompt.split_whitespace().count() as f32 / 14.0).clamp(0.5, 2.2);
        rng.random::<f32>() < self.config.drift_rate * complexity
    }
}

impl PromptOptimizer for Bpo {
    fn name(&self) -> &str {
        "BPO"
    }

    /// Rewrites the prompt. A faithful rewrite keeps the original request
    /// up front; a drifted rewrite *replaces* it with a paraphrase that
    /// keeps only the topic keywords — the original constraints and framing
    /// are gone, so downstream models answer a subtly different question.
    fn optimize(&self, prompt: &str) -> String {
        let aspects = self.predict_aspects(prompt);
        let topic = top_keywords(prompt, 3).join(" ");
        let language = pas_text::lang::detect_language(prompt);
        let additions = realize_complement_in(language, &topic, aspects);
        if self.drifts(prompt) {
            match language {
                pas_text::lang::Language::Chinese => format!("请讨论 {topic}。{additions}"),
                _ => format!("Discuss {topic}. {additions}"),
            }
        } else {
            format!("{prompt} {additions}")
        }
    }

    fn requires_human_labels(&self) -> bool {
        true // distilled from human preference data
    }

    fn llm_agnostic(&self) -> bool {
        true
    }

    fn task_agnostic(&self) -> bool {
        true
    }

    fn training_pairs(&self) -> Option<usize> {
        Some(self.trained_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_data::PairRecord;
    use pas_llm::teacher::realize_complement;
    use pas_llm::Category;

    fn dataset(n: usize) -> PairDataset {
        let mut ds = PairDataset::new();
        for i in 0..n {
            ds.pairs.push(PairRecord {
                prompt: format!("How do I tune query {i} against the orders table?"),
                complement: realize_complement(
                    "query orders table",
                    [Aspect::StepByStep, Aspect::Examples].into_iter().collect(),
                ),
                category: Category::Coding,
            });
        }
        ds
    }

    #[test]
    fn faithful_rewrites_keep_prompt_prefix() {
        let bpo = Bpo::train(&BpoConfig { drift_rate: 0.0, ..BpoConfig::default() }, &dataset(100));
        let prompt = "How do I tune query nine against the orders table?";
        let out = bpo.optimize(prompt);
        assert!(out.starts_with(prompt));
    }

    #[test]
    fn drifted_rewrites_lose_the_original_framing() {
        let bpo = Bpo::train(&BpoConfig { drift_rate: 3.0, ..BpoConfig::default() }, &dataset(50));
        let prompt = "How do I tune query three against the orders table?";
        let out = bpo.optimize(prompt);
        assert!(!out.starts_with(prompt), "drift must not keep the prompt prefix");
        assert!(!out.contains(prompt), "drift replaces the request entirely");
        // But the topic keywords survive the paraphrase.
        assert!(out.contains("query") || out.contains("orders"));
    }

    #[test]
    fn drift_rate_is_respected_in_aggregate() {
        let bpo = Bpo::train(&BpoConfig { drift_rate: 0.1, ..BpoConfig::default() }, &dataset(50));
        // 4-word prompts clamp complexity to 0.5, so the effective rate is
        // ~5%: expect roughly 25 drifted out of 500.
        let drifted =
            (0..500).filter(|i| bpo.drifts(&format!("prompt variant number {i}"))).count();
        assert!((8..=60).contains(&drifted), "drifted {drifted}/500");
    }

    #[test]
    fn label_noise_degrades_aspect_predictions() {
        let ds = dataset(300);
        let clean = Bpo::train(&BpoConfig { label_noise: 0.0, ..BpoConfig::default() }, &ds);
        let noisy = Bpo::train(&BpoConfig { label_noise: 0.4, ..BpoConfig::default() }, &ds);
        // On held-out prompts of the same family, the clean model should
        // recover the true aspects more often.
        let truth: AspectSet = [Aspect::StepByStep, Aspect::Examples].into_iter().collect();
        let score = |b: &Bpo| -> usize {
            (300..400)
                .map(|i| {
                    let p = format!("How do I tune query {i} against the orders table?");
                    b.predict_aspects(&p).intersection(truth).len()
                })
                .sum()
        };
        assert!(score(&clean) >= score(&noisy), "{} vs {}", score(&clean), score(&noisy));
    }

    #[test]
    fn flexibility_metadata_matches_table3() {
        let bpo = Bpo::train(&BpoConfig::default(), &dataset(10));
        assert!(bpo.requires_human_labels());
        assert!(bpo.llm_agnostic());
        assert!(bpo.task_agnostic());
        assert_eq!(bpo.training_pairs(), Some(10));
    }

    #[test]
    fn optimization_is_deterministic() {
        let bpo = Bpo::train(&BpoConfig::default(), &dataset(50));
        let p = "How do I tune query five against the orders table?";
        assert_eq!(bpo.optimize(p), bpo.optimize(p));
    }
}

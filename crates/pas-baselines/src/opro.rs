//! OPRO — large language models as optimizers (Yang et al., 2023).
//!
//! OPRO treats instruction text as the optimization variable and the
//! accuracy on a *labeled training split* as the objective — data that, as
//! the paper notes, is "unavailable in real-world scenarios". The search
//! here is the same loop at workspace scale: candidate instructions are
//! aspect-request combinations, the objective is the labeled score of the
//! target model's responses on the train split, and each iteration proposes
//! mutations of the best instruction so far.
//!
//! The result is inherently **task-specific** (optimized for one category's
//! train split) and **model-specific** (optimized against one target
//! model) — the two ✗ columns OPRO gets in Table 3.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_core::PromptOptimizer;
use pas_llm::teacher::realize_complement;
use pas_llm::world::{Aspect, AspectSet, Category, PromptMeta};
use pas_llm::{ChatModel, SimLlm};

use crate::score::labeled_score;

/// OPRO search parameters.
#[derive(Debug, Clone)]
pub struct OproConfig {
    /// Optimization iterations.
    pub iterations: usize,
    /// Candidate mutations proposed per iteration.
    pub pool_per_iter: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for OproConfig {
    fn default() -> Self {
        OproConfig { iterations: 6, pool_per_iter: 4, seed: 0x0960 }
    }
}

/// A per-task instruction found by OPRO.
#[derive(Debug, Clone)]
pub struct Opro {
    name: String,
    instruction: String,
    category: Category,
    target_model: String,
    train_score: f32,
}

impl Opro {
    /// Runs the optimization loop for one `category` against one target
    /// `model`, scoring candidates on the labeled `train` split.
    pub fn optimize_for_task(
        config: &OproConfig,
        category: Category,
        model: &SimLlm,
        train: &[(String, PromptMeta)],
    ) -> Opro {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut best_set: AspectSet = [Aspect::Depth].into_iter().collect();
        let mut best_score = evaluate(model, train, best_set);

        for _ in 0..config.iterations {
            for _ in 0..config.pool_per_iter {
                let candidate = mutate(best_set, &mut rng);
                let score = evaluate(model, train, candidate);
                if score > best_score {
                    best_score = score;
                    best_set = candidate;
                }
            }
        }

        Opro {
            name: "OPRO".to_string(),
            instruction: instruction_text(best_set),
            category,
            target_model: model.name().to_string(),
            train_score: best_score,
        }
    }

    /// The optimized instruction suffix.
    pub fn instruction(&self) -> &str {
        &self.instruction
    }

    /// Train-split score achieved.
    pub fn train_score(&self) -> f32 {
        self.train_score
    }

    /// The category this instruction was optimized for.
    pub fn category(&self) -> Category {
        self.category
    }

    /// The model this instruction was optimized against.
    pub fn target_model(&self) -> &str {
        &self.target_model
    }
}

fn instruction_text(aspects: AspectSet) -> String {
    realize_complement("the task at hand", aspects)
}

fn evaluate(model: &SimLlm, train: &[(String, PromptMeta)], aspects: AspectSet) -> f32 {
    if train.is_empty() {
        return 0.0;
    }
    let instr = instruction_text(aspects);
    let total: f32 = train
        .iter()
        .map(|(prompt, meta)| labeled_score(meta, &model.chat(&format!("{prompt} {instr}"))))
        .sum();
    total / train.len() as f32
}

fn mutate(set: AspectSet, rng: &mut StdRng) -> AspectSet {
    let mut out = set;
    let a = Aspect::ALL[rng.random_range(0..Aspect::ALL.len())];
    if out.contains(a) && out.len() > 1 {
        out.remove(a);
    } else {
        out.insert(a);
    }
    // Keep instructions short, like real OPRO prompts.
    while out.len() > 3 {
        let drop = out.iter().next().expect("non-empty");
        out.remove(drop);
    }
    out
}

impl PromptOptimizer for Opro {
    fn name(&self) -> &str {
        &self.name
    }

    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} {}", self.instruction)
    }

    fn requires_human_labels(&self) -> bool {
        true // objective = accuracy on a labeled train split
    }

    fn llm_agnostic(&self) -> bool {
        false // optimized against one target model
    }

    fn task_agnostic(&self) -> bool {
        false // optimized for one category's train split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::World;
    use pas_text::lang::Language;
    use std::sync::Arc;

    fn train_split(n: usize) -> (Vec<(String, PromptMeta)>, Arc<World>) {
        let mut world = World::new();
        let mut items = Vec::new();
        for i in 0..n {
            let prompt = format!("Walk me through compound interest scenario number {i}");
            let meta = PromptMeta {
                category: Category::Math,
                required: [Aspect::StepByStep, Aspect::Completeness].into_iter().collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.3,
                trap: false,
                language: Language::English,
                topic: "compound interest".into(),
            };
            world.register(&prompt, meta.clone());
            items.push((prompt, meta));
        }
        (items, Arc::new(world))
    }

    #[test]
    fn optimization_finds_a_useful_instruction() {
        let (train, world) = train_split(30);
        let model = SimLlm::named("gpt-4-0613", world);
        let opro = Opro::optimize_for_task(&OproConfig::default(), Category::Math, &model, &train);
        // The instruction should request at least one genuinely needed aspect.
        let requested = pas_llm::world::detect_aspects(opro.instruction());
        let needed: AspectSet = [Aspect::StepByStep, Aspect::Completeness].into_iter().collect();
        assert!(
            !requested.intersection(needed).is_empty(),
            "instruction {:?} misses the needed aspects",
            opro.instruction()
        );
        // And it must beat the no-instruction baseline on the train split.
        let baseline = {
            let total: f32 =
                train.iter().map(|(p, m)| labeled_score(m, &model.chat(p))).sum::<f32>()
                    / train.len() as f32;
            total
        };
        assert!(opro.train_score() > baseline, "{} vs {baseline}", opro.train_score());
    }

    #[test]
    fn optimize_appends_instruction() {
        let (train, world) = train_split(10);
        let model = SimLlm::named("gpt-4-0613", world);
        let opro = Opro::optimize_for_task(&OproConfig::default(), Category::Math, &model, &train);
        let out = opro.optimize("a new math question");
        assert!(out.starts_with("a new math question"));
        assert!(out.contains(opro.instruction()));
    }

    #[test]
    fn flexibility_metadata_matches_table3() {
        let (train, world) = train_split(5);
        let model = SimLlm::named("gpt-4-0613", world);
        let opro = Opro::optimize_for_task(&OproConfig::default(), Category::Math, &model, &train);
        assert!(opro.requires_human_labels());
        assert!(!opro.llm_agnostic());
        assert!(!opro.task_agnostic());
        assert!(opro.training_pairs().is_none());
        assert_eq!(opro.target_model(), "gpt-4-0613");
        assert_eq!(opro.category(), Category::Math);
    }

    #[test]
    fn empty_train_split_is_safe() {
        let (_, world) = train_split(1);
        let model = SimLlm::named("gpt-4-0613", world);
        let opro = Opro::optimize_for_task(&OproConfig::default(), Category::Math, &model, &[]);
        assert_eq!(opro.train_score(), 0.0);
        assert!(!opro.instruction().is_empty());
    }
}

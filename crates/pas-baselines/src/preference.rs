//! PPO / DPO preference-optimization surrogates.
//!
//! PPO (Ouyang et al., 2022) and DPO (Rafailov et al., 2024) improve a
//! model by fine-tuning *it* on human preference data — they are not prompt
//! optimizers at all, which is exactly why the paper's Table 3 marks them
//! LLM-specific and Figure 7 charges them their documented preference-data
//! consumption (77k and 170k pairs respectively). Here they serve three
//! purposes:
//!
//! 1. rows in the Table 3 flexibility matrix (identity prompt transform,
//!    LLM-specific, human-labeled);
//! 2. bars in the Figure 7 consumption chart via
//!    [`PreferenceKind::documented_pairs`];
//! 3. a saturating data→capability curve ([`PreferenceTuned::tuned_capability`])
//!    used by the learning-curve ablation bench to show *why* they need
//!    that much data: per-pair signal from scalar preferences is far
//!    weaker than Algorithm 1's targeted complements.

use pas_core::PromptOptimizer;
use pas_llm::ModelProfile;

/// Which preference-optimization algorithm is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreferenceKind {
    /// RLHF with proximal policy optimization.
    Ppo,
    /// Direct preference optimization.
    Dpo,
}

impl PreferenceKind {
    /// Preference-pair consumption documented in the cited papers and used
    /// by the paper's Figure 7 (in pairs).
    pub fn documented_pairs(self) -> usize {
        match self {
            PreferenceKind::Ppo => 77_000,
            PreferenceKind::Dpo => 170_000,
        }
    }

    /// Method name as printed in the tables.
    pub fn label(self) -> &'static str {
        match self {
            PreferenceKind::Ppo => "PPO",
            PreferenceKind::Dpo => "DPO",
        }
    }

    /// Data-efficiency constant of the saturating improvement curve: pairs
    /// needed to reach ~63% of the achievable capability gain. DPO's purely
    /// offline signal is the weaker per-pair teacher.
    fn pairs_scale(self) -> f64 {
        match self {
            PreferenceKind::Ppo => 25_000.0,
            PreferenceKind::Dpo => 55_000.0,
        }
    }
}

/// A base model tuned with preference data.
#[derive(Debug, Clone)]
pub struct PreferenceTuned {
    kind: PreferenceKind,
    base: ModelProfile,
    pairs_used: usize,
    name: String,
}

impl PreferenceTuned {
    /// Tunes `base_model` with `pairs_used` preference pairs.
    ///
    /// # Panics
    /// Panics when the base model has no profile.
    pub fn tune(kind: PreferenceKind, base_model: &str, pairs_used: usize) -> PreferenceTuned {
        let base = ModelProfile::named(base_model)
            .unwrap_or_else(|| panic!("unknown base model '{base_model}'"));
        let name = format!("{} ({base_model})", kind.label());
        PreferenceTuned { kind, base, pairs_used, name }
    }

    /// The tuned model's capability: the base capability plus a saturating
    /// gain, `gain_max · (1 − e^{−n/scale})`.
    pub fn tuned_capability(&self) -> f32 {
        let gain_max = (0.95 - self.base.capability).max(0.0) * 0.6;
        let frac = 1.0 - (-(self.pairs_used as f64) / self.kind.pairs_scale()).exp();
        (self.base.capability + gain_max * frac as f32).min(0.98)
    }

    /// Pairs needed for the tuned capability to reach `target_frac` of its
    /// asymptotic gain — the "data to converge" number Figure 7 compares.
    pub fn pairs_to_converge(kind: PreferenceKind, target_frac: f64) -> usize {
        assert!((0.0..1.0).contains(&target_frac), "fraction must be in (0,1)");
        (-(1.0 - target_frac).ln() * kind.pairs_scale()).ceil() as usize
    }

    /// The algorithm kind.
    pub fn kind(&self) -> PreferenceKind {
        self.kind
    }
}

impl PromptOptimizer for PreferenceTuned {
    fn name(&self) -> &str {
        &self.name
    }

    /// Preference tuning changes the model, not the prompt.
    fn optimize(&self, prompt: &str) -> String {
        prompt.to_string()
    }

    fn requires_human_labels(&self) -> bool {
        true
    }

    fn llm_agnostic(&self) -> bool {
        false // the tuned weights belong to one model
    }

    fn task_agnostic(&self) -> bool {
        true
    }

    fn training_pairs(&self) -> Option<usize> {
        Some(self.pairs_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_consumption_matches_figure7() {
        assert_eq!(PreferenceKind::Ppo.documented_pairs(), 77_000);
        assert_eq!(PreferenceKind::Dpo.documented_pairs(), 170_000);
    }

    #[test]
    fn prompt_is_untouched() {
        let t = PreferenceTuned::tune(PreferenceKind::Ppo, "gpt-3.5-turbo-1106", 1000);
        assert_eq!(t.optimize("hello"), "hello");
    }

    #[test]
    fn capability_grows_and_saturates() {
        let cap = |n| {
            PreferenceTuned::tune(PreferenceKind::Dpo, "llama-2-7b-instruct", n).tuned_capability()
        };
        assert!(cap(10_000) > cap(0));
        assert!(cap(100_000) > cap(10_000));
        // Saturation: doubling huge data barely helps.
        assert!(cap(400_000) - cap(200_000) < 0.01);
        assert!(cap(400_000) <= 0.98);
    }

    #[test]
    fn dpo_needs_more_pairs_than_ppo_to_converge() {
        let ppo = PreferenceTuned::pairs_to_converge(PreferenceKind::Ppo, 0.95);
        let dpo = PreferenceTuned::pairs_to_converge(PreferenceKind::Dpo, 0.95);
        assert!(dpo > ppo, "{dpo} vs {ppo}");
        // Same order of magnitude as the documented numbers.
        assert!((40_000..=120_000).contains(&ppo), "ppo {ppo}");
        assert!((100_000..=260_000).contains(&dpo), "dpo {dpo}");
    }

    #[test]
    fn flexibility_metadata_matches_table3() {
        let t = PreferenceTuned::tune(PreferenceKind::Dpo, "qwen2-72b-chat", 170_000);
        assert!(t.requires_human_labels());
        assert!(!t.llm_agnostic());
        assert!(t.task_agnostic());
        assert_eq!(t.training_pairs(), Some(170_000));
    }
}

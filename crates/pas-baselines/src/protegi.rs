//! ProTeGi / APO — prompt optimization with "textual gradients" and beam
//! search (Pryzant et al., 2023).
//!
//! The original computes a natural-language "gradient" — a critique of the
//! current prompt based on where it fails on labeled data — and expands a
//! beam with edits that address the critique. The workspace version keeps
//! that exact structure: the gradient is the multiset of *required aspects
//! missing from failing responses*, and an edit adds the most-missed aspect
//! to the instruction. Like OPRO, the result is task- and model-specific
//! and needs labeled data (Table 3's three ✗s).

use pas_core::PromptOptimizer;
use pas_llm::teacher::realize_complement;
use pas_llm::world::{detect_aspects, Aspect, AspectSet, Category, PromptMeta};
use pas_llm::{ChatModel, SimLlm};

use crate::score::labeled_score;

/// ProTeGi search parameters.
#[derive(Debug, Clone)]
pub struct ProTeGiConfig {
    /// Gradient/expansion rounds.
    pub rounds: usize,
    /// Beam width.
    pub beam_width: usize,
}

impl Default for ProTeGiConfig {
    fn default() -> Self {
        ProTeGiConfig { rounds: 4, beam_width: 3 }
    }
}

/// A per-task instruction found by ProTeGi.
#[derive(Debug, Clone)]
pub struct ProTeGi {
    instruction: String,
    category: Category,
    target_model: String,
    train_score: f32,
}

impl ProTeGi {
    /// Runs gradient-guided beam search for one `category` against one
    /// target `model` on the labeled `train` split.
    pub fn optimize_for_task(
        config: &ProTeGiConfig,
        category: Category,
        model: &SimLlm,
        train: &[(String, PromptMeta)],
    ) -> ProTeGi {
        let mut beam: Vec<(AspectSet, f32)> =
            vec![(AspectSet::EMPTY, score_set(model, train, AspectSet::EMPTY))];

        for _ in 0..config.rounds {
            let mut expanded = beam.clone();
            for &(set, _) in &beam {
                // "Textual gradient": which required aspects are missing
                // from this candidate's failing responses?
                let mut missing_counts = [0usize; 10];
                let instr = instruction_text(set);
                for (prompt, meta) in train {
                    let response = model.chat(&format!("{prompt} {instr}"));
                    let covered = detect_aspects(&response);
                    for a in meta.required.minus(covered).iter() {
                        missing_counts[a.index()] += 1;
                    }
                }
                // Edit: add the most-missed aspect not already requested.
                let mut order: Vec<usize> = (0..missing_counts.len()).collect();
                order.sort_by(|&x, &y| missing_counts[y].cmp(&missing_counts[x]));
                for idx in order.into_iter().take(2) {
                    if missing_counts[idx] == 0 {
                        break;
                    }
                    let aspect = Aspect::from_index(idx).expect("index in range");
                    if set.contains(aspect) || set.len() >= 3 {
                        continue;
                    }
                    let mut next = set;
                    next.insert(aspect);
                    expanded.push((next, score_set(model, train, next)));
                }
            }
            expanded.sort_by(|a, b| b.1.total_cmp(&a.1));
            expanded.dedup_by_key(|e| e.0);
            expanded.truncate(config.beam_width);
            beam = expanded;
        }

        let (best, train_score) = beam.into_iter().next().expect("beam non-empty");
        ProTeGi {
            instruction: instruction_text(best),
            category,
            target_model: model.name().to_string(),
            train_score,
        }
    }

    /// The optimized instruction suffix.
    pub fn instruction(&self) -> &str {
        &self.instruction
    }

    /// Train-split score achieved.
    pub fn train_score(&self) -> f32 {
        self.train_score
    }

    /// The category the instruction was optimized for.
    pub fn category(&self) -> Category {
        self.category
    }

    /// The model the instruction was optimized against.
    pub fn target_model(&self) -> &str {
        &self.target_model
    }
}

fn instruction_text(aspects: AspectSet) -> String {
    if aspects.is_empty() {
        String::new()
    } else {
        realize_complement("the task at hand", aspects)
    }
}

fn score_set(model: &SimLlm, train: &[(String, PromptMeta)], set: AspectSet) -> f32 {
    if train.is_empty() {
        return 0.0;
    }
    let instr = instruction_text(set);
    let total: f32 = train
        .iter()
        .map(|(prompt, meta)| {
            let input = if instr.is_empty() { prompt.clone() } else { format!("{prompt} {instr}") };
            labeled_score(meta, &model.chat(&input))
        })
        .sum();
    total / train.len() as f32
}

impl PromptOptimizer for ProTeGi {
    fn name(&self) -> &str {
        "ProTeGi"
    }

    fn optimize(&self, prompt: &str) -> String {
        if self.instruction.is_empty() {
            prompt.to_string()
        } else {
            format!("{prompt} {}", self.instruction)
        }
    }

    fn requires_human_labels(&self) -> bool {
        true
    }

    fn llm_agnostic(&self) -> bool {
        false
    }

    fn task_agnostic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::World;
    use pas_text::lang::Language;
    use std::sync::Arc;

    fn train_split(n: usize) -> (Vec<(String, PromptMeta)>, Arc<World>) {
        let mut world = World::new();
        let mut items = Vec::new();
        for i in 0..n {
            let prompt = format!("Evaluate the adoption barriers scenario number {i}");
            let meta = PromptMeta {
                category: Category::Analysis,
                required: [Aspect::Depth, Aspect::Completeness].into_iter().collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.3,
                trap: false,
                language: Language::English,
                topic: "adoption barriers".into(),
            };
            world.register(&prompt, meta.clone());
            items.push((prompt, meta));
        }
        (items, Arc::new(world))
    }

    #[test]
    fn gradient_search_improves_over_empty_instruction() {
        let (train, world) = train_split(25);
        let model = SimLlm::named("gpt-4-0613", world);
        let baseline = score_set(&model, &train, AspectSet::EMPTY);
        let pt = ProTeGi::optimize_for_task(
            &ProTeGiConfig::default(),
            Category::Analysis,
            &model,
            &train,
        );
        assert!(pt.train_score() > baseline, "{} vs {baseline}", pt.train_score());
        assert!(!pt.instruction().is_empty());
    }

    #[test]
    fn instruction_addresses_missing_aspects() {
        let (train, world) = train_split(25);
        let model = SimLlm::named("gpt-3.5-turbo-1106", world);
        let pt = ProTeGi::optimize_for_task(
            &ProTeGiConfig::default(),
            Category::Analysis,
            &model,
            &train,
        );
        let requested = detect_aspects(pt.instruction());
        let needed: AspectSet = [Aspect::Depth, Aspect::Completeness].into_iter().collect();
        assert!(!requested.intersection(needed).is_empty(), "{:?}", pt.instruction());
    }

    #[test]
    fn flexibility_metadata_matches_table3() {
        let (train, world) = train_split(5);
        let model = SimLlm::named("gpt-4-0613", world);
        let pt = ProTeGi::optimize_for_task(
            &ProTeGiConfig::default(),
            Category::Analysis,
            &model,
            &train,
        );
        assert!(pt.requires_human_labels());
        assert!(!pt.llm_agnostic());
        assert!(!pt.task_agnostic());
        assert_eq!(pt.target_model(), "gpt-4-0613");
    }

    #[test]
    fn empty_train_split_is_safe() {
        let (_, world) = train_split(1);
        let model = SimLlm::named("gpt-4-0613", world);
        let pt =
            ProTeGi::optimize_for_task(&ProTeGiConfig::default(), Category::Analysis, &model, &[]);
        assert_eq!(pt.optimize("plain prompt"), "plain prompt");
    }
}

//! Labeled-split scoring shared by the iterative optimizers.
//!
//! OPRO and ProTeGi both optimize against ground-truth labels on a training
//! split — the human-labeled dependence Table 3 charges them with. The
//! score reads only the response *text*: required-aspect coverage plus the
//! correctness marker.

use pas_llm::simllm::CORRECT_MARKER;
use pas_llm::world::{detect_aspects, PromptMeta};

/// Score of `response` against the labeled `meta`, in `[0, 1]`.
pub fn labeled_score(meta: &PromptMeta, response: &str) -> f32 {
    let required = meta.required;
    let coverage = if required.is_empty() {
        1.0
    } else {
        detect_aspects(response).intersection(required).len() as f32 / required.len() as f32
    };
    let correct = if response.contains(CORRECT_MARKER) { 1.0 } else { 0.0 };
    0.6 * coverage + 0.4 * correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::{Aspect, AspectSet, Category};
    use pas_text::lang::Language;

    fn meta() -> PromptMeta {
        PromptMeta {
            category: Category::Math,
            required: [Aspect::StepByStep].into_iter().collect(),
            explicit: AspectSet::EMPTY,
            ambiguity: 0.2,
            trap: false,
            language: Language::English,
            topic: "test".into(),
        }
    }

    #[test]
    fn full_marks_for_covered_and_correct() {
        let resp = format!("Let us work step by step. {CORRECT_MARKER}.");
        assert!((labeled_score(&meta(), &resp) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_for_empty_response() {
        assert_eq!(labeled_score(&meta(), "irrelevant words only"), 0.0);
    }

    #[test]
    fn partial_credit_for_coverage_without_correctness() {
        let resp = "Let us work step by step through it.";
        assert!((labeled_score(&meta(), resp) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn empty_required_set_gives_coverage_credit() {
        let mut m = meta();
        m.required = AspectSet::EMPTY;
        assert!((labeled_score(&m, "anything") - 0.6).abs() < 1e-6);
    }
}

//! Zero-shot chain-of-thought (Kojima et al., 2022).
//!
//! The simplest manual prompt-engineering baseline: append "Let's think
//! step by step." Untrained, free, and useful mainly on reasoning-heavy
//! prompts — the extension bench compares it against PAS per category.

use pas_core::PromptOptimizer;

/// The zero-shot CoT appender.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroShotCot;

impl PromptOptimizer for ZeroShotCot {
    fn name(&self) -> &str {
        "Zero-shot CoT"
    }

    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} Let's think step by step.")
    }

    fn requires_human_labels(&self) -> bool {
        false
    }

    fn llm_agnostic(&self) -> bool {
        true
    }

    fn task_agnostic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::{detect_aspects, Aspect};

    #[test]
    fn appends_the_magic_phrase() {
        let out = ZeroShotCot.optimize("Solve this riddle.");
        assert!(out.starts_with("Solve this riddle."));
        assert!(detect_aspects(&out).contains(Aspect::StepByStep));
    }

    #[test]
    fn flexibility_metadata() {
        assert!(!ZeroShotCot.requires_human_labels());
        assert!(ZeroShotCot.llm_agnostic());
        assert!(ZeroShotCot.task_agnostic());
        assert!(ZeroShotCot.training_pairs().is_none());
    }
}

//! Baseline automatic-prompt-engineering methods.
//!
//! Every method the paper compares against (Tables 1–3, Figure 7),
//! implemented against the common [`pas_core::PromptOptimizer`] trait:
//!
//! - [`bpo`] — Black-box Prompt Optimization (Cheng et al., 2023): the
//!   previous SoTA. A really-trained rewrite model whose training labels
//!   carry human-preference noise and whose rewrites occasionally drift
//!   from the original intent — the instability the paper observes.
//! - [`preference`] — PPO / DPO surrogates: they tune the *model*, not the
//!   prompt, so they are LLM-specific; used for the flexibility matrix and
//!   the data-consumption comparison.
//! - [`opro`] — OPRO (Yang et al., 2023): LLM-as-optimizer over candidate
//!   instructions, scored on a labeled train split of one task.
//! - [`protegi`] — ProTeGi/APO (Pryzant et al., 2023): textual-gradient
//!   beam search over instruction edits.
//! - [`cot`] — zero-shot chain-of-thought ("Let's think step by step").

pub mod bpo;
pub mod cot;
pub mod opro;
pub mod preference;
pub mod protegi;
pub mod score;

pub use bpo::{Bpo, BpoConfig};
pub use cot::ZeroShotCot;
pub use opro::{Opro, OproConfig};
pub use preference::{PreferenceKind, PreferenceTuned};
pub use protegi::{ProTeGi, ProTeGiConfig};

//! Record and dataset types.

use serde::{Deserialize, Serialize};

use pas_llm::{Category, PromptMeta};

/// Origin corpus of a raw prompt (the paper's two sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// Synthetic stand-in for LMSYS-Chat-1M.
    LmsysChat,
    /// Synthetic stand-in for WildChat.
    WildChat,
}

/// One raw prompt drawn from a source corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PromptRecord {
    /// Unique id within its corpus.
    pub id: u64,
    /// The prompt text a user would have typed.
    pub text: String,
    /// Latent ground truth (never shown to trained models).
    pub meta: PromptMeta,
    /// Which corpus it came from.
    pub source: Source,
    /// Latent writing quality in `[0, 1]`; junk prompts score low. The
    /// quality *filter* judges text, not this field — it exists for
    /// measuring filter precision/recall.
    pub latent_quality: f32,
}

/// One (prompt, complementary prompt) training pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairRecord {
    /// The user prompt.
    pub prompt: String,
    /// The complementary prompt (the paper's "APE").
    pub complement: String,
    /// Category assigned by the classifier during selection.
    pub category: Category,
}

/// The prompt-complementary dataset `D_generated` of §3.3.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairDataset {
    /// The pairs, generation order.
    pub pairs: Vec<PairRecord>,
}

impl PairDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        PairDataset::default()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs in one category.
    pub fn in_category(&self, category: Category) -> impl Iterator<Item = &PairRecord> {
        self.pairs.iter().filter(move |p| p.category == category)
    }

    /// Counts per category, index-aligned with [`Category::ALL`].
    pub fn category_counts(&self) -> [usize; 14] {
        let mut counts = [0usize; 14];
        for p in &self.pairs {
            counts[p.category.index()] += 1;
        }
        counts
    }

    /// A deterministic subset of the first `n` pairs (for learning-curve
    /// sweeps); clamps to the dataset size.
    pub fn take(&self, n: usize) -> PairDataset {
        PairDataset { pairs: self.pairs.iter().take(n).cloned().collect() }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serializes")
    }

    /// Restores from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the dataset as JSON Lines (one pair per line), the
    /// interchange format fine-tuning stacks expect.
    pub fn save_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for pair in &self.pairs {
            serde_json::to_writer(&mut w, pair)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a dataset from JSON Lines produced by [`Self::save_jsonl`].
    /// Blank lines are skipped; a malformed line is an error.
    pub fn load_jsonl<R: std::io::BufRead>(r: R) -> std::io::Result<PairDataset> {
        let mut pairs = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let pair: PairRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            pairs.push(pair);
        }
        Ok(PairDataset { pairs })
    }

    /// Convenience wrapper: saves to a filesystem path.
    pub fn save_jsonl_path<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        self.save_jsonl(std::io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Convenience wrapper: loads from a filesystem path.
    pub fn load_jsonl_path<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<PairDataset> {
        Self::load_jsonl(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cat: Category, i: usize) -> PairRecord {
        PairRecord {
            prompt: format!("prompt {i}"),
            complement: format!("complement {i}"),
            category: cat,
        }
    }

    #[test]
    fn category_counts_align_with_all() {
        let mut ds = PairDataset::new();
        ds.pairs.push(pair(Category::Coding, 0));
        ds.pairs.push(pair(Category::Coding, 1));
        ds.pairs.push(pair(Category::Math, 2));
        let counts = ds.category_counts();
        assert_eq!(counts[Category::Coding.index()], 2);
        assert_eq!(counts[Category::Math.index()], 1);
        assert_eq!(counts.iter().sum::<usize>(), ds.len());
    }

    #[test]
    fn in_category_filters() {
        let mut ds = PairDataset::new();
        ds.pairs.push(pair(Category::Coding, 0));
        ds.pairs.push(pair(Category::Math, 1));
        assert_eq!(ds.in_category(Category::Math).count(), 1);
        assert_eq!(ds.in_category(Category::Chitchat).count(), 0);
    }

    #[test]
    fn take_clamps() {
        let mut ds = PairDataset::new();
        ds.pairs.push(pair(Category::Coding, 0));
        assert_eq!(ds.take(10).len(), 1);
        assert_eq!(ds.take(0).len(), 0);
    }

    #[test]
    fn json_round_trip() {
        let mut ds = PairDataset::new();
        ds.pairs.push(pair(Category::Writing, 7));
        let back = PairDataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(back.pairs, ds.pairs);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut ds = PairDataset::new();
        for i in 0..5 {
            ds.pairs.push(pair(Category::Coding, i));
        }
        let mut buf = Vec::new();
        ds.save_jsonl(&mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 5);
        let back = PairDataset::load_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.pairs, ds.pairs);
    }

    #[test]
    fn jsonl_skips_blank_lines_rejects_garbage() {
        let text = "\n\n";
        let ds = PairDataset::load_jsonl(std::io::Cursor::new(text)).unwrap();
        assert!(ds.is_empty());
        let bad = "not json at all\n";
        assert!(PairDataset::load_jsonl(std::io::Cursor::new(bad)).is_err());
    }
}

//! The synthetic prompt corpus — the workspace's LMSYS-Chat-1M / WildChat.
//!
//! A seeded generator emits prompts with the statistical structure the
//! selection pipeline must cope with: a 14-category mix skewed toward Q&A
//! and Coding (matching Figure 6), near-duplicates, junk entries, explicit
//! constraint phrases, and occasional logic-trap questions. Every generated
//! prompt's latent [`PromptMeta`] is registered in a [`World`] so simulated
//! models can later "understand" it.

use rand::rngs::StdRng;
use rand::RngExt;

use pas_llm::world::{detect_aspects, Aspect, AspectSet, Category, PromptMeta, World};
use pas_text::lang::Language;
use pas_text::top_keywords;

use crate::schema::{PromptRecord, Source};

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of records to emit (including duplicates and junk).
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of records that re-emit an earlier prompt with surface noise.
    pub dup_rate: f64,
    /// Fraction of records that are junk (low-quality noise).
    pub junk_rate: f64,
    /// Fraction of fresh records written in Chinese (LMSYS-Chat-1M is
    /// heavily bilingual; the critic's language-consistency rule needs
    /// cross-language traffic to matter).
    pub zh_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { size: 2000, seed: 42, dup_rate: 0.18, junk_rate: 0.12, zh_rate: 0.10 }
    }
}

/// A generated corpus: records plus the world holding their latent metadata.
pub struct Corpus {
    /// The generated prompt records.
    pub records: Vec<PromptRecord>,
    /// Latent metadata registry for simulated models.
    pub world: World,
}

/// What record `id` will be, decided cheaply up front so the expensive text
/// construction can run in parallel.
enum RecordPlan {
    /// Low-quality noise.
    Junk,
    /// Surface variant of the fresh record at index `src`.
    Dup { src: usize },
    /// Fresh English prompt.
    Fresh,
    /// Fresh Chinese prompt.
    FreshZh,
}

impl Corpus {
    /// Generates a corpus.
    ///
    /// Deterministic-parallel in three phases. Each record owns an RNG
    /// derived from `(seed, id)` via [`pas_par::rng_for`], so no draw order
    /// depends on scheduling:
    ///
    /// 1. **Plan** (sequential, cheap): each record's RNG rolls its kind;
    ///    duplicates pick a source among the fresh records planned so far.
    /// 2. **Build** (parallel): fresh and junk records are constructed
    ///    concurrently — each a pure function of `(id, its RNG)` — then
    ///    duplicates, which only read their (always fresh) source record.
    /// 3. **Register** (sequential): world registration in id order.
    ///
    /// The output is bit-identical at any `--threads` setting.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        // Phase 1: plan.
        let mut plans: Vec<(RecordPlan, StdRng)> = Vec::with_capacity(config.size);
        let mut fresh_ids: Vec<usize> = Vec::new();
        for id in 0..config.size {
            let mut rng = pas_par::rng_for(config.seed, id as u64);
            let roll: f64 = rng.random();
            let plan = if roll < config.junk_rate {
                RecordPlan::Junk
            } else if roll < config.junk_rate + config.dup_rate && !fresh_ids.is_empty() {
                RecordPlan::Dup { src: fresh_ids[rng.random_range(0..fresh_ids.len())] }
            } else if rng.random::<f64>() < config.zh_rate {
                fresh_ids.push(id);
                RecordPlan::FreshZh
            } else {
                fresh_ids.push(id);
                RecordPlan::Fresh
            };
            plans.push((plan, rng));
        }

        // Phase 2a: build the independent records in parallel.
        let built: Vec<Option<PromptRecord>> = pas_par::par_map(&plans, |id, (plan, rng)| {
            let mut rng = rng.clone();
            match plan {
                RecordPlan::Junk => Some(junk_record(id as u64, &mut rng)),
                RecordPlan::Fresh => Some(fresh_record(id as u64, &mut rng)),
                RecordPlan::FreshZh => Some(fresh_record_zh(id as u64, &mut rng)),
                RecordPlan::Dup { .. } => None,
            }
        });
        // Phase 2b: build duplicates, reading their fresh sources.
        let dups: Vec<Option<PromptRecord>> = pas_par::par_map(&plans, |id, (plan, rng)| {
            let RecordPlan::Dup { src } = plan else { return None };
            let mut rng = rng.clone();
            let base = built[*src].as_ref().expect("duplicate sources are fresh records");
            let text = surface_variant(&base.text, &mut rng);
            Some(PromptRecord {
                id: id as u64,
                text,
                meta: base.meta.clone(),
                source: pick_source(&mut rng),
                latent_quality: base.latent_quality,
            })
        });

        // Phase 3: register in id order. Junk stays unregistered noise; a
        // near-duplicate is the same request, so its variant text is
        // registered too in case the variant changed the leading words.
        let mut records: Vec<PromptRecord> = Vec::with_capacity(config.size);
        let mut world = World::new();
        for (plan, rec) in plans.iter().zip(built.into_iter().zip(dups)) {
            let rec = match rec {
                (Some(r), None) => r,
                (None, Some(r)) => r,
                _ => unreachable!("each id built exactly once"),
            };
            if !matches!(plan.0, RecordPlan::Junk) {
                world.register(&rec.text, rec.meta.clone());
            }
            records.push(rec);
        }
        Corpus { records, world }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Category sampling weights (out of their sum), Q&A and Coding heaviest to
/// match Figure 6's distribution.
const CATEGORY_WEIGHTS: [(Category, u32); 14] = [
    (Category::QuestionAnswering, 16),
    (Category::Coding, 15),
    (Category::Writing, 8),
    (Category::Math, 7),
    (Category::Reasoning, 7),
    (Category::Translation, 6),
    (Category::Summarization, 6),
    (Category::Roleplay, 5),
    (Category::Recommendation, 6),
    (Category::Knowledge, 7),
    (Category::Analysis, 6),
    (Category::Creative, 5),
    (Category::Brainstorming, 4),
    (Category::Chitchat, 2),
];

fn pick_category(rng: &mut StdRng) -> Category {
    let total: u32 = CATEGORY_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut target = rng.random_range(0..total);
    for &(c, w) in &CATEGORY_WEIGHTS {
        if target < w {
            return c;
        }
        target -= w;
    }
    Category::QuestionAnswering
}

fn pick_source(rng: &mut StdRng) -> Source {
    if rng.random::<f32>() < 0.6 {
        Source::LmsysChat
    } else {
        Source::WildChat
    }
}

/// Topics per category; each is a phrase whose content words become the
/// prompt's topic key.
fn topics(category: Category) -> &'static [&'static str] {
    match category {
        Category::QuestionAnswering => &[
            "blood pressure during blood loss",
            "photosynthesis in desert plants",
            "monetary policy and inflation",
            "volcanic eruption warning signs",
            "antibiotic resistance mechanisms",
            "glacier formation timescales",
            "satellite orbital decay",
            "caffeine metabolism in humans",
        ],
        Category::Coding => &[
            "cache eviction policy for a buffer pool",
            "parsing csv files with quoted fields",
            "async task scheduling in a web server",
            "binary search tree rebalancing",
            "memory leak in a long running daemon",
            "database index selection strategy",
            "rate limiter implementation",
            "lock free queue design",
        ],
        Category::Writing => &[
            "resignation letter to a difficult manager",
            "grant proposal for river cleanup",
            "product launch announcement",
            "wedding speech for an old friend",
            "cover letter for a data engineering role",
            "apology email to a client",
        ],
        Category::Math => &[
            "compound interest over decades",
            "probability of shared birthdays",
            "area under a parabola",
            "train speed and meeting time puzzles",
            "prime factorization shortcuts",
            "expected value of dice games",
        ],
        Category::Reasoning => &[
            "birds on a tree after a gunshot",
            "candles burning at different rates",
            "siblings ages riddle",
            "rivers crossing with limited boat seats",
            "coins weighing with a balance scale",
            "light switches and bulbs upstairs",
        ],
        Category::Translation => &[
            "business contract clauses",
            "restaurant menu descriptions",
            "medical consent forms",
            "poetry preserving meter",
            "software error messages",
            "historical speech excerpts",
        ],
        Category::Summarization => &[
            "quarterly earnings call transcript",
            "climate panel assessment report",
            "novel chapter with three subplots",
            "city council meeting minutes",
            "clinical trial results paper",
            "podcast interview about startups",
        ],
        Category::Roleplay => &[
            "a ship captain in a storm",
            "a medieval blacksmith teaching an apprentice",
            "a detective interviewing a witness",
            "a museum guide for dinosaurs",
            "a starship engineer during an emergency",
            "a chess grandmaster coaching",
        ],
        Category::Recommendation => &[
            "science fiction novels for teenagers",
            "budget laptops for programming",
            "hiking trails near mountain lakes",
            "board games for large families",
            "documentaries about deep oceans",
            "podcasts on behavioural economics",
        ],
        Category::Knowledge => &[
            "the silk road trade routes",
            "the printing press and literacy",
            "the human immune response",
            "plate tectonics evidence",
            "the french revolution causes",
            "the development of calculus",
            "boiling water quickly in ancient times",
            "food preservation before refrigeration",
        ],
        Category::Analysis => &[
            "remote work effects on productivity",
            "electric vehicle adoption barriers",
            "social media and attention spans",
            "urban housing price drivers",
            "renewable energy grid stability",
            "streaming services market saturation",
        ],
        Category::Creative => &[
            "a poem about the autumn moon",
            "a short story set in a lighthouse",
            "song lyrics about leaving home",
            "a fable with a clever fox",
            "a haiku sequence about rain",
            "an opening scene on a night train",
        ],
        Category::Brainstorming => &[
            "fundraiser ideas for a school library",
            "names for a coffee subscription",
            "icebreakers for remote teams",
            "uses for empty glass jars",
            "features for a habit tracking app",
            "themes for a science festival",
        ],
        Category::Chitchat => &[
            "how the weekend went",
            "favourite comfort food",
            "weather this week",
            "plans for the holidays",
        ],
    }
}

/// Prompt templates per category; `{t}` is the topic slot.
fn templates(category: Category) -> &'static [&'static str] {
    match category {
        Category::QuestionAnswering => &[
            "Does {t} work the way most people assume?",
            "What actually happens with {t}?",
            "Can you explain {t} to me?",
        ],
        Category::Coding => &[
            "How should I implement {t}?",
            "My code for {t} keeps failing, what should I check?",
            "What is the best approach to {t} in a production system?",
        ],
        Category::Writing => {
            &["Help me write {t}.", "Draft {t} for me.", "I need to write {t}, where do I start?"]
        }
        Category::Math => &[
            "How do I solve problems about {t}?",
            "Walk me through {t}.",
            "What is the trick to {t}?",
        ],
        Category::Reasoning => &[
            "Here is a puzzle about {t}. What is the answer?",
            "Can you solve this riddle about {t}?",
            "Think about {t} and tell me the outcome.",
            "If you consider {t}, how many are left in the end?",
            "Quick riddle about {t}. What is the correct answer?",
        ],
        Category::Translation => &[
            "Translate {t} into French.",
            "How would you translate {t} accurately?",
            "Please translate {t} keeping the meaning.",
        ],
        Category::Summarization => &[
            "Summarize {t} for me.",
            "Give me the key points of {t}.",
            "Condense {t} into a short brief.",
        ],
        Category::Roleplay => &[
            "Pretend you are {t} and speak to me.",
            "Act as {t} for this conversation.",
            "You are {t}. Stay in character.",
        ],
        Category::Recommendation => &[
            "Recommend {t}.",
            "What are the best options for {t}?",
            "I am looking for {t}, any suggestions?",
        ],
        Category::Knowledge => &[
            "Tell me about {t}.",
            "What should I know about {t}?",
            "Give me an overview of {t}.",
            "How to deal with {t}?",
            "How did people manage {t}?",
        ],
        Category::Analysis => &[
            "Analyze {t}.",
            "What are the main factors behind {t}?",
            "Evaluate the arguments around {t}.",
        ],
        Category::Creative => {
            &["Write {t}.", "Compose {t} for me.", "Create {t} with vivid imagery."]
        }
        Category::Brainstorming => {
            &["Brainstorm {t}.", "Give me ideas for {t}.", "List creative options for {t}."]
        }
        Category::Chitchat => &["Let's chat about {t}.", "Tell me something fun about {t}."],
    }
}

/// Per-category base probabilities that an ideal answer requires each aspect.
fn required_aspects(category: Category, trap: bool, rng: &mut StdRng) -> AspectSet {
    use Aspect::*;
    let table: &[(Aspect, f32)] = match category {
        Category::QuestionAnswering => {
            &[(Depth, 0.7), (Context, 0.5), (Completeness, 0.4), (Examples, 0.2)]
        }
        Category::Coding => {
            &[(StepByStep, 0.6), (Examples, 0.6), (Completeness, 0.5), (FormatSpec, 0.3)]
        }
        Category::Writing => {
            &[(StyleConstraint, 0.8), (Audience, 0.5), (FormatSpec, 0.3), (Depth, 0.2)]
        }
        Category::Math => &[(StepByStep, 0.9), (Completeness, 0.4), (Examples, 0.2)],
        Category::Reasoning => &[(StepByStep, 0.8), (Completeness, 0.3), (Context, 0.2)],
        Category::Translation => &[(StyleConstraint, 0.6), (Context, 0.5), (Completeness, 0.3)],
        Category::Summarization => &[(Conciseness, 0.8), (Completeness, 0.5), (FormatSpec, 0.3)],
        Category::Roleplay => &[(StyleConstraint, 0.8), (Context, 0.4), (Audience, 0.3)],
        Category::Recommendation => {
            &[(Audience, 0.6), (Examples, 0.5), (Depth, 0.4), (Completeness, 0.3)]
        }
        Category::Knowledge => &[(Depth, 0.7), (Context, 0.6), (Examples, 0.3)],
        Category::Analysis => {
            &[(Depth, 0.8), (Completeness, 0.6), (StepByStep, 0.3), (Examples, 0.3)]
        }
        Category::Creative => &[(StyleConstraint, 0.7), (Audience, 0.3), (FormatSpec, 0.2)],
        Category::Brainstorming => &[(Completeness, 0.6), (Examples, 0.5), (FormatSpec, 0.3)],
        Category::Chitchat => &[(Conciseness, 0.5), (Context, 0.2)],
    };
    let mut set = AspectSet::EMPTY;
    for &(a, p) in table {
        if rng.random::<f32>() < p {
            set.insert(a);
        }
    }
    if trap {
        set.insert(Aspect::TrapWarning);
        set.insert(Aspect::StepByStep);
    }
    if set.is_empty() {
        set.insert(Depth);
    }
    set
}

fn fresh_record(id: u64, rng: &mut StdRng) -> PromptRecord {
    let category = pick_category(rng);
    let topic_list = topics(category);
    let topic_phrase = topic_list[rng.random_range(0..topic_list.len())];
    let template_list = templates(category);
    let template = template_list[rng.random_range(0..template_list.len())];
    let mut text = template.replace("{t}", topic_phrase);
    // Variant marker keeps same-topic prompts from colliding as duplicates.
    if rng.random::<f32>() < 0.5 {
        text = format!("{text} (case {id})");
    }

    let trap = category == Category::Reasoning && rng.random::<f32>() < 0.45;
    let required_base = required_aspects(category, trap, rng);

    // Make some required aspects explicit in the prompt text.
    let mut stated = Vec::new();
    for a in required_base.iter() {
        if a != Aspect::TrapWarning && rng.random::<f32>() < 0.35 {
            stated.push(a.request_phrase());
        }
    }
    if !stated.is_empty() {
        text = format!("{text} Please also {}.", stated.join(", and "));
    }

    // Ground the sets in the realized text: whatever the text mentions is
    // explicit, and everything explicit is also required.
    let explicit = detect_aspects(&text);
    let required = required_base.union(explicit);

    let topic = top_keywords(topic_phrase, 3).join(" ");
    let meta = PromptMeta {
        category,
        required,
        explicit,
        ambiguity: 0.2 + 0.6 * rng.random::<f32>(),
        trap,
        language: Language::English,
        topic,
    };
    PromptRecord {
        id,
        text,
        meta,
        source: pick_source(rng),
        latent_quality: 0.6 + 0.4 * rng.random::<f32>(),
    }
}

/// Chinese topics per category (tokens space-separated so the whole
/// keyword/overlap machinery works unchanged).
fn topics_zh(category: Category) -> &'static [&'static str] {
    match category {
        Category::QuestionAnswering => &[
            "失血 时 血压 的 变化",
            "沙漠 植物 的 光合作用",
            "咖啡因 在 人体 的 代谢",
            "抗生素 耐药 机制",
        ],
        Category::Knowledge => {
            &["丝绸之路 的 贸易 路线", "印刷术 与 识字率", "免疫 系统 的 应答", "微积分 的 发展"]
        }
        Category::Translation => {
            &["商务 合同 条款", "餐厅 菜单 描述", "医疗 知情 同意书", "软件 错误 信息"]
        }
        Category::Math => &["复利 的 长期 计算", "生日 相同 的 概率", "骰子 游戏 的 期望值"],
        _ => &["日常 生活 的 小事", "本周 的 天气"],
    }
}

fn templates_zh(category: Category) -> &'static [&'static str] {
    match category {
        Category::QuestionAnswering => &["{t} 到底 是 怎样 的 ？", "请 解释 {t} 。"],
        Category::Knowledge => &["请 介绍 {t} 。", "我 想 了解 {t} 。"],
        Category::Translation => &["请 把 {t} 翻译 成 英文 。", "如何 准确 翻译 {t} ？"],
        Category::Math => &["{t} 应该 怎么 算 ？", "请 带 我 算一算 {t} 。"],
        _ => &["聊聊 {t} 吧 。"],
    }
}

/// Categories that have a Chinese template set.
const ZH_CATEGORIES: [Category; 4] =
    [Category::QuestionAnswering, Category::Knowledge, Category::Translation, Category::Math];

fn fresh_record_zh(id: u64, rng: &mut StdRng) -> PromptRecord {
    let category = ZH_CATEGORIES[rng.random_range(0..ZH_CATEGORIES.len())];
    let topic_list = topics_zh(category);
    let topic_phrase = topic_list[rng.random_range(0..topic_list.len())];
    let template_list = templates_zh(category);
    let template = template_list[rng.random_range(0..template_list.len())];
    let mut text = template.replace("{t}", topic_phrase);
    if rng.random::<f32>() < 0.5 {
        text = format!("{text}（第 {id} 例）");
    }

    let required_base = required_aspects(category, false, rng);
    let mut stated = Vec::new();
    for a in required_base.iter() {
        if a != Aspect::TrapWarning && rng.random::<f32>() < 0.35 {
            stated.push(a.request_phrase_zh());
        }
    }
    if !stated.is_empty() {
        text = format!("{text} 另外，{}。", stated.join("，"));
    }

    let explicit = detect_aspects(&text);
    let required = required_base.union(explicit);
    let topic = top_keywords(topic_phrase, 3).join(" ");
    let meta = PromptMeta {
        category,
        required,
        explicit,
        ambiguity: 0.2 + 0.6 * rng.random::<f32>(),
        trap: false,
        language: Language::Chinese,
        topic,
    };
    PromptRecord {
        id,
        text,
        meta,
        source: pick_source(rng),
        latent_quality: 0.6 + 0.4 * rng.random::<f32>(),
    }
}

fn junk_record(id: u64, rng: &mut StdRng) -> PromptRecord {
    const JUNK: &[&str] = &[
        "asdf asdf asdf",
        "??",
        "hello",
        "test test test test",
        "aaaaaa bbbb",
        "ok",
        ".",
        "qwerty uiop",
    ];
    let text = JUNK[rng.random_range(0..JUNK.len())].to_string();
    let meta = PromptMeta {
        category: Category::Chitchat,
        required: AspectSet::EMPTY,
        explicit: AspectSet::EMPTY,
        ambiguity: 1.0,
        trap: false,
        language: Language::English,
        topic: "noise".into(),
    };
    PromptRecord { id, text, meta, source: pick_source(rng), latent_quality: 0.05 }
}

/// Emits a surface variant of `text`: same request, different bytes.
fn surface_variant(text: &str, rng: &mut StdRng) -> String {
    match rng.random_range(0..4) {
        0 => format!("{text}!!"),
        1 => format!("please, {}", text.to_lowercase()),
        2 => text.to_uppercase(),
        _ => format!("{text} thanks"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(size: usize, seed: u64) -> Corpus {
        Corpus::generate(&CorpusConfig { size, seed, ..CorpusConfig::default() })
    }

    #[test]
    fn generates_requested_size() {
        let c = corpus(500, 1);
        assert_eq!(c.len(), 500);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = corpus(200, 9);
        let b = corpus(200, 9);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let gen = |threads| {
            pas_par::with_threads(threads, || {
                corpus(600, 9)
                    .records
                    .into_iter()
                    .map(|r| {
                        (
                            r.id,
                            r.text,
                            format!("{:?}", r.meta),
                            format!("{:?}", r.source),
                            r.latent_quality.to_bits(),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        };
        let serial = gen(1);
        assert_eq!(gen(2), serial);
        assert_eq!(gen(8), serial);
    }

    #[test]
    fn qa_and_coding_dominate() {
        let c = corpus(3000, 3);
        let mut counts = [0usize; 14];
        for r in &c.records {
            counts[r.meta.category.index()] += 1;
        }
        let qa = counts[Category::QuestionAnswering.index()];
        let coding = counts[Category::Coding.index()];
        let chitchat = counts[Category::Chitchat.index()];
        assert!(qa > chitchat, "{qa} vs {chitchat}");
        assert!(coding > counts[Category::Brainstorming.index()]);
    }

    #[test]
    fn contains_junk_and_duplicates() {
        let c = corpus(1000, 5);
        let junk = c.records.iter().filter(|r| r.latent_quality < 0.2).count();
        assert!(junk > 50, "junk count {junk}");
        // Duplicates: normalized texts colliding.
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for r in &c.records {
            if !seen.insert(pas_text::normalize_for_dedup(&r.text)) {
                dups += 1;
            }
        }
        assert!(dups > 30, "duplicate count {dups}");
    }

    #[test]
    fn explicit_subset_of_required_and_grounded_in_text() {
        let c = corpus(400, 7);
        for r in &c.records {
            assert!(
                r.meta.explicit.minus(r.meta.required).is_empty(),
                "explicit ⊆ required violated for {:?}",
                r.text
            );
            assert_eq!(
                detect_aspects(&r.text),
                r.meta.explicit,
                "explicit must equal detected for {:?}",
                r.text
            );
        }
    }

    #[test]
    fn world_resolves_generated_prompts() {
        let c = corpus(300, 11);
        let mut resolved = 0;
        for r in &c.records {
            if r.latent_quality < 0.2 {
                continue; // junk is unregistered noise
            }
            if c.world.lookup(&r.text).is_some() {
                resolved += 1;
            }
        }
        let quality = c.records.iter().filter(|r| r.latent_quality >= 0.2).count();
        assert!(resolved as f64 / quality as f64 > 0.95, "{resolved}/{quality} resolved");
    }

    #[test]
    fn traps_only_in_reasoning() {
        let c = corpus(2000, 13);
        for r in &c.records {
            if r.meta.trap {
                assert_eq!(r.meta.category, Category::Reasoning);
                assert!(r.meta.required.contains(Aspect::TrapWarning));
            }
        }
        assert!(c.records.iter().any(|r| r.meta.trap), "some traps exist");
    }
}

//! Dataset distribution reporting (Figure 6 of the paper).

use pas_llm::Category;

use crate::schema::PairDataset;

/// Summary statistics of a pair dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Total pairs.
    pub total: usize,
    /// Pairs per category, aligned with [`Category::ALL`].
    pub per_category: [usize; 14],
    /// Mean complement length in words.
    pub mean_complement_words: f64,
    /// Mean prompt length in words.
    pub mean_prompt_words: f64,
}

impl DatasetStats {
    /// Computes statistics for `dataset`.
    pub fn compute(dataset: &PairDataset) -> DatasetStats {
        let per_category = dataset.category_counts();
        let total = dataset.len();
        let (mut cw, mut pw) = (0usize, 0usize);
        for p in &dataset.pairs {
            cw += p.complement.split_whitespace().count();
            pw += p.prompt.split_whitespace().count();
        }
        let denom = total.max(1) as f64;
        DatasetStats {
            total,
            per_category,
            mean_complement_words: cw as f64 / denom,
            mean_prompt_words: pw as f64 / denom,
        }
    }

    /// Share of the dataset in `category`, in `[0, 1]`.
    pub fn share(&self, category: Category) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.per_category[category.index()] as f64 / self.total as f64
    }

    /// Renders the Figure 6 distribution as an ASCII bar chart.
    pub fn render_distribution(&self) -> String {
        let max = self.per_category.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "Prompt Complementary Dataset Distribution ({} pairs)\n",
            self.total
        ));
        for c in Category::ALL {
            let n = self.per_category[c.index()];
            let bar_len = (n * 40) / max;
            out.push_str(&format!("{:<16} {:>5}  {}\n", c.name(), n, "█".repeat(bar_len)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::PairRecord;

    fn dataset() -> PairDataset {
        let mut ds = PairDataset::new();
        for i in 0..6 {
            ds.pairs.push(PairRecord {
                prompt: format!("prompt number {i} with words"),
                complement: "please provide a detailed analysis in depth".into(),
                category: if i % 2 == 0 { Category::Coding } else { Category::Math },
            });
        }
        ds
    }

    #[test]
    fn counts_and_shares() {
        let stats = DatasetStats::compute(&dataset());
        assert_eq!(stats.total, 6);
        assert_eq!(stats.per_category[Category::Coding.index()], 3);
        assert!((stats.share(Category::Math) - 0.5).abs() < 1e-12);
        assert_eq!(stats.share(Category::Chitchat), 0.0);
    }

    #[test]
    fn mean_lengths() {
        let stats = DatasetStats::compute(&dataset());
        assert!((stats.mean_prompt_words - 5.0).abs() < 1e-9);
        assert!((stats.mean_complement_words - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_is_well_defined() {
        let stats = DatasetStats::compute(&PairDataset::new());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.mean_prompt_words, 0.0);
        assert_eq!(stats.share(Category::Coding), 0.0);
    }

    #[test]
    fn render_includes_every_category() {
        let text = DatasetStats::compute(&dataset()).render_distribution();
        for c in Category::ALL {
            assert!(text.contains(c.name()), "missing {c}");
        }
    }
}

//! Datasets and the PAS data pipelines.
//!
//! This crate implements §3.1–§3.3 of the paper:
//!
//! - [`schema`] — record types: raw prompts, (prompt, complement) pairs,
//!   datasets with JSON round-trips.
//! - [`corpus`] — the synthetic substitute for LMSYS-Chat-1M / WildChat: a
//!   seeded generator that emits realistic prompt text with latent
//!   [`pas_llm::PromptMeta`], near-duplicates, and junk, and registers
//!   everything in a [`pas_llm::World`].
//! - [`features`] — hashed text featurization shared by every trainable
//!   classifier in the workspace.
//! - [`select`] — the three-step data-selection pipeline (Figure 3a):
//!   HNSW deduplication → quality filtering → category classification with
//!   a really-trained classifier.
//! - [`golden`] — the curated golden few-shot examples per category
//!   (`D_golden` of Algorithm 1).
//! - [`genpipe`] — Algorithm 1 itself: few-shot generation, critic
//!   selection, and regeneration until correct (Figure 3b).
//! - [`stats`] — dataset distribution reporting (Figure 6).

pub mod corpus;
pub mod features;
pub mod genpipe;
pub mod golden;
pub mod schema;
pub mod select;
pub mod stats;

pub use corpus::{Corpus, CorpusConfig};
pub use features::{aspect_features, hashed_features, prompt_features, FEATURE_DIM};
pub use genpipe::{GenConfig, GenError, GenReport, Generator};
pub use golden::golden_for;
pub use schema::{PairDataset, PairRecord, PromptRecord, Source};
pub use select::{
    DedupBackend, SelectedPrompt, SelectionConfig, SelectionPipeline, SelectionReport,
};
pub use stats::DatasetStats;

//! The curated golden few-shot examples (`D_golden` of Algorithm 1).
//!
//! The paper keeps "4 to 5 pairs of few-shot examples for each category from
//! BaiChuan". These are the workspace equivalents: hand-written (prompt,
//! complementary prompt) pairs per category, in the Figure 4 style —
//! supplement only, methodology-focused, under 30 words.

use pas_llm::teacher::realize_complement;
use pas_llm::world::{Aspect, AspectSet, Category};

/// Returns the golden examples for `category` (always 4 pairs).
pub fn golden_for(category: Category) -> Vec<(String, String)> {
    let rows: [(&str, &[Aspect]); 4] = match category {
        Category::QuestionAnswering => [
            ("Does blood pressure increase or decrease when the body loses blood?",
             &[Aspect::Depth, Aspect::Context]),
            ("Why does bread rise in the oven?", &[Aspect::Depth, Aspect::Examples]),
            ("Is it dangerous to wake a sleepwalker?", &[Aspect::Context, Aspect::Completeness]),
            ("What causes northern lights?", &[Aspect::Depth, Aspect::Context]),
        ],
        Category::Coding => [
            ("How do I deduplicate a large csv file?", &[Aspect::StepByStep, Aspect::Examples]),
            ("My web server leaks memory overnight.", &[Aspect::StepByStep, Aspect::Completeness]),
            ("Implement an LRU cache.", &[Aspect::Examples, Aspect::FormatSpec]),
            ("How should I shard a user table?", &[Aspect::Depth, Aspect::Completeness]),
        ],
        Category::Writing => [
            ("Help me write a resignation letter.", &[Aspect::StyleConstraint, Aspect::Audience]),
            ("Draft a press release for our product.", &[Aspect::StyleConstraint, Aspect::FormatSpec]),
            ("Write a thank-you note to a mentor.", &[Aspect::StyleConstraint, Aspect::Conciseness]),
            ("Compose a complaint to my landlord.", &[Aspect::StyleConstraint, Aspect::Audience]),
        ],
        Category::Math => [
            ("What is 17 percent of 3400?", &[Aspect::StepByStep]),
            ("Two trains leave stations 300 km apart.", &[Aspect::StepByStep, Aspect::Completeness]),
            ("How many ways to arrange 5 books?", &[Aspect::StepByStep, Aspect::Examples]),
            ("Solve x squared minus 5x plus 6 equals zero.", &[Aspect::StepByStep]),
        ],
        Category::Reasoning => [
            ("If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?",
             &[Aspect::TrapWarning, Aspect::StepByStep]),
            ("A bat and a ball cost 1.10 together.", &[Aspect::TrapWarning, Aspect::StepByStep]),
            ("Three switches control three bulbs upstairs.", &[Aspect::StepByStep, Aspect::Completeness]),
            ("Which weighs more, a kilo of feathers or of steel?", &[Aspect::TrapWarning]),
        ],
        Category::Translation => [
            ("Translate this contract clause into German.", &[Aspect::StyleConstraint, Aspect::Context]),
            ("Translate the menu for tourists.", &[Aspect::Audience, Aspect::StyleConstraint]),
            ("Render this poem in English.", &[Aspect::StyleConstraint]),
            ("Translate the error message for users.", &[Aspect::Audience, Aspect::Conciseness]),
        ],
        Category::Summarization => [
            ("Summarize this earnings call transcript.", &[Aspect::Conciseness, Aspect::Completeness]),
            ("Give me the gist of this report.", &[Aspect::Conciseness, Aspect::FormatSpec]),
            ("Condense this meeting recording.", &[Aspect::Conciseness, Aspect::Completeness]),
            ("Summarize the chapter for revision.", &[Aspect::Conciseness, Aspect::Audience]),
        ],
        Category::Roleplay => [
            ("Pretend you are a ship captain in a storm.", &[Aspect::StyleConstraint, Aspect::Context]),
            ("Act as a job interviewer for a nursing role.", &[Aspect::StyleConstraint, Aspect::Audience]),
            ("You are a medieval blacksmith.", &[Aspect::StyleConstraint, Aspect::Context]),
            ("Play a detective interviewing me.", &[Aspect::StyleConstraint]),
        ],
        Category::Recommendation => [
            ("Recommend science fiction novels.", &[Aspect::Audience, Aspect::Examples]),
            ("Which laptop should I buy for coding?", &[Aspect::Depth, Aspect::Completeness]),
            ("Suggest hiking trails near the lakes.", &[Aspect::Audience, Aspect::Examples]),
            ("Pick board games for a family night.", &[Aspect::Audience, Aspect::Completeness]),
        ],
        Category::Knowledge => [
            ("Tell me about the silk road.", &[Aspect::Depth, Aspect::Context]),
            ("What should I know about plate tectonics?", &[Aspect::Depth, Aspect::Examples]),
            ("Give me an overview of the french revolution.", &[Aspect::Context, Aspect::Completeness]),
            ("Explain how vaccines train immunity.", &[Aspect::Depth, Aspect::Audience]),
        ],
        Category::Analysis => [
            ("Analyze remote work effects on productivity.", &[Aspect::Depth, Aspect::Completeness]),
            ("Evaluate electric vehicle adoption barriers.", &[Aspect::Depth, Aspect::StepByStep]),
            ("What drives urban housing prices?", &[Aspect::Depth, Aspect::Examples]),
            ("Assess streaming market saturation.", &[Aspect::Completeness, Aspect::Context]),
        ],
        Category::Creative => [
            ("Write a poem about the autumn moon.", &[Aspect::StyleConstraint]),
            ("Compose song lyrics about leaving home.", &[Aspect::StyleConstraint, Aspect::Audience]),
            ("Create a fable with a clever fox.", &[Aspect::StyleConstraint, Aspect::FormatSpec]),
            ("Write an opening scene on a night train.", &[Aspect::StyleConstraint, Aspect::Context]),
        ],
        Category::Brainstorming => [
            ("Brainstorm fundraiser ideas for the library.", &[Aspect::Completeness, Aspect::Examples]),
            ("Give me names for a coffee subscription.", &[Aspect::Completeness, Aspect::FormatSpec]),
            ("List icebreakers for remote teams.", &[Aspect::Examples, Aspect::Audience]),
            ("Ideas for reusing empty glass jars.", &[Aspect::Completeness, Aspect::Examples]),
        ],
        Category::Chitchat => [
            ("How was your weekend?", &[Aspect::Conciseness]),
            ("Tell me something fun about the weather.", &[Aspect::Conciseness, Aspect::Examples]),
            ("What's your favourite comfort food?", &[Aspect::Conciseness]),
            ("Any plans for the holidays?", &[Aspect::Conciseness, Aspect::Context]),
        ],
    };

    rows.into_iter()
        .map(|(prompt, aspects)| {
            let topic = pas_text::top_keywords(prompt, 3).join(" ");
            let set: AspectSet = aspects.iter().copied().collect();
            (prompt.to_string(), realize_complement(&topic, set))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::detect_aspects;
    use pas_llm::Critic;

    #[test]
    fn every_category_has_four_examples() {
        for c in Category::ALL {
            assert_eq!(golden_for(c).len(), 4, "{c}");
        }
    }

    #[test]
    fn golden_complements_pass_the_critic() {
        let critic = Critic::default();
        for c in Category::ALL {
            for (prompt, complement) in golden_for(c) {
                assert!(
                    critic.is_correct_pair(&prompt, &complement),
                    "{c}: {prompt:?} / {complement:?}"
                );
            }
        }
    }

    #[test]
    fn golden_complements_request_aspects() {
        for c in Category::ALL {
            for (_, complement) in golden_for(c) {
                assert!(!detect_aspects(&complement).is_empty(), "{complement:?}");
            }
        }
    }

    #[test]
    fn golden_complements_stay_short() {
        for c in Category::ALL {
            for (_, complement) in golden_for(c) {
                assert!(complement.split_whitespace().count() <= 35, "{complement:?}");
            }
        }
    }
}

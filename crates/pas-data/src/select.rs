//! The three-step data-selection pipeline of §3.1 (Figure 3a).
//!
//! 1. **Deduplication** — embed every prompt with the `pas-embed` model and
//!    group near-duplicates with the HNSW-based [`Deduplicator`], keeping
//!    one representative per group.
//! 2. **Quality filtering** — a text-heuristic scorer standing in for the
//!    BaiChuan-13B quality model: junk prompts (too short, repetitive,
//!    contentless) are dropped.
//! 3. **Classification** — a really-trained 14-way [`SoftmaxClassifier`]
//!    (the substitute for the SFT'd BaiChuan classifier trained on 60k
//!    labeled examples) assigns each surviving prompt a category.

use pas_ann::{DedupConfig, DedupOutcome, Deduplicator, MinHashConfig, MinHashDeduplicator};
use pas_embed::{Embedder, EmbeddingCache, NgramEmbedder};
use pas_nn::{SoftmaxClassifier, TrainParams};
use pas_text::ngram::word_shingle_hashes;

use pas_llm::Category;

use crate::corpus::{Corpus, CorpusConfig};
use crate::features::prompt_features;
use crate::schema::PromptRecord;

/// Which engine performs the near-duplicate grouping.
#[derive(Debug, Clone)]
pub enum DedupBackend {
    /// Embed with `pas-embed`, group with the HNSW [`Deduplicator`] — the
    /// paper's SimCSE+HNSW route.
    EmbeddingHnsw,
    /// MinHash signatures over word shingles with LSH banding — the
    /// classical alternative, kept as a cross-check and speed baseline.
    MinHashLsh {
        /// Minimum estimated shingle-Jaccard to count as a duplicate.
        threshold: f64,
        /// Signature/banding parameters.
        config: MinHashConfig,
    },
}

/// Selection-pipeline parameters.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Dedup engine selection.
    pub backend: DedupBackend,
    /// Embedding dimensionality for dedup.
    pub embed_dim: usize,
    /// Near-duplicate grouping parameters.
    pub dedup: DedupConfig,
    /// Minimum heuristic quality score to survive filtering.
    pub quality_threshold: f32,
    /// Size of the internally generated labeled set used to train the
    /// classifier (the stand-in for the paper's 60k labeled examples).
    pub labeled_size: usize,
    /// Classifier training parameters.
    pub classifier: TrainParams,
    /// Pipeline seed.
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            backend: DedupBackend::EmbeddingHnsw,
            embed_dim: 64,
            dedup: DedupConfig::default(),
            quality_threshold: 0.5,
            labeled_size: 1500,
            classifier: TrainParams { epochs: 10, ..TrainParams::default() },
            seed: 0x5e1ec7,
        }
    }
}

/// A prompt that survived selection, with its predicted category.
#[derive(Debug, Clone)]
pub struct SelectedPrompt {
    /// The surviving record.
    pub record: PromptRecord,
    /// Category assigned by the trained classifier.
    pub predicted: Category,
}

/// What happened at each pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct SelectionReport {
    /// Records offered to the pipeline.
    pub input: usize,
    /// Survivors of deduplication.
    pub after_dedup: usize,
    /// Survivors of quality filtering.
    pub after_quality: usize,
    /// Classifier accuracy measured against the latent categories.
    pub classifier_accuracy: f64,
    /// Selected count per category (predicted), aligned with [`Category::ALL`].
    pub per_category: [usize; 14],
}

impl SelectionReport {
    /// Folds `other` into `self` as if both pipelines had run over one
    /// concatenated input: counters add, and the accuracy becomes the
    /// survivor-weighted mean. Associative, with [`SelectionReport::default`]
    /// as the identity — the ordered-reduction primitive for aggregating
    /// per-shard selection runs.
    pub fn merge(&mut self, other: &SelectionReport) {
        let survivors = self.after_quality + other.after_quality;
        if survivors > 0 {
            self.classifier_accuracy = (self.classifier_accuracy * self.after_quality as f64
                + other.classifier_accuracy * other.after_quality as f64)
                / survivors as f64;
        }
        self.input += other.input;
        self.after_dedup += other.after_dedup;
        self.after_quality += other.after_quality;
        for (mine, theirs) in self.per_category.iter_mut().zip(&other.per_category) {
            *mine += theirs;
        }
    }
}

/// The §3.1 selection pipeline.
pub struct SelectionPipeline {
    config: SelectionConfig,
}

impl SelectionPipeline {
    /// Creates a pipeline.
    pub fn new(config: SelectionConfig) -> Self {
        SelectionPipeline { config }
    }

    /// Runs all three stages over `records`.
    pub fn run(&self, records: &[PromptRecord]) -> (Vec<SelectedPrompt>, SelectionReport) {
        // Stage 1: near-duplicate grouping with the configured backend.
        let outcome = self.dedup(records);
        let deduped: Vec<&PromptRecord> = outcome.kept.iter().map(|&i| &records[i]).collect();

        // Stage 2: quality filtering.
        let filtered: Vec<&PromptRecord> = deduped
            .iter()
            .copied()
            .filter(|r| quality_score(&r.text) >= self.config.quality_threshold)
            .collect();

        // Stage 3: train the category classifier on a fresh labeled corpus
        // and classify the survivors (feature extraction is per-record pure,
        // so it fans out through the deterministic parallel map).
        let classifier = self.train_classifier();
        let eval_features: Vec<Vec<f32>> =
            pas_par::par_map(&filtered, |_, r| prompt_features(&r.text));
        let mut selected = Vec::with_capacity(filtered.len());
        let mut hits = 0usize;
        let mut per_category = [0usize; 14];
        for (r, f) in filtered.iter().zip(&eval_features) {
            let predicted =
                Category::from_index(classifier.predict(f) as usize).expect("class index in range");
            if predicted == r.meta.category {
                hits += 1;
            }
            per_category[predicted.index()] += 1;
            selected.push(SelectedPrompt { record: (*r).clone(), predicted });
        }
        let classifier_accuracy =
            if filtered.is_empty() { 0.0 } else { hits as f64 / filtered.len() as f64 };

        let report = SelectionReport {
            input: records.len(),
            after_dedup: deduped.len(),
            after_quality: filtered.len(),
            classifier_accuracy,
            per_category,
        };
        (selected, report)
    }

    /// Runs the configured dedup backend over the records.
    fn dedup(&self, records: &[PromptRecord]) -> DedupOutcome {
        match &self.config.backend {
            DedupBackend::EmbeddingHnsw => {
                // Memoized batch embedding: duplicates in the corpus hit the
                // cache, misses embed in parallel.
                let embedder = EmbeddingCache::new(NgramEmbedder::new(
                    self.config.embed_dim,
                    self.config.seed,
                ));
                let texts: Vec<&str> = records.iter().map(|r| r.text.as_str()).collect();
                let embeddings = embedder.embed_batch(&texts);
                Deduplicator::run(self.config.dedup.clone(), embeddings)
            }
            DedupBackend::MinHashLsh { threshold, config } => {
                let shingle_sets: Vec<Vec<u64>> = pas_par::par_map(records, |_, r| {
                    let mut s = word_shingle_hashes(&r.text, 3);
                    s.sort_unstable();
                    s.dedup();
                    s
                });
                MinHashDeduplicator::run(config.clone(), &shingle_sets, *threshold)
            }
        }
    }

    /// Trains the 14-way category classifier on an internally generated
    /// labeled corpus (clean: no junk, no duplicates).
    pub fn train_classifier(&self) -> SoftmaxClassifier {
        let labeled = Corpus::generate(&CorpusConfig {
            size: self.config.labeled_size,
            seed: self.config.seed ^ 0xba1c_0a2e,
            dup_rate: 0.0,
            junk_rate: 0.0,
            ..CorpusConfig::default()
        });
        let features: Vec<Vec<f32>> =
            labeled.records.iter().map(|r| prompt_features(&r.text)).collect();
        let labels: Vec<u32> =
            labeled.records.iter().map(|r| r.meta.category.index() as u32).collect();
        let mut clf = SoftmaxClassifier::new(
            crate::features::FEATURE_DIM,
            Category::ALL.len(),
            self.config.seed,
        );
        clf.train(&features, &labels, &self.config.classifier);
        clf
    }
}

/// Heuristic prompt-quality score in `[0, 1]` — the stand-in for the paper's
/// BaiChuan-13B quality scorer. Rewards enough words, lexical diversity, and
/// non-trivial length; junk ("asdf asdf", "ok", "??") scores low.
pub fn quality_score(text: &str) -> f32 {
    let ws = pas_text::words(text);
    if ws.is_empty() {
        return 0.0;
    }
    let length_component = (ws.len() as f32 / 8.0).min(1.0) * 0.5;
    let distinct: std::collections::HashSet<&String> = ws.iter().collect();
    let diversity_component = (distinct.len() as f32 / ws.len() as f32) * 0.3;
    let char_component = if text.chars().count() > 25 { 0.2 } else { 0.0 };
    length_component + diversity_component + char_component
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_score_separates_junk_from_real() {
        for junk in ["asdf asdf asdf", "??", "ok", "test test test test", "qwerty uiop"] {
            assert!(quality_score(junk) < 0.5, "{junk:?} scored {}", quality_score(junk));
        }
        for real in [
            "How should I implement a cache eviction policy for a buffer pool?",
            "Recommend science fiction novels for teenagers please.",
        ] {
            assert!(quality_score(real) >= 0.5, "{real:?} scored {}", quality_score(real));
        }
    }

    #[test]
    fn pipeline_shrinks_and_classifies() {
        let corpus =
            Corpus::generate(&CorpusConfig { size: 600, seed: 4, ..CorpusConfig::default() });
        let (selected, report) = SelectionPipeline::new(SelectionConfig {
            labeled_size: 800,
            ..SelectionConfig::default()
        })
        .run(&corpus.records);

        assert_eq!(report.input, 600);
        assert!(report.after_dedup < report.input, "dedup must remove something");
        assert!(report.after_quality < report.after_dedup, "junk must be filtered");
        assert_eq!(selected.len(), report.after_quality);
        assert!(
            report.classifier_accuracy > 0.7,
            "classifier accuracy {}",
            report.classifier_accuracy
        );
        assert_eq!(report.per_category.iter().sum::<usize>(), selected.len());
    }

    #[test]
    fn minhash_backend_agrees_with_embedding_backend_on_the_big_picture() {
        let corpus =
            Corpus::generate(&CorpusConfig { size: 500, seed: 12, ..CorpusConfig::default() });
        let hnsw_cfg = SelectionConfig { labeled_size: 400, ..SelectionConfig::default() };
        let mh_cfg = SelectionConfig {
            backend: DedupBackend::MinHashLsh {
                threshold: 0.7,
                config: pas_ann::MinHashConfig::default(),
            },
            labeled_size: 400,
            ..SelectionConfig::default()
        };
        let (_, hnsw_report) = SelectionPipeline::new(hnsw_cfg).run(&corpus.records);
        let (_, mh_report) = SelectionPipeline::new(mh_cfg).run(&corpus.records);
        // Both must remove a comparable volume of duplicates.
        assert!(mh_report.after_dedup < mh_report.input);
        let diff = (hnsw_report.after_dedup as i64 - mh_report.after_dedup as i64).abs();
        assert!(
            diff < (hnsw_report.input / 10) as i64,
            "backends disagree: hnsw {} vs minhash {}",
            hnsw_report.after_dedup,
            mh_report.after_dedup
        );
    }

    #[test]
    fn pipeline_is_thread_count_invariant() {
        let corpus =
            Corpus::generate(&CorpusConfig { size: 400, seed: 21, ..CorpusConfig::default() });
        let run = |threads| {
            pas_par::with_threads(threads, || {
                let (sel, rep) = SelectionPipeline::new(SelectionConfig {
                    labeled_size: 400,
                    ..SelectionConfig::default()
                })
                .run(&corpus.records);
                let ids: Vec<u64> = sel.iter().map(|s| s.record.id).collect();
                let cats: Vec<Category> = sel.iter().map(|s| s.predicted).collect();
                (ids, cats, rep.after_dedup, rep.after_quality, rep.classifier_accuracy.to_bits())
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
    }

    #[test]
    fn report_merge_adds_counts_and_weights_accuracy() {
        let mut a = SelectionReport {
            input: 100,
            after_dedup: 80,
            after_quality: 60,
            classifier_accuracy: 0.9,
            per_category: [0; 14],
        };
        a.per_category[0] = 40;
        a.per_category[1] = 20;
        let mut b = SelectionReport {
            input: 50,
            after_dedup: 40,
            after_quality: 20,
            classifier_accuracy: 0.6,
            per_category: [0; 14],
        };
        b.per_category[1] = 20;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.input, 150);
        assert_eq!(merged.after_dedup, 120);
        assert_eq!(merged.after_quality, 80);
        assert_eq!(merged.per_category[0], 40);
        assert_eq!(merged.per_category[1], 40);
        // Survivor-weighted mean: (0.9·60 + 0.6·20) / 80.
        assert!((merged.classifier_accuracy - 0.825).abs() < 1e-12);
        // Default is the identity on both sides.
        let mut id_left = SelectionReport::default();
        id_left.merge(&a);
        assert_eq!(id_left.after_quality, a.after_quality);
        assert_eq!(id_left.classifier_accuracy, a.classifier_accuracy);
        let mut id_right = a.clone();
        id_right.merge(&SelectionReport::default());
        assert_eq!(id_right.after_quality, a.after_quality);
        assert_eq!(id_right.classifier_accuracy, a.classifier_accuracy);
    }

    #[test]
    fn surviving_prompts_are_unique_requests() {
        let corpus =
            Corpus::generate(&CorpusConfig { size: 400, seed: 6, ..CorpusConfig::default() });
        let (selected, _) = SelectionPipeline::new(SelectionConfig {
            labeled_size: 400,
            ..SelectionConfig::default()
        })
        .run(&corpus.records);
        let mut seen = std::collections::HashSet::new();
        for s in &selected {
            assert!(
                seen.insert(pas_text::normalize_for_dedup(&s.record.text)),
                "duplicate survived: {:?}",
                s.record.text
            );
        }
    }
}

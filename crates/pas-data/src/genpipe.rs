//! Algorithm 1: prompt-augmentation dataset generation.
//!
//! For every selected prompt, the few-shot [`Teacher`] generates a
//! complementary prompt conditioned on the category's golden examples; the
//! [`Critic`] then diagnoses each pair (`IsCorrectPair`), and rejected pairs
//! are **regenerated until they pass** — the data selection and regeneration
//! phase the paper's ablation (Table 5) removes. The `selection_enabled`
//! switch implements exactly that ablation: when off, first-draw generations
//! enter the dataset unchecked.
//!
//! # Fault tolerance
//!
//! Teacher and critic calls go through `pas-fault`'s retry engine, with a
//! deterministic fault injector in front when [`GenConfig::fault`] names a
//! non-clean profile. Call identity is content-derived — the hash of the
//! prompt (and APE) being processed — so the fault schedule is a pure
//! function of the work, independent of thread interleaving; under any
//! schedule where every call eventually succeeds, the generated dataset is
//! bit-identical to the fault-free run. [`Generator::try_run_journaled`]
//! additionally commits each finished prompt to a crash-tolerant
//! [`Journal`], letting a killed run resume exactly where it stopped.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pas_fault::{streams, FaultConfig, FaultInjector, FaultReport, Journal, RetryEngine};
use pas_llm::{
    ChatError, Critic, CriticVerdict, GeneratedComplement, Teacher, TeacherConfig, World,
};
use pas_par::derive_seed;
use pas_text::fx_hash_str;

use crate::golden::golden_for;
use crate::schema::{PairDataset, PairRecord};
use crate::select::SelectedPrompt;

// Observability counters, recorded serially after the parallel per-prompt
// phase from the already-deterministic merged report — so the tallies are
// thread-count-invariant by construction.
static OBS_PROMPTS: pas_obs::Counter = pas_obs::Counter::new("gen.prompts");
static OBS_JOURNAL_HITS: pas_obs::Counter = pas_obs::Counter::new("gen.journal_hits");
static OBS_GENERATED: pas_obs::Counter = pas_obs::Counter::new("gen.generated");
static OBS_REJECTED: pas_obs::Counter = pas_obs::Counter::new("gen.rejected_first_draw");
static OBS_REGENERATIONS: pas_obs::Counter = pas_obs::Counter::new("gen.regenerations");
static OBS_REPAIRS: pas_obs::Counter = pas_obs::Counter::new("gen.repairs");
static OBS_TEACHER_TOKENS: pas_obs::Counter = pas_obs::Counter::new("gen.teacher_tokens");
static OBS_CRITIC_TOKENS: pas_obs::Counter = pas_obs::Counter::new("gen.critic_tokens");

/// Generation-pipeline parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Teacher behaviour (flaw rate, inference accuracy, seed).
    pub teacher: TeacherConfig,
    /// Whether the critic-selection + regeneration phase runs (`false`
    /// reproduces the "w/o selection" ablation of Table 5).
    pub selection_enabled: bool,
    /// Regeneration attempts before falling back to the critic's repair.
    pub max_attempts: u64,
    /// Fault-tolerance layer: injected fault schedule (clean by default)
    /// and retry/backoff policy for the teacher/critic boundaries.
    pub fault: FaultConfig,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            teacher: TeacherConfig::default(),
            selection_enabled: true,
            max_attempts: 16,
            fault: FaultConfig::default(),
        }
    }
}

/// Why a generation run failed outright (clean-profile runs never do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A model boundary exhausted its retry budget for one prompt.
    Backend {
        /// Index of the selected prompt whose call failed.
        prompt_index: usize,
        /// Which boundary failed (`"teacher"` / `"critic"`).
        stage: &'static str,
        /// The final error after retries.
        error: ChatError,
    },
    /// The checkpoint journal could not be read or written.
    Journal(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Backend { prompt_index, stage, error } => {
                write!(f, "{stage} call for prompt {prompt_index} failed: {error}")
            }
            GenError::Journal(e) => write!(f, "checkpoint journal error: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

/// What happened during generation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenReport {
    /// Pairs produced.
    pub generated: usize,
    /// Pairs the critic rejected on first draw.
    pub rejected_first_draw: usize,
    /// Total regeneration attempts consumed.
    pub regenerations: u64,
    /// Pairs that exhausted `max_attempts` and used the critic's repair.
    pub repairs: usize,
    /// Ground-truth flawed pairs remaining in the final dataset (knowable
    /// only because the teacher is simulated; reported for analysis, never
    /// used by the pipeline).
    pub residual_flaws: usize,
    /// Whitespace tokens pushed through the teacher (prompt + golden
    /// few-shots + generations) — the generation-time API budget.
    pub teacher_tokens: usize,
    /// Whitespace tokens pushed through the critic (pair + verdict).
    pub critic_tokens: usize,
}

impl GenReport {
    /// Fraction of the final dataset that is ground-truth flawed.
    pub fn residual_flaw_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.residual_flaws as f64 / self.generated as f64
        }
    }

    /// Total generation-time token budget (teacher + critic).
    pub fn total_tokens(&self) -> usize {
        self.teacher_tokens + self.critic_tokens
    }

    /// Folds `other`'s counters into `self`. Associative, with
    /// [`GenReport::default`] as the identity — the ordered-reduction
    /// primitive [`Generator::run`] applies after the parallel per-prompt
    /// phase, so aggregate counts never depend on worker scheduling.
    pub fn merge(&mut self, other: &GenReport) {
        self.generated += other.generated;
        self.rejected_first_draw += other.rejected_first_draw;
        self.regenerations += other.regenerations;
        self.repairs += other.repairs;
        self.residual_flaws += other.residual_flaws;
        self.teacher_tokens += other.teacher_tokens;
        self.critic_tokens += other.critic_tokens;
    }
}

fn tokens(text: &str) -> usize {
    text.split_whitespace().count()
}

/// One finished prompt's full result — exactly what the journal commits, so
/// a resumed run reproduces not just the pair but every counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PairEntry {
    pair: PairRecord,
    report: GenReport,
    faults: FaultReport,
}

/// The Algorithm 1 generator.
pub struct Generator {
    config: GenConfig,
    teacher: Teacher,
    critic: Critic,
    injector: FaultInjector,
    engine: RetryEngine,
}

impl Generator {
    /// Creates a generator over `world`.
    pub fn new(config: GenConfig, world: Arc<World>) -> Self {
        let teacher = Teacher::new(config.teacher.clone(), world);
        let injector = config.fault.injector();
        let engine = config.fault.engine();
        Generator { config, teacher, critic: Critic::default(), injector, engine }
    }

    /// Runs Algorithm 1 over the selected prompts.
    ///
    /// Each prompt's generate→critic→regenerate loop is independent of
    /// every other — the teacher is a pure function of `(prompt, golden,
    /// attempt)` — so the loop runs per prompt in parallel; the per-prompt
    /// reports then fold into the aggregate via [`GenReport::merge`] in
    /// prompt order. Output and counters are identical at any `--threads`
    /// setting.
    ///
    /// Panics if a model boundary fails outright — impossible under a clean
    /// or eventual-success fault profile; use [`Generator::try_run`] when
    /// running against a profile that can exhaust retries.
    pub fn run(&self, selected: &[SelectedPrompt]) -> (PairDataset, GenReport) {
        match self.try_run(selected) {
            Ok((dataset, report, _faults)) => (dataset, report),
            Err(e) => panic!("generation failed: {e}"),
        }
    }

    /// [`Generator::run`] with failure made explicit, plus the fault-layer
    /// accounting.
    pub fn try_run(
        &self,
        selected: &[SelectedPrompt],
    ) -> Result<(PairDataset, GenReport, FaultReport), GenError> {
        self.try_run_journaled(selected, None)
    }

    /// [`Generator::try_run`] with checkpoint/resume: finished prompts are
    /// committed to `journal` as they complete, and prompts already in the
    /// journal are loaded instead of recomputed. Because every per-prompt
    /// result is a pure function of the configuration, a killed-and-resumed
    /// run produces a dataset and reports bit-identical to an uninterrupted
    /// one.
    pub fn try_run_journaled(
        &self,
        selected: &[SelectedPrompt],
        journal: Option<&Journal>,
    ) -> Result<(PairDataset, GenReport, FaultReport), GenError> {
        let mut slots: Vec<Option<PairEntry>> = (0..selected.len())
            .map(|i| {
                journal
                    .and_then(|j| j.get(&format!("pair:{i}")))
                    .and_then(|payload| serde_json::from_str(&payload).ok())
            })
            .collect();
        let missing: Vec<usize> =
            slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
        OBS_PROMPTS.add(selected.len() as u64);
        OBS_JOURNAL_HITS.add((selected.len() - missing.len()) as u64);
        let computed = pas_par::par_map(&missing, |_, &i| -> Result<PairEntry, GenError> {
            let entry = self.generate_one(i, &selected[i])?;
            if let Some(j) = journal {
                let payload = serde_json::to_string(&entry).expect("pair entry serializes");
                j.commit(&format!("pair:{i}"), &payload)
                    .map_err(|e| GenError::Journal(e.to_string()))?;
            }
            Ok(entry)
        });
        // `missing` ascends, so the surfaced error is the lowest failing
        // prompt index — deterministic at any thread count.
        for (&i, result) in missing.iter().zip(computed) {
            slots[i] = Some(result?);
        }
        let mut dataset = PairDataset::new();
        let mut report = GenReport::default();
        let mut faults = FaultReport::default();
        for entry in slots.into_iter().map(|s| s.expect("every slot filled")) {
            dataset.pairs.push(entry.pair);
            report.merge(&entry.report);
            faults.merge(&entry.faults);
        }
        OBS_GENERATED.add(report.generated as u64);
        OBS_REJECTED.add(report.rejected_first_draw as u64);
        OBS_REGENERATIONS.add(report.regenerations);
        OBS_REPAIRS.add(report.repairs as u64);
        OBS_TEACHER_TOKENS.add(report.teacher_tokens as u64);
        OBS_CRITIC_TOKENS.add(report.critic_tokens as u64);
        Ok((dataset, report, faults))
    }

    /// One teacher call through the fault layer. The logical call key is
    /// derived from the prompt text and the Algorithm 1 attempt number, so
    /// regeneration attempts see independent fault schedules.
    fn teacher_call(
        &self,
        index: usize,
        prompt: &str,
        golden: &[(String, String)],
        attempt: u64,
        faults: &mut FaultReport,
    ) -> Result<GeneratedComplement, GenError> {
        let call = derive_seed(fx_hash_str(prompt), attempt);
        self.engine
            .call(derive_seed(streams::TEACHER, call), faults, |retry| {
                self.injector.check(streams::TEACHER, call, retry)?;
                Ok(self.teacher.generate(prompt, golden, attempt))
            })
            .map_err(|error| GenError::Backend { prompt_index: index, stage: "teacher", error })
    }

    /// One critic call through the fault layer, keyed on the pair content.
    fn critic_call(
        &self,
        index: usize,
        prompt: &str,
        ape: &str,
        faults: &mut FaultReport,
    ) -> Result<CriticVerdict, GenError> {
        let call = derive_seed(fx_hash_str(prompt), fx_hash_str(ape));
        self.engine
            .call(derive_seed(streams::CRITIC, call), faults, |retry| {
                self.injector.check(streams::CRITIC, call, retry)?;
                Ok(self.critic.judge(prompt, ape))
            })
            .map_err(|error| GenError::Backend { prompt_index: index, stage: "critic", error })
    }

    /// One prompt's pass through Algorithm 1, with its own reports.
    fn generate_one(&self, index: usize, sp: &SelectedPrompt) -> Result<PairEntry, GenError> {
        let mut report = GenReport::default();
        let mut faults = FaultReport::default();
        let golden = golden_for(sp.predicted);
        let golden_tokens: usize = golden.iter().map(|(p, c)| tokens(p) + tokens(c)).sum();
        // Data generation phase (Algorithm 1 lines 2–4).
        let mut gen = self.teacher_call(index, &sp.record.text, &golden, 0, &mut faults)?;
        report.teacher_tokens += tokens(&sp.record.text) + golden_tokens + tokens(&gen.text);

        // Data selection and regeneration phase (lines 5–10).
        if self.config.selection_enabled {
            report.critic_tokens += tokens(&sp.record.text) + tokens(&gen.text);
            let mut verdict = self.critic_call(index, &sp.record.text, &gen.text, &mut faults)?;
            if !verdict.accepted() {
                report.rejected_first_draw += 1;
                let mut attempt = 1;
                loop {
                    if attempt > self.config.max_attempts {
                        // Fall back to the critic's own repaired APE.
                        gen.text = verdict.final_ape;
                        gen.injected_flaw = None;
                        report.repairs += 1;
                        break;
                    }
                    report.regenerations += 1;
                    gen =
                        self.teacher_call(index, &sp.record.text, &golden, attempt, &mut faults)?;
                    report.teacher_tokens +=
                        tokens(&sp.record.text) + golden_tokens + tokens(&gen.text);
                    report.critic_tokens += tokens(&sp.record.text) + tokens(&gen.text);
                    verdict = self.critic_call(index, &sp.record.text, &gen.text, &mut faults)?;
                    if verdict.accepted() {
                        break;
                    }
                    attempt += 1;
                }
            }
        }

        if gen.injected_flaw.is_some() {
            report.residual_flaws += 1;
        }
        report.generated += 1;
        let pair = PairRecord {
            prompt: sp.record.text.clone(),
            complement: gen.text,
            category: sp.predicted,
        };
        Ok(PairEntry { pair, report, faults })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use crate::select::{SelectionConfig, SelectionPipeline};
    use pas_fault::FaultProfile;
    use proptest::prelude::*;

    fn selected(n: usize, seed: u64) -> (Vec<SelectedPrompt>, Arc<World>) {
        let corpus = Corpus::generate(&CorpusConfig { size: n, seed, ..CorpusConfig::default() });
        let world = Arc::new(corpus.world.clone());
        let (sel, _) = SelectionPipeline::new(SelectionConfig {
            labeled_size: 600,
            ..SelectionConfig::default()
        })
        .run(&corpus.records);
        (sel, world)
    }

    fn faulted_config(profile: FaultProfile) -> GenConfig {
        GenConfig {
            fault: FaultConfig { profile, ..FaultConfig::default() },
            ..GenConfig::default()
        }
    }

    #[test]
    fn with_selection_every_pair_passes_the_critic() {
        let (sel, world) = selected(300, 2);
        let (ds, report) = Generator::new(GenConfig::default(), world).run(&sel);
        assert_eq!(ds.len(), sel.len());
        assert_eq!(report.generated, ds.len());
        let critic = Critic::default();
        for pair in &ds.pairs {
            assert!(
                critic.is_correct_pair(&pair.prompt, &pair.complement),
                "pair failed critic: {:?}",
                pair.complement
            );
        }
    }

    #[test]
    fn selection_reduces_residual_flaws() {
        let (sel, world) = selected(400, 8);
        let with = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel).1;
        let without =
            Generator::new(GenConfig { selection_enabled: false, ..GenConfig::default() }, world)
                .run(&sel)
                .1;
        assert!(without.residual_flaws > 0, "ablation must leave flaws in");
        assert!(
            with.residual_flaw_rate() < without.residual_flaw_rate() / 2.0,
            "selection {} vs ablation {}",
            with.residual_flaw_rate(),
            without.residual_flaw_rate()
        );
    }

    #[test]
    fn token_accounting_tracks_the_loop() {
        let (sel, world) = selected(300, 9);
        let (_, with) = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel);
        let (_, without) =
            Generator::new(GenConfig { selection_enabled: false, ..GenConfig::default() }, world)
                .run(&sel);
        assert!(with.teacher_tokens > 0 && with.critic_tokens > 0);
        // The ablation skips the critic entirely and never regenerates.
        assert_eq!(without.critic_tokens, 0);
        assert!(with.teacher_tokens > without.teacher_tokens);
        assert_eq!(with.total_tokens(), with.teacher_tokens + with.critic_tokens);
    }

    #[test]
    fn regenerations_happen_and_terminate() {
        let (sel, world) = selected(300, 5);
        let (_, report) = Generator::new(GenConfig::default(), world).run(&sel);
        assert!(report.rejected_first_draw > 0, "some first draws must fail");
        assert!(report.regenerations >= report.rejected_first_draw as u64);
        // With a well-behaved teacher, repairs should be rare to none.
        assert!(report.repairs <= report.rejected_first_draw / 4 + 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let (sel, world) = selected(150, 10);
        let a = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel).0;
        let b = Generator::new(GenConfig::default(), world).run(&sel).0;
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let (sel, world) = selected(250, 4);
        let run = |threads| {
            pas_par::with_threads(threads, || {
                let (ds, r) = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel);
                (
                    ds.pairs,
                    r.generated,
                    r.rejected_first_draw,
                    r.regenerations,
                    r.repairs,
                    r.residual_flaws,
                    r.teacher_tokens,
                    r.critic_tokens,
                )
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
    }

    #[test]
    fn eventual_success_faults_do_not_change_the_dataset() {
        let (sel, world) = selected(200, 6);
        let clean = Generator::new(GenConfig::default(), Arc::clone(&world)).try_run(&sel).unwrap();
        let chaotic =
            Generator::new(faulted_config(FaultProfile::chaos()), world).try_run(&sel).unwrap();
        assert_eq!(clean.0.pairs, chaotic.0.pairs, "faults must not leak into the dataset");
        assert_eq!(clean.1, chaotic.1, "GenReport must be fault-invariant");
        assert!(chaotic.2.total_faults() > 0, "chaos must actually inject");
        assert_eq!(chaotic.2.failed, 0, "eventual-success schedule never fails a call");
        assert!(clean.2.is_clean());
    }

    #[test]
    fn permanent_outage_surfaces_the_first_failing_prompt() {
        let (sel, world) = selected(120, 7);
        let gen = Generator::new(faulted_config(FaultProfile::outage()), world);
        let err = gen.try_run(&sel).unwrap_err();
        match err {
            GenError::Backend { prompt_index, stage, error } => {
                assert_eq!(prompt_index, 0, "lowest failing index wins");
                assert_eq!(stage, "teacher");
                assert_eq!(error, ChatError::Unavailable);
            }
            other => panic!("expected backend error, got {other}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The property `pas_par` ordered reduction silently relies on:
        // merging per-item reports is associative and `Default` is the
        // identity, so any fold shape over any partition agrees.
        #[test]
        fn report_merge_is_associative_with_default_identity(
            xs in prop::collection::vec(0u64..5_000, 3)
        ) {
            let r = |s: u64| GenReport {
                generated: (s % 97) as usize,
                rejected_first_draw: (s % 13) as usize,
                regenerations: s % 71,
                repairs: (s % 5) as usize,
                residual_flaws: (s % 7) as usize,
                teacher_tokens: (s % 1009) as usize,
                critic_tokens: (s % 503) as usize,
            };
            let (a, b, c) = (r(xs[0]), r(xs[1]), r(xs[2]));
            let left = {
                let mut ab = a.clone();
                ab.merge(&b);
                ab.merge(&c);
                ab
            };
            let right = {
                let mut bc = b.clone();
                bc.merge(&c);
                let mut out = a.clone();
                out.merge(&bc);
                out
            };
            prop_assert_eq!(&left, &right);
            // Default is the identity on both sides.
            let mut from_identity = GenReport::default();
            from_identity.merge(&a);
            prop_assert_eq!(&from_identity, &a);
            let mut onto_identity = a.clone();
            onto_identity.merge(&GenReport::default());
            prop_assert_eq!(&onto_identity, &a);
        }
    }

    #[test]
    fn empty_selection_is_fine() {
        let (_, world) = selected(50, 11);
        let (ds, report) = Generator::new(GenConfig::default(), world).run(&[]);
        assert!(ds.is_empty());
        assert_eq!(report.generated, 0);
        assert_eq!(report.residual_flaw_rate(), 0.0);
    }
}

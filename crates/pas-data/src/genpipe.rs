//! Algorithm 1: prompt-augmentation dataset generation.
//!
//! For every selected prompt, the few-shot [`Teacher`] generates a
//! complementary prompt conditioned on the category's golden examples; the
//! [`Critic`] then diagnoses each pair (`IsCorrectPair`), and rejected pairs
//! are **regenerated until they pass** — the data selection and regeneration
//! phase the paper's ablation (Table 5) removes. The `selection_enabled`
//! switch implements exactly that ablation: when off, first-draw generations
//! enter the dataset unchecked.

use std::sync::Arc;

use pas_llm::{Critic, Teacher, TeacherConfig, World};

use crate::golden::golden_for;
use crate::schema::{PairDataset, PairRecord};
use crate::select::SelectedPrompt;

/// Generation-pipeline parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Teacher behaviour (flaw rate, inference accuracy, seed).
    pub teacher: TeacherConfig,
    /// Whether the critic-selection + regeneration phase runs (`false`
    /// reproduces the "w/o selection" ablation of Table 5).
    pub selection_enabled: bool,
    /// Regeneration attempts before falling back to the critic's repair.
    pub max_attempts: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { teacher: TeacherConfig::default(), selection_enabled: true, max_attempts: 16 }
    }
}

/// What happened during generation.
#[derive(Debug, Clone, Default)]
pub struct GenReport {
    /// Pairs produced.
    pub generated: usize,
    /// Pairs the critic rejected on first draw.
    pub rejected_first_draw: usize,
    /// Total regeneration attempts consumed.
    pub regenerations: u64,
    /// Pairs that exhausted `max_attempts` and used the critic's repair.
    pub repairs: usize,
    /// Ground-truth flawed pairs remaining in the final dataset (knowable
    /// only because the teacher is simulated; reported for analysis, never
    /// used by the pipeline).
    pub residual_flaws: usize,
    /// Whitespace tokens pushed through the teacher (prompt + golden
    /// few-shots + generations) — the generation-time API budget.
    pub teacher_tokens: usize,
    /// Whitespace tokens pushed through the critic (pair + verdict).
    pub critic_tokens: usize,
}

impl GenReport {
    /// Fraction of the final dataset that is ground-truth flawed.
    pub fn residual_flaw_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.residual_flaws as f64 / self.generated as f64
        }
    }

    /// Total generation-time token budget (teacher + critic).
    pub fn total_tokens(&self) -> usize {
        self.teacher_tokens + self.critic_tokens
    }

    /// Folds `other`'s counters into `self`. Associative, with
    /// [`GenReport::default`] as the identity — the ordered-reduction
    /// primitive [`Generator::run`] applies after the parallel per-prompt
    /// phase, so aggregate counts never depend on worker scheduling.
    pub fn merge(&mut self, other: &GenReport) {
        self.generated += other.generated;
        self.rejected_first_draw += other.rejected_first_draw;
        self.regenerations += other.regenerations;
        self.repairs += other.repairs;
        self.residual_flaws += other.residual_flaws;
        self.teacher_tokens += other.teacher_tokens;
        self.critic_tokens += other.critic_tokens;
    }
}

fn tokens(text: &str) -> usize {
    text.split_whitespace().count()
}

/// The Algorithm 1 generator.
pub struct Generator {
    config: GenConfig,
    teacher: Teacher,
    critic: Critic,
}

impl Generator {
    /// Creates a generator over `world`.
    pub fn new(config: GenConfig, world: Arc<World>) -> Self {
        let teacher = Teacher::new(config.teacher.clone(), world);
        Generator { config, teacher, critic: Critic::default() }
    }

    /// Runs Algorithm 1 over the selected prompts.
    ///
    /// Each prompt's generate→critic→regenerate loop is independent of
    /// every other — the teacher is a pure function of `(prompt, golden,
    /// attempt)` — so the loop runs per prompt in parallel; the per-prompt
    /// reports then fold into the aggregate via [`GenReport::merge`] in
    /// prompt order. Output and counters are identical at any `--threads`
    /// setting.
    pub fn run(&self, selected: &[SelectedPrompt]) -> (PairDataset, GenReport) {
        let results = pas_par::par_map(selected, |_, sp| self.generate_one(sp));
        let mut dataset = PairDataset::new();
        let mut report = GenReport::default();
        for (pair, item_report) in results {
            dataset.pairs.push(pair);
            report.merge(&item_report);
        }
        (dataset, report)
    }

    /// One prompt's pass through Algorithm 1, with its own report.
    fn generate_one(&self, sp: &SelectedPrompt) -> (PairRecord, GenReport) {
        let mut report = GenReport::default();
        let golden = golden_for(sp.predicted);
        let golden_tokens: usize = golden.iter().map(|(p, c)| tokens(p) + tokens(c)).sum();
        // Data generation phase (Algorithm 1 lines 2–4).
        let mut gen = self.teacher.generate(&sp.record.text, &golden, 0);
        report.teacher_tokens += tokens(&sp.record.text) + golden_tokens + tokens(&gen.text);

        // Data selection and regeneration phase (lines 5–10).
        if self.config.selection_enabled {
            report.critic_tokens += tokens(&sp.record.text) + tokens(&gen.text);
        }
        if self.config.selection_enabled && !self.critic.is_correct_pair(&sp.record.text, &gen.text)
        {
            report.rejected_first_draw += 1;
            let mut attempt = 1;
            loop {
                if attempt > self.config.max_attempts {
                    // Fall back to the critic's own repaired APE.
                    let verdict = self.critic.judge(&sp.record.text, &gen.text);
                    gen.text = verdict.final_ape;
                    gen.injected_flaw = None;
                    report.repairs += 1;
                    break;
                }
                report.regenerations += 1;
                gen = self.teacher.generate(&sp.record.text, &golden, attempt);
                report.teacher_tokens +=
                    tokens(&sp.record.text) + golden_tokens + tokens(&gen.text);
                report.critic_tokens += tokens(&sp.record.text) + tokens(&gen.text);
                if self.critic.is_correct_pair(&sp.record.text, &gen.text) {
                    break;
                }
                attempt += 1;
            }
        }

        if gen.injected_flaw.is_some() {
            report.residual_flaws += 1;
        }
        report.generated += 1;
        let pair = PairRecord {
            prompt: sp.record.text.clone(),
            complement: gen.text,
            category: sp.predicted,
        };
        (pair, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use crate::select::{SelectionConfig, SelectionPipeline};

    fn selected(n: usize, seed: u64) -> (Vec<SelectedPrompt>, Arc<World>) {
        let corpus = Corpus::generate(&CorpusConfig { size: n, seed, ..CorpusConfig::default() });
        let world = Arc::new(corpus.world.clone());
        let (sel, _) = SelectionPipeline::new(SelectionConfig {
            labeled_size: 600,
            ..SelectionConfig::default()
        })
        .run(&corpus.records);
        (sel, world)
    }

    #[test]
    fn with_selection_every_pair_passes_the_critic() {
        let (sel, world) = selected(300, 2);
        let (ds, report) = Generator::new(GenConfig::default(), world).run(&sel);
        assert_eq!(ds.len(), sel.len());
        assert_eq!(report.generated, ds.len());
        let critic = Critic::default();
        for pair in &ds.pairs {
            assert!(
                critic.is_correct_pair(&pair.prompt, &pair.complement),
                "pair failed critic: {:?}",
                pair.complement
            );
        }
    }

    #[test]
    fn selection_reduces_residual_flaws() {
        let (sel, world) = selected(400, 8);
        let with = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel).1;
        let without =
            Generator::new(GenConfig { selection_enabled: false, ..GenConfig::default() }, world)
                .run(&sel)
                .1;
        assert!(without.residual_flaws > 0, "ablation must leave flaws in");
        assert!(
            with.residual_flaw_rate() < without.residual_flaw_rate() / 2.0,
            "selection {} vs ablation {}",
            with.residual_flaw_rate(),
            without.residual_flaw_rate()
        );
    }

    #[test]
    fn token_accounting_tracks_the_loop() {
        let (sel, world) = selected(300, 9);
        let (_, with) = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel);
        let (_, without) =
            Generator::new(GenConfig { selection_enabled: false, ..GenConfig::default() }, world)
                .run(&sel);
        assert!(with.teacher_tokens > 0 && with.critic_tokens > 0);
        // The ablation skips the critic entirely and never regenerates.
        assert_eq!(without.critic_tokens, 0);
        assert!(with.teacher_tokens > without.teacher_tokens);
        assert_eq!(with.total_tokens(), with.teacher_tokens + with.critic_tokens);
    }

    #[test]
    fn regenerations_happen_and_terminate() {
        let (sel, world) = selected(300, 5);
        let (_, report) = Generator::new(GenConfig::default(), world).run(&sel);
        assert!(report.rejected_first_draw > 0, "some first draws must fail");
        assert!(report.regenerations >= report.rejected_first_draw as u64);
        // With a well-behaved teacher, repairs should be rare to none.
        assert!(report.repairs <= report.rejected_first_draw / 4 + 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let (sel, world) = selected(150, 10);
        let a = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel).0;
        let b = Generator::new(GenConfig::default(), world).run(&sel).0;
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let (sel, world) = selected(250, 4);
        let run = |threads| {
            pas_par::with_threads(threads, || {
                let (ds, r) = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel);
                (
                    ds.pairs,
                    r.generated,
                    r.rejected_first_draw,
                    r.regenerations,
                    r.repairs,
                    r.residual_flaws,
                    r.teacher_tokens,
                    r.critic_tokens,
                )
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
    }

    #[test]
    fn report_merge_is_associative_with_default_identity() {
        let r = |g: usize, rej: usize, reg: u64, tt: usize| GenReport {
            generated: g,
            rejected_first_draw: rej,
            regenerations: reg,
            repairs: g / 5,
            residual_flaws: rej / 2,
            teacher_tokens: tt,
            critic_tokens: tt / 3,
        };
        let (a, b, c) = (r(3, 1, 7, 100), r(5, 2, 11, 250), r(2, 0, 1, 40));
        let fold = |parts: &[&GenReport]| {
            let mut acc = GenReport::default();
            for p in parts {
                acc.merge(p);
            }
            acc
        };
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let left = {
            let mut ab = fold(&[&a, &b]);
            ab.merge(&c);
            ab
        };
        let right = {
            let bc = fold(&[&b, &c]);
            let mut out = a.clone();
            out.merge(&bc);
            out
        };
        assert_eq!(left.generated, right.generated);
        assert_eq!(left.rejected_first_draw, right.rejected_first_draw);
        assert_eq!(left.regenerations, right.regenerations);
        assert_eq!(left.repairs, right.repairs);
        assert_eq!(left.residual_flaws, right.residual_flaws);
        assert_eq!(left.teacher_tokens, right.teacher_tokens);
        assert_eq!(left.critic_tokens, right.critic_tokens);
        assert_eq!(left.generated, 10);
        assert_eq!(left.total_tokens(), left.teacher_tokens + left.critic_tokens);
        // Default is the identity.
        let mut with_identity = GenReport::default();
        with_identity.merge(&a);
        assert_eq!(with_identity.generated, a.generated);
        assert_eq!(with_identity.teacher_tokens, a.teacher_tokens);
    }

    #[test]
    fn empty_selection_is_fine() {
        let (_, world) = selected(50, 11);
        let (ds, report) = Generator::new(GenConfig::default(), world).run(&[]);
        assert!(ds.is_empty());
        assert_eq!(report.generated, 0);
        assert_eq!(report.residual_flaw_rate(), 0.0);
    }
}

//! Algorithm 1: prompt-augmentation dataset generation.
//!
//! For every selected prompt, the few-shot [`Teacher`] generates a
//! complementary prompt conditioned on the category's golden examples; the
//! [`Critic`] then diagnoses each pair (`IsCorrectPair`), and rejected pairs
//! are **regenerated until they pass** — the data selection and regeneration
//! phase the paper's ablation (Table 5) removes. The `selection_enabled`
//! switch implements exactly that ablation: when off, first-draw generations
//! enter the dataset unchecked.

use std::sync::Arc;

use pas_llm::{Critic, Teacher, TeacherConfig, World};

use crate::golden::golden_for;
use crate::schema::{PairDataset, PairRecord};
use crate::select::SelectedPrompt;

/// Generation-pipeline parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Teacher behaviour (flaw rate, inference accuracy, seed).
    pub teacher: TeacherConfig,
    /// Whether the critic-selection + regeneration phase runs (`false`
    /// reproduces the "w/o selection" ablation of Table 5).
    pub selection_enabled: bool,
    /// Regeneration attempts before falling back to the critic's repair.
    pub max_attempts: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { teacher: TeacherConfig::default(), selection_enabled: true, max_attempts: 16 }
    }
}

/// What happened during generation.
#[derive(Debug, Clone, Default)]
pub struct GenReport {
    /// Pairs produced.
    pub generated: usize,
    /// Pairs the critic rejected on first draw.
    pub rejected_first_draw: usize,
    /// Total regeneration attempts consumed.
    pub regenerations: u64,
    /// Pairs that exhausted `max_attempts` and used the critic's repair.
    pub repairs: usize,
    /// Ground-truth flawed pairs remaining in the final dataset (knowable
    /// only because the teacher is simulated; reported for analysis, never
    /// used by the pipeline).
    pub residual_flaws: usize,
    /// Whitespace tokens pushed through the teacher (prompt + golden
    /// few-shots + generations) — the generation-time API budget.
    pub teacher_tokens: usize,
    /// Whitespace tokens pushed through the critic (pair + verdict).
    pub critic_tokens: usize,
}

impl GenReport {
    /// Fraction of the final dataset that is ground-truth flawed.
    pub fn residual_flaw_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.residual_flaws as f64 / self.generated as f64
        }
    }

    /// Total generation-time token budget (teacher + critic).
    pub fn total_tokens(&self) -> usize {
        self.teacher_tokens + self.critic_tokens
    }
}

fn tokens(text: &str) -> usize {
    text.split_whitespace().count()
}

/// The Algorithm 1 generator.
pub struct Generator {
    config: GenConfig,
    teacher: Teacher,
    critic: Critic,
}

impl Generator {
    /// Creates a generator over `world`.
    pub fn new(config: GenConfig, world: Arc<World>) -> Self {
        let teacher = Teacher::new(config.teacher.clone(), world);
        Generator { config, teacher, critic: Critic::default() }
    }

    /// Runs Algorithm 1 over the selected prompts.
    pub fn run(&self, selected: &[SelectedPrompt]) -> (PairDataset, GenReport) {
        let mut dataset = PairDataset::new();
        let mut report = GenReport::default();

        for sp in selected {
            let golden = golden_for(sp.predicted);
            let golden_tokens: usize =
                golden.iter().map(|(p, c)| tokens(p) + tokens(c)).sum();
            // Data generation phase (Algorithm 1 lines 2–4).
            let mut gen = self.teacher.generate(&sp.record.text, &golden, 0);
            report.teacher_tokens += tokens(&sp.record.text) + golden_tokens + tokens(&gen.text);

            // Data selection and regeneration phase (lines 5–10).
            if self.config.selection_enabled {
                report.critic_tokens += tokens(&sp.record.text) + tokens(&gen.text);
            }
            if self.config.selection_enabled
                && !self.critic.is_correct_pair(&sp.record.text, &gen.text)
            {
                report.rejected_first_draw += 1;
                let mut attempt = 1;
                loop {
                    if attempt > self.config.max_attempts {
                        // Fall back to the critic's own repaired APE.
                        let verdict = self.critic.judge(&sp.record.text, &gen.text);
                        gen.text = verdict.final_ape;
                        gen.injected_flaw = None;
                        report.repairs += 1;
                        break;
                    }
                    report.regenerations += 1;
                    gen = self.teacher.generate(&sp.record.text, &golden, attempt);
                    report.teacher_tokens +=
                        tokens(&sp.record.text) + golden_tokens + tokens(&gen.text);
                    report.critic_tokens += tokens(&sp.record.text) + tokens(&gen.text);
                    if self.critic.is_correct_pair(&sp.record.text, &gen.text) {
                        break;
                    }
                    attempt += 1;
                }
            }

            if gen.injected_flaw.is_some() {
                report.residual_flaws += 1;
            }
            report.generated += 1;
            dataset.pairs.push(PairRecord {
                prompt: sp.record.text.clone(),
                complement: gen.text,
                category: sp.predicted,
            });
        }
        (dataset, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use crate::select::{SelectionConfig, SelectionPipeline};

    fn selected(n: usize, seed: u64) -> (Vec<SelectedPrompt>, Arc<World>) {
        let corpus = Corpus::generate(&CorpusConfig { size: n, seed, ..CorpusConfig::default() });
        let world = Arc::new(corpus.world.clone());
        let (sel, _) = SelectionPipeline::new(SelectionConfig {
            labeled_size: 600,
            ..SelectionConfig::default()
        })
        .run(&corpus.records);
        (sel, world)
    }

    #[test]
    fn with_selection_every_pair_passes_the_critic() {
        let (sel, world) = selected(300, 2);
        let (ds, report) = Generator::new(GenConfig::default(), world).run(&sel);
        assert_eq!(ds.len(), sel.len());
        assert_eq!(report.generated, ds.len());
        let critic = Critic::default();
        for pair in &ds.pairs {
            assert!(
                critic.is_correct_pair(&pair.prompt, &pair.complement),
                "pair failed critic: {:?}",
                pair.complement
            );
        }
    }

    #[test]
    fn selection_reduces_residual_flaws() {
        let (sel, world) = selected(400, 8);
        let with = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel).1;
        let without = Generator::new(
            GenConfig { selection_enabled: false, ..GenConfig::default() },
            world,
        )
        .run(&sel)
        .1;
        assert!(without.residual_flaws > 0, "ablation must leave flaws in");
        assert!(
            with.residual_flaw_rate() < without.residual_flaw_rate() / 2.0,
            "selection {} vs ablation {}",
            with.residual_flaw_rate(),
            without.residual_flaw_rate()
        );
    }

    #[test]
    fn token_accounting_tracks_the_loop() {
        let (sel, world) = selected(300, 9);
        let (_, with) = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel);
        let (_, without) = Generator::new(
            GenConfig { selection_enabled: false, ..GenConfig::default() },
            world,
        )
        .run(&sel);
        assert!(with.teacher_tokens > 0 && with.critic_tokens > 0);
        // The ablation skips the critic entirely and never regenerates.
        assert_eq!(without.critic_tokens, 0);
        assert!(with.teacher_tokens > without.teacher_tokens);
        assert_eq!(with.total_tokens(), with.teacher_tokens + with.critic_tokens);
    }

    #[test]
    fn regenerations_happen_and_terminate() {
        let (sel, world) = selected(300, 5);
        let (_, report) = Generator::new(GenConfig::default(), world).run(&sel);
        assert!(report.rejected_first_draw > 0, "some first draws must fail");
        assert!(report.regenerations >= report.rejected_first_draw as u64);
        // With a well-behaved teacher, repairs should be rare to none.
        assert!(report.repairs <= report.rejected_first_draw / 4 + 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let (sel, world) = selected(150, 10);
        let a = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel).0;
        let b = Generator::new(GenConfig::default(), world).run(&sel).0;
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn empty_selection_is_fine() {
        let (_, world) = selected(50, 11);
        let (ds, report) = Generator::new(GenConfig::default(), world).run(&[]);
        assert!(ds.is_empty());
        assert_eq!(report.generated, 0);
        assert_eq!(report.residual_flaw_rate(), 0.0);
    }
}

//! Hashed text featurization for the trainable classifiers.
//!
//! The category classifier and the PAS aspect model both consume a fixed
//! dense vector per prompt: hashed unigram/bigram counts (L2-normalized)
//! concatenated with the ten aspect-detection indicator features. The
//! indicators matter: whether a prompt already *states* an aspect is
//! precisely the signal the PAS aspect model must not have to relearn from
//! scratch through word hashes.

use pas_text::hash::{fx_combine, fx_hash_str};
use pas_text::words;

use pas_llm::world::{detect_aspects, Aspect};

/// Dimension of the hashed word-feature block.
pub const HASHED_DIM: usize = 512;
/// Total feature dimension: hashed block + one indicator per aspect.
pub const FEATURE_DIM: usize = HASHED_DIM + Aspect::ALL.len();

const NS_UNIGRAM: u64 = 0x756e_6931;
const NS_BIGRAM: u64 = 0x6269_6732;

/// Hashed unigram+bigram counts of `text`, L2-normalized, length `dim`.
pub fn hashed_features(text: &str, dim: usize) -> Vec<f32> {
    assert!(dim > 0, "feature dimension must be positive");
    let ws = words(text);
    let mut v = vec![0.0f32; dim];
    for w in &ws {
        let h = fx_combine(NS_UNIGRAM, fx_hash_str(w));
        v[(h % dim as u64) as usize] += 1.0;
    }
    for pair in ws.windows(2) {
        let h = fx_combine(NS_BIGRAM, fx_combine(fx_hash_str(&pair[0]), fx_hash_str(&pair[1])));
        v[(h % dim as u64) as usize] += 1.0;
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// One 0/1 indicator per aspect mentioned in `text`, index-aligned with
/// [`Aspect::ALL`].
pub fn aspect_features(text: &str) -> Vec<f32> {
    let detected = detect_aspects(text);
    Aspect::ALL.iter().map(|&a| if detected.contains(a) { 1.0 } else { 0.0 }).collect()
}

/// The full feature vector used by the workspace classifiers
/// (length [`FEATURE_DIM`]).
pub fn prompt_features(text: &str) -> Vec<f32> {
    let mut v = hashed_features(text, HASHED_DIM);
    v.extend(aspect_features(text));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_are_consistent() {
        assert_eq!(prompt_features("hello world").len(), FEATURE_DIM);
        assert_eq!(hashed_features("x", 64).len(), 64);
        assert_eq!(aspect_features("x").len(), Aspect::ALL.len());
    }

    #[test]
    fn featurization_is_deterministic() {
        assert_eq!(prompt_features("sort a list"), prompt_features("sort a list"));
    }

    #[test]
    fn hashed_block_is_unit_norm() {
        let v = hashed_features("some plain text with several words", HASHED_DIM);
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        assert!(prompt_features("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn aspect_indicator_fires() {
        let v = aspect_features("please reason step by step");
        assert_eq!(v[Aspect::StepByStep.index()], 1.0);
        assert_eq!(v.iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn different_texts_usually_differ() {
        assert_ne!(
            prompt_features("write a poem about autumn"),
            prompt_features("debug my python web scraper")
        );
    }

    #[test]
    fn bigrams_distinguish_word_order() {
        let a = hashed_features("dog bites man", HASHED_DIM);
        let b = hashed_features("man bites dog", HASHED_DIM);
        assert_ne!(a, b, "bigram features must be order-sensitive");
    }
}

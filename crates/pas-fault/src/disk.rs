//! Seeded disk-fault injection for the persistence layer.
//!
//! `pas-store` labels every durability boundary it crosses — each record
//! append, flush, segment roll, compaction step, and snapshot step — and
//! asks its [`DiskFaults`] handle for permission before performing it.
//! The handle counts boundaries in execution order, and when the counter
//! reaches the configured crash point it fires exactly one [`DiskFault`]
//! whose kind is a pure function of `(seed, op)`:
//!
//! - [`DiskFaultKind::CleanCrash`] — the process dies before any byte of
//!   the operation lands. Nothing is written.
//! - [`DiskFaultKind::ShortWrite`] — a seeded prefix of the operation's
//!   bytes lands before the crash (a torn record / torn file).
//! - [`DiskFaultKind::FlushFail`] — every byte is handed to the OS but the
//!   flush reports failure, so the writer must treat the operation as
//!   not-durable even though a reopen may see it complete.
//!
//! Because the schedule depends only on the boundary counter — never on
//! wall-clock time or thread interleaving — a crash-point sweep
//! (`crash_at(0), crash_at(1), …`) deterministically kills the store at
//! *every* reachable boundary, and the chaos suite proves reopen recovers
//! a prefix-consistent state from each one. A counting pass
//! ([`DiskFaults::counting`]) first runs the workload fault-free to learn
//! how many boundaries it crosses.

use std::cell::Cell;
use std::io;

use pas_par::derive_seed_path;

/// Stream tag separating disk-fault decisions from every other seeded
/// stream in the workspace.
const DISK_STREAM: u64 = 0xd15c;

/// What happens to the I/O operation at a fired crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskFaultKind {
    /// Crash before any byte of the operation is written.
    CleanCrash,
    /// Crash after a seeded proper prefix of the operation's bytes lands.
    ShortWrite,
    /// All bytes are written but the flush/sync reports failure.
    FlushFail,
}

/// One fired crash point: where the store died and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// The boundary counter value at which the fault fired.
    pub op: u64,
    /// The boundary label the store passed (e.g. `"append"`,
    /// `"compact.rename"`).
    pub label: &'static str,
    /// How the operation is perturbed.
    pub kind: DiskFaultKind,
}

impl DiskFault {
    /// This fault as an `io::Error`, for surfacing through `Result` I/O
    /// paths. The message carries the coordinates so sweep tests can
    /// assert which point fired.
    pub fn to_io(&self) -> io::Error {
        io::Error::other(format!(
            "injected disk fault at op {} ({}): {:?}",
            self.op, self.label, self.kind
        ))
    }
}

/// A seeded disk-fault schedule: counts durability boundaries and fires
/// one fault when the counter reaches the configured crash point.
///
/// Uses interior mutability so read-path and write-path store code can
/// share one handle; the store is single-writer, so no synchronization is
/// needed.
#[derive(Debug)]
pub struct DiskFaults {
    seed: u64,
    crash_at: Option<u64>,
    ops: Cell<u64>,
    fired: Cell<bool>,
}

impl DiskFaults {
    /// A schedule that never faults — used to count how many boundaries a
    /// workload crosses before sweeping `crash_at` over them.
    pub fn counting(seed: u64) -> DiskFaults {
        DiskFaults { seed, crash_at: None, ops: Cell::new(0), fired: Cell::new(false) }
    }

    /// A schedule that fires exactly one fault at boundary `op` (0-based).
    pub fn crash_at(seed: u64, op: u64) -> DiskFaults {
        DiskFaults { seed, crash_at: Some(op), ops: Cell::new(0), fired: Cell::new(false) }
    }

    /// Boundaries crossed so far.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// True once the schedule's crash point has fired.
    pub fn fired(&self) -> bool {
        self.fired.get()
    }

    /// Cross one labeled durability boundary: returns `Err(DiskFault)`
    /// exactly when the boundary counter hits the crash point.
    pub fn check(&self, label: &'static str) -> Result<(), DiskFault> {
        let op = self.ops.get();
        self.ops.set(op + 1);
        if self.crash_at == Some(op) {
            self.fired.set(true);
            Err(DiskFault { op, label, kind: DiskFaults::kind_at(self.seed, op) })
        } else {
            Ok(())
        }
    }

    /// The fault kind fired at `(seed, op)` — a pure function, so sweep
    /// tests can predict the schedule without running it.
    pub fn kind_at(seed: u64, op: u64) -> DiskFaultKind {
        match derive_seed_path(seed, &[DISK_STREAM, op]) % 3 {
            0 => DiskFaultKind::CleanCrash,
            1 => DiskFaultKind::ShortWrite,
            _ => DiskFaultKind::FlushFail,
        }
    }

    /// Instance form of [`DiskFaults::short_len`] for a fault this handle
    /// fired.
    pub fn short_len_at(&self, op: u64, full: usize) -> usize {
        DiskFaults::short_len(self.seed, op, full)
    }

    /// How many of `full` bytes a [`DiskFaultKind::ShortWrite`] at
    /// `(seed, op)` lands: a seeded proper prefix (`0 <= n < full`).
    pub fn short_len(seed: u64, op: u64, full: usize) -> usize {
        if full == 0 {
            return 0;
        }
        (derive_seed_path(seed, &[DISK_STREAM, op, 0x5074]) % full as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_never_fires() {
        let f = DiskFaults::counting(7);
        for _ in 0..100 {
            f.check("append").unwrap();
        }
        assert_eq!(f.ops(), 100);
        assert!(!f.fired());
    }

    #[test]
    fn crash_at_fires_exactly_once_at_the_point() {
        let f = DiskFaults::crash_at(7, 3);
        for op in 0..10u64 {
            let r = f.check("append");
            if op == 3 {
                let fault = r.unwrap_err();
                assert_eq!(fault.op, 3);
                assert_eq!(fault.kind, DiskFaults::kind_at(7, 3));
            } else {
                assert!(r.is_ok(), "unexpected fault at op {op}");
            }
        }
        assert!(f.fired());
    }

    #[test]
    fn kinds_cover_all_variants_across_ops() {
        let mut seen = std::collections::HashSet::new();
        for op in 0..64 {
            seen.insert(DiskFaults::kind_at(0xfa17, op));
        }
        assert_eq!(seen.len(), 3, "seeded kinds should cover all variants");
    }

    #[test]
    fn short_len_is_a_proper_prefix() {
        for op in 0..64 {
            let n = DiskFaults::short_len(0xfa17, op, 37);
            assert!(n < 37);
        }
        assert_eq!(DiskFaults::short_len(1, 2, 0), 0);
    }
}

//! Seeded network-fault simulation for multi-node cluster soaks.
//!
//! `pas-cluster` nodes exchange forward/response messages over a simulated
//! network. [`NetFaults`] decides what happens to every message — its
//! per-copy latencies, whether it is dropped or duplicated, and whether
//! the link is cut by an active partition — as a **pure function** of
//! `(seed, src, dst, msg)`, the same derived-stream discipline as
//! [`FaultProfile::decide`](crate::FaultProfile::decide) and
//! [`DiskFaults`](crate::DiskFaults). Message sequence numbers are
//! assigned by the (serial) cluster event loop, so the whole chaos
//! schedule is independent of thread count and a partition soak stays
//! bit-identical at `--threads 1` and `--threads 8`.
//!
//! Partitions are declarative: a [`NetPartition`] names a simulated-time
//! window and an *island* of node ids; while the window is open, every
//! link crossing the island boundary is cut (messages on it are refused at
//! send time), and when it closes the network heals with no residue.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_par::derive_seed_path;

/// Stream tag separating network-fault decisions from every other seeded
/// stream in the workspace.
const NET_STREAM: u64 = 0x4e7f;

/// Message class on the simulated network. Every lane draws its fates
/// from its own derived seed stream (`derive(seed, [NET_STREAM, lane,
/// src, dst, msg])` with a per-lane serial `msg` counter), so traffic on
/// one lane never perturbs another's chaos schedule — replication storms
/// leave serve-path fates untouched, which is what lets equivalence tests
/// chaos one lane while holding the others bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgLane {
    /// Request forwards and responses — the serving path.
    Serve,
    /// Write-fanout replication pushes from a serving candidate.
    Replicate,
    /// Anti-entropy digests and repair pushes.
    AntiEntropy,
    /// Rebalance hand-off entry transfers.
    Transfer,
    /// Failure-detector heartbeats and departure notices.
    Gossip,
}

impl MsgLane {
    /// All lanes, in tag order.
    pub const ALL: [MsgLane; 5] = [
        MsgLane::Serve,
        MsgLane::Replicate,
        MsgLane::AntiEntropy,
        MsgLane::Transfer,
        MsgLane::Gossip,
    ];

    /// Stable lane index (also the derivation tag below).
    pub fn index(self) -> usize {
        match self {
            MsgLane::Serve => 0,
            MsgLane::Replicate => 1,
            MsgLane::AntiEntropy => 2,
            MsgLane::Transfer => 3,
            MsgLane::Gossip => 4,
        }
    }

    /// Lane name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            MsgLane::Serve => "serve",
            MsgLane::Replicate => "replicate",
            MsgLane::AntiEntropy => "anti-entropy",
            MsgLane::Transfer => "transfer",
            MsgLane::Gossip => "gossip",
        }
    }

    /// Seed-derivation tag. Offset so `Serve` does not collide with the
    /// pre-lane stream layout's `src` coordinate.
    fn tag(self) -> u64 {
        0x1a4e + self.index() as u64
    }
}

/// Drop/duplicate rates overriding the profile-wide defaults for one
/// lane (latency always follows the profile — lanes share the wire).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneFaults {
    /// Per-message drop probability on this lane.
    pub drop_rate: f32,
    /// Per-message duplicate probability on this lane.
    pub duplicate_rate: f32,
}

/// One declarative partition window: nodes inside `island` cannot exchange
/// messages with nodes outside it while `start_ms <= now < end_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPartition {
    /// Simulated time the partition opens (inclusive).
    pub start_ms: u64,
    /// Simulated time the partition heals (exclusive).
    pub end_ms: u64,
    /// Node ids on the minority side of the cut.
    pub island: Vec<u32>,
}

impl NetPartition {
    /// True while this window is open at `now`.
    pub fn active(&self, now: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&now)
    }

    /// True when this window cuts the `a`↔`b` link at `now` (the link
    /// crosses the island boundary).
    pub fn cuts(&self, now: u64, a: u32, b: u32) -> bool {
        self.active(now) && (self.island.contains(&a) != self.island.contains(&b))
    }
}

/// A seeded, named network-fault schedule — the network analogue of
/// [`FaultProfile`](crate::FaultProfile). Latency is `base + jitter` where
/// jitter is drawn uniformly from `0..=jitter_ms` per delivered copy;
/// rates are per-message probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultProfile {
    /// Profile name (the CLI's `--net-profile` argument).
    pub name: &'static str,
    /// Fixed one-way latency floor in simulated milliseconds.
    pub base_latency_ms: u64,
    /// Seeded uniform jitter added on top (`0..=jitter_ms`).
    pub jitter_ms: u64,
    /// Per-message probability the message is silently dropped.
    pub drop_rate: f32,
    /// Per-message probability a second copy is delivered.
    pub duplicate_rate: f32,
    /// Declarative partition windows (see [`NetPartition`]).
    pub partitions: Vec<NetPartition>,
    /// Per-lane drop/duplicate overrides; lanes not listed use the
    /// profile-wide rates. Partitions and latency cut all lanes equally —
    /// they model the wire, not the message class.
    pub lane_overrides: Vec<(MsgLane, LaneFaults)>,
}

impl NetFaultProfile {
    /// The clean profile: instant-ish, lossless, never partitioned.
    pub fn none() -> NetFaultProfile {
        NetFaultProfile {
            name: "none",
            base_latency_ms: 1,
            jitter_ms: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            partitions: Vec::new(),
            lane_overrides: Vec::new(),
        }
    }

    /// A quiet datacenter network: low latency, mild jitter, no loss.
    pub fn lan() -> NetFaultProfile {
        NetFaultProfile { name: "lan", base_latency_ms: 2, jitter_ms: 3, ..NetFaultProfile::none() }
    }

    /// A lossy network: LAN latencies plus drops and duplicates — the
    /// profile that exercises hedging and rescue timers.
    pub fn lossy() -> NetFaultProfile {
        NetFaultProfile {
            name: "lossy",
            base_latency_ms: 2,
            jitter_ms: 6,
            drop_rate: 0.08,
            duplicate_rate: 0.04,
            ..NetFaultProfile::none()
        }
    }

    /// All named profiles, for CLI help text.
    pub const NAMES: [&'static str; 3] = ["none", "lan", "lossy"];

    /// Looks a profile up by name.
    pub fn named(name: &str) -> Option<NetFaultProfile> {
        match name {
            "none" => Some(NetFaultProfile::none()),
            "lan" => Some(NetFaultProfile::lan()),
            "lossy" => Some(NetFaultProfile::lossy()),
            _ => None,
        }
    }

    /// This profile with one more partition window added.
    pub fn with_partition(mut self, start_ms: u64, end_ms: u64, island: Vec<u32>) -> Self {
        self.partitions.push(NetPartition { start_ms, end_ms, island });
        self
    }

    /// This profile with `lane`'s drop/duplicate rates overridden
    /// (replacing any earlier override for the same lane).
    pub fn with_lane(mut self, lane: MsgLane, drop_rate: f32, duplicate_rate: f32) -> Self {
        self.lane_overrides.retain(|(l, _)| *l != lane);
        self.lane_overrides.push((lane, LaneFaults { drop_rate, duplicate_rate }));
        self
    }

    /// The effective `(drop_rate, duplicate_rate)` for `lane`.
    pub fn rates_for(&self, lane: MsgLane) -> (f32, f32) {
        self.lane_overrides
            .iter()
            .find(|(l, _)| *l == lane)
            .map(|(_, f)| (f.drop_rate, f.duplicate_rate))
            .unwrap_or((self.drop_rate, self.duplicate_rate))
    }
}

/// A seeded network-fault schedule bound to a base seed. Everything it
/// answers is a pure function of its arguments; the handle holds no
/// mutable state at all.
#[derive(Debug, Clone)]
pub struct NetFaults {
    profile: NetFaultProfile,
    seed: u64,
}

impl NetFaults {
    /// Binds `profile` to `seed`.
    pub fn new(profile: NetFaultProfile, seed: u64) -> NetFaults {
        NetFaults { profile, seed }
    }

    /// The bound profile.
    pub fn profile(&self) -> &NetFaultProfile {
        &self.profile
    }

    /// True when the `src`↔`dst` link is cut by any active partition
    /// window at `now`. Senders consult this *before* committing a
    /// message; a cut link refuses the send outright.
    pub fn partitioned(&self, now: u64, src: u32, dst: u32) -> bool {
        self.profile.partitions.iter().any(|p| p.cuts(now, src, dst))
    }

    /// True when *every* pairing of `src` with `dsts` is cut at `now` —
    /// the full-partition condition that triggers local-passthrough
    /// degradation.
    pub fn fully_partitioned(&self, now: u64, src: u32, dsts: &[u32]) -> bool {
        !dsts.is_empty() && dsts.iter().all(|&d| self.partitioned(now, src, d))
    }

    /// The fate of message number `msg` on `lane`'s `src → dst` link: one
    /// latency per delivered copy, in delivery-schedule order. An empty
    /// vec means the message is dropped; two entries mean it is
    /// duplicated. Pure in `(seed, lane, src, dst, msg)` — the caller
    /// assigns `msg` serially *per lane*, which keeps chaos both
    /// thread-invariant and lane-independent (extra replication traffic
    /// cannot shift the serve lane's schedule).
    pub fn deliveries(&self, lane: MsgLane, src: u32, dst: u32, msg: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(derive_seed_path(
            self.seed,
            &[NET_STREAM, lane.tag(), u64::from(src), u64::from(dst), msg],
        ));
        let (drop_rate, duplicate_rate) = self.profile.rates_for(lane);
        if drop_rate > 0.0 && rng.random::<f32>() < drop_rate {
            return Vec::new();
        }
        let copies =
            if duplicate_rate > 0.0 && rng.random::<f32>() < duplicate_rate { 2 } else { 1 };
        (0..copies)
            .map(|_| {
                let jitter = if self.profile.jitter_ms == 0 {
                    0
                } else {
                    rng.random_range(0..self.profile.jitter_ms + 1)
                };
                self.profile.base_latency_ms + jitter
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliveries_are_a_pure_function() {
        let n = NetFaults::new(NetFaultProfile::lossy(), 42);
        for lane in MsgLane::ALL {
            for msg in 0..50u64 {
                assert_eq!(n.deliveries(lane, 0, 1, msg), n.deliveries(lane, 0, 1, msg));
            }
        }
    }

    #[test]
    fn clean_profile_delivers_exactly_one_copy() {
        let n = NetFaults::new(NetFaultProfile::none(), 7);
        for msg in 0..100u64 {
            assert_eq!(n.deliveries(MsgLane::Serve, 2, 3, msg), vec![1]);
        }
    }

    #[test]
    fn lossy_profile_drops_and_duplicates() {
        let n = NetFaults::new(NetFaultProfile::lossy(), 0xc1a0);
        let fates: Vec<usize> =
            (0..400u64).map(|m| n.deliveries(MsgLane::Serve, 0, 1, m).len()).collect();
        let drops = fates.iter().filter(|&&c| c == 0).count();
        let dups = fates.iter().filter(|&&c| c == 2).count();
        assert!(drops > 10, "expected ~8% drops, saw {drops}/400");
        assert!(dups > 3, "expected ~4% duplicates, saw {dups}/400");
    }

    #[test]
    fn jitter_stays_in_band_and_varies() {
        let n = NetFaults::new(NetFaultProfile::lan(), 9);
        let p = NetFaultProfile::lan();
        let lats: Vec<u64> =
            (0..200u64).flat_map(|m| n.deliveries(MsgLane::Serve, 1, 0, m)).collect();
        assert!(lats
            .iter()
            .all(|&l| (p.base_latency_ms..=p.base_latency_ms + p.jitter_ms).contains(&l)));
        assert!(lats.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn links_differ_but_directions_are_independent_streams() {
        let n = NetFaults::new(NetFaultProfile::lossy(), 3);
        let a: Vec<_> = (0..64u64).map(|m| n.deliveries(MsgLane::Serve, 0, 1, m)).collect();
        let b: Vec<_> = (0..64u64).map(|m| n.deliveries(MsgLane::Serve, 1, 0, m)).collect();
        assert_ne!(a, b, "each directed link must draw from its own stream");
    }

    #[test]
    fn lanes_are_independent_streams() {
        let n = NetFaults::new(NetFaultProfile::lossy(), 17);
        let mut schedules = Vec::new();
        for lane in MsgLane::ALL {
            schedules.push((0..64u64).map(|m| n.deliveries(lane, 0, 1, m)).collect::<Vec<_>>());
        }
        for i in 0..schedules.len() {
            for j in i + 1..schedules.len() {
                assert_ne!(
                    schedules[i],
                    schedules[j],
                    "{} and {} must draw from distinct streams",
                    MsgLane::ALL[i].name(),
                    MsgLane::ALL[j].name()
                );
            }
        }
    }

    #[test]
    fn lane_overrides_replace_rates_without_touching_other_lanes() {
        let base = NetFaultProfile::none();
        let tuned = base.clone().with_lane(MsgLane::Replicate, 1.0, 0.0);
        assert_eq!(tuned.rates_for(MsgLane::Replicate), (1.0, 0.0));
        assert_eq!(tuned.rates_for(MsgLane::Serve), (0.0, 0.0));
        let n = NetFaults::new(tuned, 5);
        for msg in 0..40u64 {
            assert!(n.deliveries(MsgLane::Replicate, 0, 1, msg).is_empty());
            assert_eq!(n.deliveries(MsgLane::Serve, 0, 1, msg), vec![1]);
        }
        // A second override for the same lane replaces the first.
        let retuned = NetFaultProfile::none().with_lane(MsgLane::Gossip, 1.0, 0.0).with_lane(
            MsgLane::Gossip,
            0.25,
            0.5,
        );
        assert_eq!(retuned.rates_for(MsgLane::Gossip), (0.25, 0.5));
        assert_eq!(retuned.lane_overrides.len(), 1);
    }

    #[test]
    fn partitions_cut_only_crossing_links_only_inside_the_window() {
        let p = NetFaultProfile::none().with_partition(100, 200, vec![0, 1]);
        let n = NetFaults::new(p, 1);
        // Crossing link, window open.
        assert!(n.partitioned(100, 0, 2));
        assert!(n.partitioned(199, 2, 1));
        // Same side: never cut.
        assert!(!n.partitioned(150, 0, 1));
        assert!(!n.partitioned(150, 2, 3));
        // Window closed (end exclusive) or not yet open.
        assert!(!n.partitioned(99, 0, 2));
        assert!(!n.partitioned(200, 0, 2));
    }

    #[test]
    fn full_partition_requires_every_candidate_cut() {
        let p = NetFaultProfile::none().with_partition(0, 10, vec![0]);
        let n = NetFaults::new(p, 1);
        assert!(n.fully_partitioned(5, 0, &[1, 2, 3]));
        assert!(!n.fully_partitioned(5, 1, &[2, 3]));
        assert!(!n.fully_partitioned(20, 0, &[1]));
        assert!(!n.fully_partitioned(5, 0, &[]));
    }
}

//! The fault-injection boundary: deterministic perturbation of chat calls.
//!
//! A [`FaultInjector`] evaluates a [`FaultProfile`] at `(stream, call,
//! attempt)` coordinates and turns scheduled faults into [`ChatError`]s.
//! [`FaultyModel`] wraps any infallible [`ChatModel`] into an
//! [`AttemptChat`] boundary that fails exactly where the schedule says —
//! the simulated stand-in for a real network client in front of a real
//! backend.
//!
//! Call identity is **content-derived**: the logical call key is the hash
//! of the input text, never a global counter. A counter would make the
//! schedule depend on the order workers happen to issue calls; the hash
//! makes it a pure function of the work item, which is what lets a faulted
//! parallel run, a faulted serial run, and a resumed run all see the same
//! faults in the same places.

use pas_llm::{ChatError, ChatModel, TryChatModel};
use pas_text::fx_hash_str;

use crate::profile::{FaultKind, FaultProfile};

/// Stable stream identifiers for the pipeline's model boundaries, so each
/// boundary sees an independent fault schedule under one base seed.
pub mod streams {
    /// The Algorithm 1 teacher boundary.
    pub const TEACHER: u64 = 1;
    /// The Algorithm 1 critic boundary.
    pub const CRITIC: u64 = 2;
    /// The serve-time `M_p` (prompt-complement model) boundary.
    pub const SERVE_MP: u64 = 3;
    /// Generic/main boundary for callers outside the named ones.
    pub const MAIN: u64 = 4;
}

/// A fallible chat boundary that knows which retry attempt it is serving —
/// the contract between the injector (which decides per-attempt faults) and
/// the retry engine (which drives attempts).
pub trait AttemptChat: Send + Sync {
    /// Stable model identifier.
    fn name(&self) -> &str;

    /// One attempt at answering `input`.
    fn chat_attempt(&self, input: &str, attempt: u64) -> Result<String, ChatError>;
}

/// Every fallible model is an [`AttemptChat`] whose attempts are
/// indistinguishable (real backends don't know your retry count either).
impl<T: TryChatModel> AttemptChat for T {
    fn name(&self) -> &str {
        TryChatModel::name(self)
    }

    fn chat_attempt(&self, input: &str, _attempt: u64) -> Result<String, ChatError> {
        self.try_chat(input)
    }
}

/// Evaluates a seeded [`FaultProfile`] and renders scheduled faults as
/// [`ChatError`]s.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector for `profile` under `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultInjector { profile, seed }
    }

    /// The profile being injected.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// True when this injector can never fault anything.
    pub fn is_clean(&self) -> bool {
        self.profile.is_clean()
    }

    /// Passes or fails attempt `attempt` of logical call `call` on
    /// `stream`, per the schedule.
    pub fn check(&self, stream: u64, call: u64, attempt: u64) -> Result<(), ChatError> {
        match self.profile.decide(self.seed, stream, call, attempt) {
            None => Ok(()),
            Some(kind) => Err(self.error_for(kind)),
        }
    }

    fn error_for(&self, kind: FaultKind) -> ChatError {
        if self.profile.permanent {
            // A hard outage is unretryable; tell callers to degrade.
            return ChatError::Unavailable;
        }
        match kind {
            FaultKind::Transient => ChatError::Transient,
            FaultKind::Timeout => ChatError::Timeout { elapsed_ms: self.profile.timeout_ms },
            FaultKind::RateLimit => {
                ChatError::RateLimited { retry_after_ms: self.profile.retry_after_ms }
            }
            FaultKind::Garble => ChatError::Garbled,
        }
    }
}

/// An infallible [`ChatModel`] seen through a deterministic fault injector:
/// attempts fail exactly where the schedule says, succeed with the inner
/// model's answer everywhere else.
pub struct FaultyModel<M: ChatModel> {
    inner: M,
    injector: FaultInjector,
    stream: u64,
}

impl<M: ChatModel> FaultyModel<M> {
    /// Wraps `inner` with `injector` on fault stream `stream` (see
    /// [`streams`]).
    pub fn new(inner: M, injector: FaultInjector, stream: u64) -> Self {
        FaultyModel { inner, injector, stream }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The injector in front of it.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl<M: ChatModel> AttemptChat for FaultyModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn chat_attempt(&self, input: &str, attempt: u64) -> Result<String, ChatError> {
        self.injector.check(self.stream, fx_hash_str(input), attempt)?;
        Ok(self.inner.chat(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl ChatModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn chat(&self, input: &str) -> String {
            input.to_string()
        }
    }

    #[test]
    fn clean_injector_passes_everything() {
        let model = FaultyModel::new(Echo, FaultInjector::new(FaultProfile::none(), 1), 0);
        for attempt in 0..5 {
            assert_eq!(model.chat_attempt("hello", attempt).as_deref(), Ok("hello"));
        }
    }

    #[test]
    fn outage_maps_to_unavailable() {
        let inj = FaultInjector::new(FaultProfile::outage(), 2);
        assert_eq!(inj.check(0, 0, 0), Err(ChatError::Unavailable));
        assert_eq!(inj.check(9, 9, 1_000), Err(ChatError::Unavailable));
    }

    #[test]
    fn faults_are_content_keyed_not_order_keyed() {
        let model = FaultyModel::new(Echo, FaultInjector::new(FaultProfile::chaos(), 3), 1);
        // The schedule for a given input is identical no matter how many
        // other calls happened in between.
        let first: Vec<_> = (0..4).map(|a| model.chat_attempt("prompt A", a)).collect();
        for other in 0..50 {
            let _ = model.chat_attempt(&format!("noise {other}"), 0);
        }
        let again: Vec<_> = (0..4).map(|a| model.chat_attempt("prompt A", a)).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn chaos_attempts_eventually_pass() {
        let profile = FaultProfile::chaos();
        let cap = u64::from(profile.max_consecutive);
        let model = FaultyModel::new(Echo, FaultInjector::new(profile, 4), streams::TEACHER);
        for i in 0..40 {
            let input = format!("prompt {i}");
            let ok = (0..=cap).any(|a| model.chat_attempt(&input, a).is_ok());
            assert!(ok, "call for {input:?} never succeeded within the cap");
        }
    }

    #[test]
    fn fault_kinds_map_to_matching_errors() {
        let profile = FaultProfile::chaos();
        let inj = FaultInjector::new(profile.clone(), 5);
        let mut seen = std::collections::HashSet::new();
        for call in 0..500u64 {
            for attempt in 0..u64::from(profile.max_consecutive) {
                if let Err(e) = inj.check(streams::MAIN, call, attempt) {
                    seen.insert(std::mem::discriminant(&e));
                    match e {
                        ChatError::Timeout { elapsed_ms } => {
                            assert_eq!(elapsed_ms, profile.timeout_ms)
                        }
                        ChatError::RateLimited { retry_after_ms } => {
                            assert_eq!(retry_after_ms, profile.retry_after_ms)
                        }
                        ChatError::Transient | ChatError::Garbled => {}
                        ChatError::Unavailable => panic!("chaos is not permanent"),
                    }
                }
            }
        }
        assert!(seen.len() >= 3, "chaos should produce several fault kinds, saw {}", seen.len());
    }
}

//! Merge-able accounting of what the fault-tolerance layer did.

use serde::{Deserialize, Serialize};

/// Counters describing every fault seen, retry spent, and degradation taken
/// across one region of work.
///
/// Like `GenReport` in `pas-data`, the report is designed for *ordered
/// reduction*: per-item reports come back from `pas_par::par_map` in item
/// order and fold into an aggregate via [`FaultReport::merge`], which is
/// associative with [`FaultReport::default`] as the identity — so aggregate
/// counts never depend on worker scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Logical calls issued through the resilience layer.
    pub calls: u64,
    /// Calls that ultimately returned a value.
    pub succeeded: u64,
    /// Calls that failed after exhausting their retry/deadline budget (or
    /// were fast-failed by an open circuit breaker).
    pub failed: u64,
    /// Individual attempts, including the first try of every call.
    pub attempts: u64,
    /// Retries — attempts beyond each call's first.
    pub retries: u64,
    /// Transient errors observed.
    pub transient: u64,
    /// Timeouts observed.
    pub timeouts: u64,
    /// Rate-limit rejections observed.
    pub rate_limited: u64,
    /// Truncated/garbled completions observed.
    pub garbled: u64,
    /// Hard "backend unavailable" errors observed.
    pub unavailable: u64,
    /// Simulated milliseconds spent waiting in backoff.
    pub backoff_ms: u64,
    /// Total simulated milliseconds consumed (attempt costs + backoff).
    pub simulated_ms: u64,
    /// Calls abandoned because their simulated deadline budget ran out.
    pub deadline_exceeded: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Calls rejected immediately by an open breaker (no attempt made).
    pub breaker_fast_fails: u64,
    /// Serve-time degradations: requests answered with the passthrough
    /// prompt because the optimizer boundary was exhausted.
    pub degraded: u64,
}

impl FaultReport {
    /// True when nothing at all went wrong.
    pub fn is_clean(&self) -> bool {
        self.failed == 0
            && self.retries == 0
            && self.degraded == 0
            && self.breaker_trips == 0
            && self.calls == self.succeeded
    }

    /// Total injected faults of any kind.
    pub fn total_faults(&self) -> u64 {
        self.transient + self.timeouts + self.rate_limited + self.garbled + self.unavailable
    }

    /// Folds `other`'s counters into `self`. Associative, with
    /// [`FaultReport::default`] as the identity — every counter is a plain
    /// sum, so any fold order over any partition of the work produces the
    /// same aggregate.
    pub fn merge(&mut self, other: &FaultReport) {
        self.calls += other.calls;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.transient += other.transient;
        self.timeouts += other.timeouts;
        self.rate_limited += other.rate_limited;
        self.garbled += other.garbled;
        self.unavailable += other.unavailable;
        self.backoff_ms += other.backoff_ms;
        self.simulated_ms += other.simulated_ms;
        self.deadline_exceeded += other.deadline_exceeded;
        self.breaker_trips += other.breaker_trips;
        self.breaker_fast_fails += other.breaker_fast_fails;
        self.degraded += other.degraded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_report(seed: u64) -> FaultReport {
        // A deterministic pseudo-arbitrary report; proptest drives `seed`.
        let f = |k: u64| (seed.rotate_left(k as u32).wrapping_mul(k + 3)) % 1000;
        FaultReport {
            calls: f(1),
            succeeded: f(2),
            failed: f(3),
            attempts: f(4),
            retries: f(5),
            transient: f(6),
            timeouts: f(7),
            rate_limited: f(8),
            garbled: f(9),
            unavailable: f(10),
            backoff_ms: f(11),
            simulated_ms: f(12),
            deadline_exceeded: f(13),
            breaker_trips: f(14),
            breaker_fast_fails: f(15),
            degraded: f(16),
        }
    }

    proptest! {
        #[test]
        fn merge_is_associative(a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000) {
            let (a, b, c) = (arb_report(a), arb_report(b), arb_report(c));
            let left = {
                let mut ab = a.clone();
                ab.merge(&b);
                ab.merge(&c);
                ab
            };
            let right = {
                let mut bc = b.clone();
                bc.merge(&c);
                let mut out = a.clone();
                out.merge(&bc);
                out
            };
            prop_assert_eq!(left, right);
        }

        #[test]
        fn default_is_the_identity(s in 0u64..10_000) {
            let r = arb_report(s);
            let mut left = FaultReport::default();
            left.merge(&r);
            prop_assert_eq!(&left, &r);
            let mut right = r.clone();
            right.merge(&FaultReport::default());
            prop_assert_eq!(&right, &r);
        }
    }

    #[test]
    fn clean_report_is_clean() {
        let mut r = FaultReport::default();
        assert!(r.is_clean());
        r.calls = 3;
        r.succeeded = 3;
        assert!(r.is_clean());
        r.retries = 1;
        assert!(!r.is_clean());
        assert_eq!(r.total_faults(), 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = arb_report(17);
        let json = serde_json::to_string(&r).unwrap();
        let back: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

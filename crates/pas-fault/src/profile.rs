//! Deterministic fault schedules.
//!
//! A [`FaultProfile`] decides, for every `(stream, call, attempt)`
//! coordinate under a base seed, whether that attempt is perturbed and how
//! — a pure function, following the same derived-stream discipline as
//! `pas_par::derive_seed`. Because the schedule depends only on the
//! coordinates and never on wall-clock time or thread interleaving, a
//! faulted run is exactly reproducible: same seed, same faults, at any
//! thread count.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_par::derive_seed_path;

/// The fault classes the injector can impose on one call attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Transient transport error — the call never reaches the model.
    Transient,
    /// The call hangs until the deadline fires; consumes simulated time.
    Timeout,
    /// A rate-limit rejection (429); part of a burst covering consecutive
    /// attempts.
    RateLimit,
    /// The model responds, but the completion arrives truncated/garbled.
    Garble,
}

/// A seeded, named fault schedule.
///
/// Rates are per-attempt probabilities; `rate_limit_rate` is the
/// probability that a *call* starts inside a rate-limit burst, in which
/// case its first `burst_len` attempts are all rejected. Unless
/// `permanent` is set, no call sees more than `max_consecutive` faulted
/// attempts — the "every call eventually succeeds" guarantee the chaos
/// determinism property relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Profile name (the CLI's `--fault-profile` argument).
    pub name: &'static str,
    /// Per-attempt probability of a transient error.
    pub transient_rate: f32,
    /// Per-attempt probability of a timeout.
    pub timeout_rate: f32,
    /// Per-attempt probability of a garbled completion.
    pub garble_rate: f32,
    /// Per-call probability of starting inside a rate-limit burst.
    pub rate_limit_rate: f32,
    /// Consecutive attempts rejected when a burst hits.
    pub burst_len: u32,
    /// Hard cap on consecutive faulted attempts per call (eventual-success
    /// guarantee). Ignored when `permanent` is set.
    pub max_consecutive: u32,
    /// When true every attempt faults forever — a hard outage.
    pub permanent: bool,
    /// Simulated milliseconds one timeout consumes.
    pub timeout_ms: u64,
    /// Simulated `Retry-After` milliseconds a rate-limit rejection carries.
    pub retry_after_ms: u64,
}

impl FaultProfile {
    /// The clean profile: no faults ever.
    pub fn none() -> FaultProfile {
        FaultProfile {
            name: "none",
            transient_rate: 0.0,
            timeout_rate: 0.0,
            garble_rate: 0.0,
            rate_limit_rate: 0.0,
            burst_len: 0,
            max_consecutive: 0,
            permanent: false,
            timeout_ms: 1000,
            retry_after_ms: 400,
        }
    }

    /// Occasional transient errors, timeouts, and garbled completions.
    pub fn transient() -> FaultProfile {
        FaultProfile {
            name: "transient",
            transient_rate: 0.20,
            timeout_rate: 0.05,
            garble_rate: 0.05,
            rate_limit_rate: 0.0,
            burst_len: 0,
            max_consecutive: 4,
            ..FaultProfile::none()
        }
    }

    /// Rate-limit bursts on top of transient noise.
    pub fn bursty() -> FaultProfile {
        FaultProfile {
            name: "bursty",
            transient_rate: 0.12,
            timeout_rate: 0.05,
            garble_rate: 0.05,
            rate_limit_rate: 0.20,
            burst_len: 3,
            max_consecutive: 6,
            ..FaultProfile::none()
        }
    }

    /// Everything at once, as hard as it can hit while every call still
    /// eventually succeeds.
    pub fn chaos() -> FaultProfile {
        FaultProfile {
            name: "chaos",
            transient_rate: 0.30,
            timeout_rate: 0.12,
            garble_rate: 0.15,
            rate_limit_rate: 0.25,
            burst_len: 4,
            max_consecutive: 8,
            ..FaultProfile::none()
        }
    }

    /// Hard permanent outage: every attempt fails, forever. The profile
    /// that exercises the degraded-mode serving guarantee.
    pub fn outage() -> FaultProfile {
        FaultProfile { name: "outage", permanent: true, ..FaultProfile::none() }
    }

    /// All named profiles, for CLI help text.
    pub const NAMES: [&'static str; 5] = ["none", "transient", "bursty", "chaos", "outage"];

    /// Looks a profile up by name.
    pub fn named(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::none()),
            "transient" => Some(FaultProfile::transient()),
            "bursty" => Some(FaultProfile::bursty()),
            "chaos" => Some(FaultProfile::chaos()),
            "outage" => Some(FaultProfile::outage()),
            _ => None,
        }
    }

    /// True when this profile can never inject anything.
    pub fn is_clean(&self) -> bool {
        !self.permanent
            && self.transient_rate <= 0.0
            && self.timeout_rate <= 0.0
            && self.garble_rate <= 0.0
            && self.rate_limit_rate <= 0.0
    }

    /// The fault (if any) injected into attempt `attempt` of logical call
    /// `call` on stream `stream`, under `base` — a pure function of its
    /// arguments, which is the whole determinism story: retries, thread
    /// counts, and resumed runs all see the identical schedule.
    pub fn decide(&self, base: u64, stream: u64, call: u64, attempt: u64) -> Option<FaultKind> {
        if self.permanent {
            return Some(FaultKind::Transient);
        }
        if self.is_clean() || attempt >= u64::from(self.max_consecutive) {
            return None;
        }
        // One draw per call decides whether it sits inside a rate-limit
        // burst; burst rejections cover the first `burst_len` attempts.
        if self.rate_limit_rate > 0.0 && attempt < u64::from(self.burst_len) {
            let mut call_rng =
                StdRng::seed_from_u64(derive_seed_path(base, &[stream, call, u64::MAX]));
            if call_rng.random::<f32>() < self.rate_limit_rate {
                return Some(FaultKind::RateLimit);
            }
        }
        let mut rng = StdRng::seed_from_u64(derive_seed_path(base, &[stream, call, attempt]));
        let u: f32 = rng.random();
        if u < self.transient_rate {
            Some(FaultKind::Transient)
        } else if u < self.transient_rate + self.timeout_rate {
            Some(FaultKind::Timeout)
        } else if u < self.transient_rate + self.timeout_rate + self.garble_rate {
            Some(FaultKind::Garble)
        } else {
            None
        }
    }

    /// Smallest attempt index guaranteed to succeed for this profile
    /// (`None` under a permanent outage). Retry budgets must exceed this
    /// for the eventual-success property to hold.
    pub fn worst_case_faults(&self) -> Option<u32> {
        if self.permanent {
            None
        } else if self.is_clean() {
            Some(0)
        } else {
            Some(self.max_consecutive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_round_trip() {
        for name in FaultProfile::NAMES {
            let p = FaultProfile::named(name).expect(name);
            assert_eq!(p.name, name);
        }
        assert!(FaultProfile::named("nope").is_none());
    }

    #[test]
    fn decide_is_a_pure_function() {
        let p = FaultProfile::chaos();
        for stream in 0..5u64 {
            for call in 0..5u64 {
                for attempt in 0..10u64 {
                    assert_eq!(
                        p.decide(42, stream, call, attempt),
                        p.decide(42, stream, call, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn every_call_eventually_succeeds_unless_permanent() {
        let p = FaultProfile::chaos();
        for stream in 0..50u64 {
            for call in 0..20u64 {
                let cap = u64::from(p.max_consecutive);
                assert_eq!(p.decide(7, stream, call, cap), None, "stream {stream} call {call}");
            }
        }
    }

    #[test]
    fn outage_never_succeeds() {
        let p = FaultProfile::outage();
        for attempt in [0u64, 1, 100, 1_000_000] {
            assert_eq!(p.decide(1, 0, 0, attempt), Some(FaultKind::Transient));
        }
        assert_eq!(p.worst_case_faults(), None);
    }

    #[test]
    fn clean_profile_injects_nothing() {
        let p = FaultProfile::none();
        assert!(p.is_clean());
        for i in 0..100u64 {
            assert_eq!(p.decide(9, i, i, 0), None);
        }
        assert_eq!(p.worst_case_faults(), Some(0));
    }

    #[test]
    fn chaos_actually_injects_faults() {
        let p = FaultProfile::chaos();
        let injected = (0..200u64).filter(|&stream| p.decide(3, stream, 0, 0).is_some()).count();
        assert!(injected > 40, "only {injected}/200 first attempts faulted");
    }

    #[test]
    fn bursts_reject_consecutive_attempts() {
        let p = FaultProfile { rate_limit_rate: 1.0, ..FaultProfile::bursty() };
        for attempt in 0..u64::from(p.burst_len) {
            assert_eq!(p.decide(5, 1, 2, attempt), Some(FaultKind::RateLimit));
        }
    }
}

//! Retry with seeded exponential backoff, deadline budgets, and a circuit
//! breaker.
//!
//! Time here is **simulated**: attempts and backoff waits consume
//! milliseconds of a per-call budget without ever sleeping, so a faulted run
//! is exactly as fast as a clean one and — more importantly — completely
//! deterministic. Backoff jitter is drawn from a seed derived from
//! `(engine seed, call key, attempt)`, never from wall-clock entropy, so the
//! retry schedule of any call is a pure function of its identity.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_llm::ChatError;
use pas_par::derive_seed_path;

use crate::report::FaultReport;

// Observability mirrors of the `FaultReport` counters. Calls run inside
// `par_map` workers, but every increment is a commutative saturating add
// over a content-keyed call set, so the totals are thread-count invariant
// (see the `fault.*` section of DESIGN.md §10).
static OBS_CALLS: pas_obs::Counter = pas_obs::Counter::new("fault.calls");
static OBS_ATTEMPTS: pas_obs::Counter = pas_obs::Counter::new("fault.attempts");
static OBS_RETRIES: pas_obs::Counter = pas_obs::Counter::new("fault.retries");
static OBS_SUCCEEDED: pas_obs::Counter = pas_obs::Counter::new("fault.succeeded");
static OBS_FAILED: pas_obs::Counter = pas_obs::Counter::new("fault.failed");
static OBS_BACKOFF_MS: pas_obs::Counter = pas_obs::Counter::new("fault.backoff_ms");
static OBS_DEADLINE: pas_obs::Counter = pas_obs::Counter::new("fault.deadline_exceeded");
static OBS_BREAKER_TRIPS: pas_obs::Counter = pas_obs::Counter::new("fault.breaker_trips");
static OBS_BREAKER_CLOSES: pas_obs::Counter = pas_obs::Counter::new("fault.breaker_closes");
static OBS_FAST_FAILS: pas_obs::Counter = pas_obs::Counter::new("fault.breaker_fast_fails");
/// Simulated milliseconds each call consumed (attempt costs + backoff).
static OBS_CALL_SIM_MS: pas_obs::Histogram = pas_obs::Histogram::new("fault.call_sim_ms");

/// Jitter draws live on their own derived lane so they never collide with
/// fault-schedule draws keyed on the same call.
const JITTER_LANE: u64 = 0x00ba_c0ff;

/// Retry/backoff/deadline/breaker parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per call before giving up (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a seeded factor
    /// in `[1 − jitter, 1]` (decorrelates retry storms without losing
    /// determinism).
    pub jitter: f64,
    /// Simulated-milliseconds budget per call; exceeding it abandons the
    /// call with a timeout.
    pub deadline_ms: u64,
    /// Simulated cost of one non-timeout attempt.
    pub attempt_cost_ms: u64,
    /// Consecutive *call* failures (not attempt failures) that trip the
    /// breaker open.
    pub breaker_threshold: u32,
    /// While open, every Nth blocked call probes the backend instead of
    /// fast-failing; a successful probe closes the breaker.
    pub breaker_probe_interval: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 12,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter: 0.5,
            deadline_ms: 60_000,
            attempt_cost_ms: 5,
            breaker_threshold: 3,
            breaker_probe_interval: 8,
        }
    }
}

/// A count-based circuit breaker shared by all calls through one engine.
///
/// The breaker can only engage when calls *fail outright* — which, under an
/// eventual-success fault schedule, never happens (the retry budget exceeds
/// the schedule's consecutive-fault cap). So in every run whose output the
/// determinism contract covers, the breaker is inert; under a permanent
/// outage it bounds wasted attempts, where every call fails identically
/// whether probed or fast-failed.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    probe_interval: u64,
    consecutive_failures: AtomicU32,
    open: AtomicBool,
    blocked: AtomicU64,
}

impl CircuitBreaker {
    fn new(threshold: u32, probe_interval: u64) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            probe_interval: probe_interval.max(1),
            consecutive_failures: AtomicU32::new(0),
            open: AtomicBool::new(false),
            blocked: AtomicU64::new(0),
        }
    }

    /// True while the breaker is open (backend presumed down).
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Relaxed)
    }

    /// Whether a new call may proceed. While open, every
    /// `probe_interval`-th blocked call passes through as a probe.
    fn try_pass(&self) -> bool {
        if !self.is_open() {
            return true;
        }
        let n = self.blocked.fetch_add(1, Ordering::Relaxed);
        n % self.probe_interval == self.probe_interval - 1
    }

    fn on_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if self.open.swap(false, Ordering::Relaxed) {
            OBS_BREAKER_CLOSES.incr();
        }
    }

    /// Records a call failure; returns true when this failure tripped the
    /// breaker open.
    fn on_failure(&self) -> bool {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        failures >= self.threshold && !self.open.swap(true, Ordering::Relaxed)
    }
}

/// Executes calls under a [`RetryPolicy`] with seeded backoff and a shared
/// [`CircuitBreaker`], accounting everything into a [`FaultReport`].
#[derive(Debug)]
pub struct RetryEngine {
    policy: RetryPolicy,
    seed: u64,
    breaker: CircuitBreaker,
}

impl RetryEngine {
    /// Creates an engine; `seed` keys the jitter streams.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        let breaker = CircuitBreaker::new(policy.breaker_threshold, policy.breaker_probe_interval);
        RetryEngine { policy, seed, breaker }
    }

    /// The engine's policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The shared breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The seeded, jittered wait before retry number `attempt` (1-based) of
    /// the call identified by `call_key`. Pure function of its arguments
    /// plus the engine seed.
    pub fn backoff_ms(&self, call_key: u64, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(20);
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << doublings)
            .min(self.policy.max_backoff_ms);
        if self.policy.jitter <= 0.0 || exp == 0 {
            return exp;
        }
        let mut rng = StdRng::seed_from_u64(derive_seed_path(
            self.seed,
            &[JITTER_LANE, call_key, u64::from(attempt)],
        ));
        let factor = 1.0 - self.policy.jitter.min(1.0) * rng.random::<f64>();
        ((exp as f64) * factor).round() as u64
    }

    /// Runs `f` (which receives the attempt index) until it succeeds, the
    /// retry/deadline budget runs out, or it reports an unretryable error.
    /// All accounting lands in `report`.
    pub fn call<T>(
        &self,
        call_key: u64,
        report: &mut FaultReport,
        mut f: impl FnMut(u64) -> Result<T, ChatError>,
    ) -> Result<T, ChatError> {
        report.calls += 1;
        OBS_CALLS.incr();
        if !self.breaker.try_pass() {
            report.breaker_fast_fails += 1;
            report.failed += 1;
            OBS_FAST_FAILS.incr();
            OBS_FAILED.incr();
            return Err(ChatError::Unavailable);
        }
        let mut elapsed = 0u64;
        let mut attempt: u32 = 0;
        let err = loop {
            report.attempts += 1;
            OBS_ATTEMPTS.incr();
            match f(u64::from(attempt)) {
                Ok(value) => {
                    report.succeeded += 1;
                    report.simulated_ms += elapsed + self.policy.attempt_cost_ms;
                    OBS_SUCCEEDED.incr();
                    OBS_CALL_SIM_MS.record(elapsed + self.policy.attempt_cost_ms);
                    self.breaker.on_success();
                    return Ok(value);
                }
                Err(e) => {
                    match e {
                        ChatError::Transient => {
                            report.transient += 1;
                            elapsed += self.policy.attempt_cost_ms;
                        }
                        ChatError::Timeout { elapsed_ms } => {
                            report.timeouts += 1;
                            elapsed += elapsed_ms;
                        }
                        ChatError::RateLimited { .. } => {
                            report.rate_limited += 1;
                            elapsed += self.policy.attempt_cost_ms;
                        }
                        ChatError::Garbled => {
                            report.garbled += 1;
                            elapsed += self.policy.attempt_cost_ms;
                        }
                        ChatError::Unavailable => {
                            // Unretryable by contract: the backend said so.
                            report.unavailable += 1;
                            break e;
                        }
                    }
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        break e;
                    }
                    let mut wait = self.backoff_ms(call_key, attempt);
                    if let ChatError::RateLimited { retry_after_ms } = e {
                        wait = wait.max(retry_after_ms);
                    }
                    elapsed += wait;
                    report.backoff_ms += wait;
                    OBS_BACKOFF_MS.add(wait);
                    if elapsed > self.policy.deadline_ms {
                        report.deadline_exceeded += 1;
                        OBS_DEADLINE.incr();
                        break ChatError::Timeout { elapsed_ms: elapsed };
                    }
                    report.retries += 1;
                    OBS_RETRIES.incr();
                }
            }
        };
        report.failed += 1;
        report.simulated_ms += elapsed;
        OBS_FAILED.incr();
        OBS_CALL_SIM_MS.record(elapsed);
        if self.breaker.on_failure() {
            report.breaker_trips += 1;
            OBS_BREAKER_TRIPS.incr();
        }
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> RetryEngine {
        RetryEngine::new(RetryPolicy::default(), 42)
    }

    #[test]
    fn first_try_success_costs_one_attempt() {
        let e = engine();
        let mut r = FaultReport::default();
        let out = e.call(1, &mut r, |_| Ok::<_, ChatError>(7));
        assert_eq!(out, Ok(7));
        assert_eq!((r.calls, r.attempts, r.succeeded, r.retries), (1, 1, 1, 0));
        assert!(r.is_clean());
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let e = engine();
        let mut r = FaultReport::default();
        let out =
            e.call(
                2,
                &mut r,
                |attempt| {
                    if attempt < 3 {
                        Err(ChatError::Transient)
                    } else {
                        Ok(attempt)
                    }
                },
            );
        assert_eq!(out, Ok(3));
        assert_eq!((r.attempts, r.retries, r.transient, r.succeeded), (4, 3, 3, 1));
        assert!(r.backoff_ms > 0, "retries must consume simulated backoff");
        assert_eq!(r.failed, 0);
    }

    #[test]
    fn unavailable_is_never_retried() {
        let e = engine();
        let mut r = FaultReport::default();
        let out: Result<(), _> = e.call(3, &mut r, |_| Err(ChatError::Unavailable));
        assert_eq!(out, Err(ChatError::Unavailable));
        assert_eq!((r.attempts, r.retries, r.failed), (1, 0, 1));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let e = engine();
        let mut r = FaultReport::default();
        let out: Result<(), _> = e.call(4, &mut r, |_| Err(ChatError::Transient));
        assert_eq!(out, Err(ChatError::Transient));
        assert_eq!(r.attempts, u64::from(e.policy().max_attempts));
        assert_eq!(r.failed, 1);
    }

    #[test]
    fn deadline_abandons_slow_calls() {
        let policy = RetryPolicy { deadline_ms: 100, ..RetryPolicy::default() };
        let e = RetryEngine::new(policy, 5);
        let mut r = FaultReport::default();
        let out: Result<(), _> = e.call(5, &mut r, |_| Err(ChatError::Timeout { elapsed_ms: 80 }));
        assert!(matches!(out, Err(ChatError::Timeout { .. })));
        assert_eq!(r.deadline_exceeded, 1);
        assert!(r.attempts < u64::from(e.policy().max_attempts));
    }

    #[test]
    fn rate_limit_waits_at_least_retry_after() {
        let e = RetryEngine::new(RetryPolicy { jitter: 0.0, ..RetryPolicy::default() }, 6);
        let mut r = FaultReport::default();
        let _ = e.call(6, &mut r, |attempt| {
            if attempt == 0 {
                Err(ChatError::RateLimited { retry_after_ms: 5_000 })
            } else {
                Ok(())
            }
        });
        assert!(r.backoff_ms >= 5_000, "backoff {} must honour Retry-After", r.backoff_ms);
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let a = engine();
        let b = engine();
        for attempt in 1..8 {
            assert_eq!(a.backoff_ms(9, attempt), b.backoff_ms(9, attempt));
        }
        let early = a.backoff_ms(9, 1);
        let late = a.backoff_ms(9, 6);
        assert!(late > early, "backoff must grow: {early} → {late}");
        assert!(late <= a.policy().max_backoff_ms);
    }

    #[test]
    fn breaker_trips_then_probes_then_recovers() {
        let policy = RetryPolicy {
            breaker_threshold: 2,
            breaker_probe_interval: 3,
            ..RetryPolicy::default()
        };
        let e = RetryEngine::new(policy, 7);
        let mut r = FaultReport::default();
        // Two outright failures trip the breaker.
        for _ in 0..2 {
            let _: Result<(), _> = e.call(1, &mut r, |_| Err(ChatError::Unavailable));
        }
        assert!(e.breaker().is_open());
        assert_eq!(r.breaker_trips, 1);
        // While open, most calls fast-fail without an attempt...
        let before = r.attempts;
        let _: Result<(), _> = e.call(2, &mut r, |_| Ok(()));
        let _: Result<(), _> = e.call(3, &mut r, |_| Ok(()));
        assert_eq!(r.attempts, before, "fast-fails must not reach the backend");
        assert_eq!(r.breaker_fast_fails, 2);
        // ...until the probe slot comes around; a successful probe closes it.
        let ok = e.call(4, &mut r, |_| Ok::<_, ChatError>(1));
        assert_eq!(ok, Ok(1));
        assert!(!e.breaker().is_open());
    }
}

//! Fault-tolerant runtime for the PAS pipeline.
//!
//! Every LLM boundary in the workspace (teacher, critic, serve-time `M_p`)
//! is, in production, a network call that can fail. This crate makes the
//! pipeline survive that without giving up the workspace's determinism
//! contract:
//!
//! - [`profile`] — seeded [`FaultProfile`] schedules: which `(stream,
//!   call, attempt)` coordinates fault, and how, as a pure function of a
//!   base seed (the same derived-stream discipline as `pas_par`).
//! - [`inject`] — [`FaultInjector`] / [`FaultyModel`]: wrap any
//!   [`pas_llm::ChatModel`] so its attempts fail exactly on schedule. Call
//!   identity is content-derived (input-text hash), never a counter, so
//!   the schedule is independent of thread interleaving.
//! - [`retry`] — [`RetryEngine`]: retries with seeded exponential backoff
//!   and jitter, per-call simulated-time deadline budgets, and a
//!   [`CircuitBreaker`]; all accounting lands in a [`FaultReport`].
//! - [`resilient`] — [`Resilient<M>`]: the retrying wrapper, exposing the
//!   fallible [`pas_llm::TryChatModel`] boundary.
//! - [`journal`] — [`Journal`]: a crash-tolerant JSONL checkpoint log so a
//!   killed generation or SFT run resumes bit-identically.
//! - [`disk`] — [`DiskFaults`]: seeded crash-point injection at the
//!   persistence layer's durability boundaries (short writes, flush
//!   failures, clean crashes) for `pas-store` recovery sweeps.
//! - [`net`] — [`NetFaults`]: a seeded simulated network for
//!   `pas-cluster` — per-link latency + jitter, drops, duplicates, and
//!   declarative partition windows, all pure functions of
//!   `(seed, src, dst, msg)`.
//! - [`report`] — [`FaultReport`]: merge-able counters (associative, with
//!   `Default` as identity) for ordered reduction after parallel regions.
//!
//! The headline property, pinned by `tests/chaos.rs` at the workspace
//! root: under any fault schedule in which every call eventually succeeds,
//! pipeline output is **bit-identical** to the fault-free run at any
//! thread count; under a permanent serve-time outage the system degrades
//! to passthrough prompts (the plug-and-play guarantee) instead of
//! erroring.

pub mod disk;
pub mod inject;
pub mod journal;
pub mod net;
pub mod profile;
pub mod report;
pub mod resilient;
pub mod retry;

pub use disk::{DiskFault, DiskFaultKind, DiskFaults};
pub use inject::{streams, AttemptChat, FaultInjector, FaultyModel};
pub use journal::Journal;
pub use net::{LaneFaults, MsgLane, NetFaultProfile, NetFaults, NetPartition};
pub use profile::{FaultKind, FaultProfile};
pub use report::FaultReport;
pub use resilient::Resilient;
pub use retry::{CircuitBreaker, RetryEngine, RetryPolicy};

/// Everything a pipeline stage needs to stand up its fault-tolerance
/// layer: which faults to inject (none, in production), under which seed,
/// and how hard to retry.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The fault schedule to inject (default: [`FaultProfile::none`]).
    pub profile: FaultProfile,
    /// Base seed for the fault schedule and backoff jitter streams.
    pub seed: u64,
    /// Retry/backoff/deadline/breaker parameters.
    pub policy: RetryPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { profile: FaultProfile::none(), seed: 0xfa17, policy: RetryPolicy::default() }
    }
}

impl FaultConfig {
    /// A config injecting the named profile (see [`FaultProfile::named`]).
    pub fn named(profile: &str) -> Option<FaultConfig> {
        Some(FaultConfig { profile: FaultProfile::named(profile)?, ..FaultConfig::default() })
    }

    /// True when this config can never inject a fault.
    pub fn is_clean(&self) -> bool {
        self.profile.is_clean()
    }

    /// The injector this config describes.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.profile.clone(), self.seed)
    }

    /// A fresh retry engine under this config's policy and seed.
    pub fn engine(&self) -> RetryEngine {
        RetryEngine::new(self.policy.clone(), self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_clean() {
        let c = FaultConfig::default();
        assert!(c.is_clean());
        assert!(c.injector().is_clean());
    }

    #[test]
    fn named_configs_resolve() {
        assert!(FaultConfig::named("chaos").is_some_and(|c| !c.is_clean()));
        assert!(FaultConfig::named("none").is_some_and(|c| c.is_clean()));
        assert!(FaultConfig::named("bogus").is_none());
    }
}

//! `Resilient<M>` — the retrying wrapper around a fallible chat boundary.

use parking_lot::Mutex;

use pas_llm::{ChatError, TryChatModel};
use pas_text::fx_hash_str;

use crate::inject::AttemptChat;
use crate::report::FaultReport;
use crate::retry::RetryEngine;

/// A fallible chat boundary with retries, seeded backoff, deadline budgets,
/// and a circuit breaker in front of it. `try_chat` either returns the
/// inner model's answer — bit-identical to what a fault-free call would
/// have produced — or a final [`ChatError`] after the budget is spent.
///
/// Accounting accumulates in an internal [`FaultReport`]. Every counter is
/// an order-independent sum, so the aggregate is deterministic wherever the
/// set of calls is (which, with content-keyed call identity, it is).
pub struct Resilient<M: AttemptChat> {
    inner: M,
    engine: RetryEngine,
    report: Mutex<FaultReport>,
}

impl<M: AttemptChat> Resilient<M> {
    /// Wraps `inner` behind `engine`.
    pub fn new(inner: M, engine: RetryEngine) -> Self {
        Resilient { inner, engine, report: Mutex::new(FaultReport::default()) }
    }

    /// The wrapped boundary.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The retry engine (policy + breaker).
    pub fn engine(&self) -> &RetryEngine {
        &self.engine
    }

    /// A snapshot of the accumulated accounting.
    pub fn report(&self) -> FaultReport {
        self.report.lock().clone()
    }
}

impl<M: AttemptChat> TryChatModel for Resilient<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn try_chat(&self, input: &str) -> Result<String, ChatError> {
        let call_key = fx_hash_str(input);
        let mut local = FaultReport::default();
        let out = self
            .engine
            .call(call_key, &mut local, |attempt| self.inner.chat_attempt(input, attempt));
        self.report.lock().merge(&local);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{streams, FaultInjector, FaultyModel};
    use crate::profile::FaultProfile;
    use crate::retry::RetryPolicy;
    use pas_llm::ChatModel;

    struct Upper;

    impl ChatModel for Upper {
        fn name(&self) -> &str {
            "upper"
        }
        fn chat(&self, input: &str) -> String {
            input.to_uppercase()
        }
    }

    fn resilient(profile: FaultProfile, seed: u64) -> Resilient<FaultyModel<Upper>> {
        let model = FaultyModel::new(Upper, FaultInjector::new(profile, seed), streams::MAIN);
        Resilient::new(model, RetryEngine::new(RetryPolicy::default(), seed))
    }

    #[test]
    fn chaos_answers_match_the_fault_free_model() {
        let clean = resilient(FaultProfile::none(), 11);
        let chaotic = resilient(FaultProfile::chaos(), 11);
        for i in 0..60 {
            let input = format!("prompt number {i}");
            assert_eq!(chaotic.try_chat(&input), clean.try_chat(&input));
        }
        let r = chaotic.report();
        assert_eq!(r.failed, 0, "eventual-success schedule must never fail a call");
        assert!(r.total_faults() > 0, "chaos must actually have injected faults");
        assert!(r.retries > 0);
        assert!(clean.report().is_clean());
    }

    #[test]
    fn outage_fails_with_unavailable() {
        let down = resilient(FaultProfile::outage(), 12);
        assert_eq!(down.try_chat("anything"), Err(ChatError::Unavailable));
        let r = down.report();
        assert_eq!(r.failed, 1);
        assert_eq!(r.retries, 0, "unavailable is unretryable");
    }

    #[test]
    fn report_accumulates_across_calls() {
        let m = resilient(FaultProfile::none(), 13);
        for i in 0..5 {
            let _ = m.try_chat(&format!("p{i}"));
        }
        let r = m.report();
        assert_eq!((r.calls, r.succeeded), (5, 5));
        assert_eq!(TryChatModel::name(&m), "upper");
    }
}

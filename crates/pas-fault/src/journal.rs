//! Append-only checkpoint journal for long pipeline runs.
//!
//! A [`Journal`] is a JSONL file: a header line binding the journal to a
//! configuration fingerprint, then one line per committed work item keyed
//! by a caller-chosen string (`"pair:17"`, `"sft:3"`). Workers commit
//! finished items as they complete; a killed run reopens the journal and
//! recomputes **only** the missing keys. Because every item's result is a
//! pure function of the configuration (that's the pipeline determinism
//! contract), resumed output is bit-identical to an uninterrupted run.
//!
//! Crash tolerance: a process killed mid-write leaves at most one torn
//! final line. On open, complete entries are kept, the torn tail is
//! dropped, and the file is rewritten clean before appending resumes. A
//! fingerprint mismatch (journal from a different configuration) is an
//! error — resuming someone else's checkpoints would silently corrupt the
//! run.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct HeaderLine {
    journal: String,
    fingerprint: u64,
}

#[derive(Serialize, Deserialize)]
struct EntryLine {
    key: String,
    payload: String,
}

struct JournalState {
    entries: HashMap<String, String>,
    writer: BufWriter<File>,
}

/// A keyed, crash-tolerant checkpoint journal (see module docs).
pub struct Journal {
    path: PathBuf,
    fingerprint: u64,
    preloaded: usize,
    state: Mutex<JournalState>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("fingerprint", &self.fingerprint)
            .field("preloaded", &self.preloaded)
            .field("len", &self.len())
            .finish()
    }
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a run whose
    /// configuration hashes to `fingerprint`.
    pub fn open(path: impl AsRef<Path>, fingerprint: u64) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            let mut lines = text.lines().filter(|l| !l.trim().is_empty()).peekable();
            let header: HeaderLine = match lines.next() {
                None => HeaderLine { journal: "pas".into(), fingerprint },
                Some(first) => serde_json::from_str(first).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad journal header: {e}"))
                })?,
            };
            if header.fingerprint != fingerprint {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "journal {} was written by a different configuration \
                         (fingerprint {:#x}, expected {:#x})",
                        path.display(),
                        header.fingerprint,
                        fingerprint
                    ),
                ));
            }
            while let Some(line) = lines.next() {
                match serde_json::from_str::<EntryLine>(line) {
                    Ok(entry) => {
                        entries.insert(entry.key, entry.payload);
                    }
                    // A torn final line is the expected signature of a kill
                    // mid-commit; anywhere else it is corruption.
                    Err(e) if lines.peek().is_none() => {
                        let _ = e;
                        break;
                    }
                    Err(e) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("corrupt journal entry in {}: {e}", path.display()),
                        ));
                    }
                }
            }
        }
        // Rewrite clean (atomically via temp + rename) so a dropped torn
        // tail can never prefix-corrupt the next appended line.
        let tmp = path.with_extension("journal.tmp");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let header = HeaderLine { journal: "pas".into(), fingerprint };
            writeln!(out, "{}", serde_json::to_string(&header).expect("header serializes"))?;
            let mut sorted: Vec<(&String, &String)> = entries.iter().collect();
            sorted.sort();
            for (key, payload) in sorted {
                let line = EntryLine { key: key.clone(), payload: payload.clone() };
                writeln!(out, "{}", serde_json::to_string(&line).expect("entry serializes"))?;
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        let writer = BufWriter::new(OpenOptions::new().append(true).open(&path)?);
        let preloaded = entries.len();
        Ok(Journal {
            path,
            fingerprint,
            preloaded,
            state: Mutex::new(JournalState { entries, writer }),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configuration fingerprint this journal is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of committed entries found on open — how much work the
    /// resumed run gets to skip.
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// Total committed entries (preloaded + committed this run).
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The committed payload for `key`, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.state.lock().entries.get(key).cloned()
    }

    /// Commits `payload` under `key`, flushed to disk before returning so a
    /// kill after this call can never lose the entry. First commit wins;
    /// re-commits of an existing key are ignored.
    pub fn commit(&self, key: &str, payload: &str) -> io::Result<()> {
        let mut state = self.state.lock();
        if state.entries.contains_key(key) {
            return Ok(());
        }
        let line = EntryLine { key: key.to_string(), payload: payload.to_string() };
        writeln!(state.writer, "{}", serde_json::to_string(&line).expect("entry serializes"))?;
        state.writer.flush()?;
        state.entries.insert(key.to_string(), payload.to_string());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pas-fault-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn commits_survive_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path, 0xabc).unwrap();
            assert_eq!(j.preloaded(), 0);
            j.commit("pair:0", "zero").unwrap();
            j.commit("pair:1", "one").unwrap();
        }
        let j = Journal::open(&path, 0xabc).unwrap();
        assert_eq!(j.preloaded(), 2);
        assert_eq!(j.get("pair:0").as_deref(), Some("zero"));
        assert_eq!(j.get("pair:1").as_deref(), Some("one"));
        assert_eq!(j.get("pair:2"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn first_commit_wins() {
        let path = tmp("first-wins");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path, 1).unwrap();
        j.commit("k", "original").unwrap();
        j.commit("k", "overwrite attempt").unwrap();
        assert_eq!(j.get("k").as_deref(), Some("original"));
        assert_eq!(j.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path, 7).unwrap();
            j.commit("a", "1").unwrap();
            j.commit("b", "2").unwrap();
        }
        // Simulate a kill mid-write: append half a JSON line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"c\",\"pay");
        std::fs::write(&path, text).unwrap();
        let j = Journal::open(&path, 7).unwrap();
        assert_eq!(j.preloaded(), 2);
        assert_eq!(j.get("c"), None);
        // And the file is clean again: committing after the torn tail works.
        j.commit("c", "3").unwrap();
        drop(j);
        let j = Journal::open(&path, 7).unwrap();
        assert_eq!(j.preloaded(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_in_the_middle_is_an_error() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path, 7).unwrap();
            j.commit("a", "1").unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n");
        text.push_str("{\"key\":\"b\",\"payload\":\"2\"}\n");
        std::fs::write(&path, text).unwrap();
        let err = Journal::open(&path, 7).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = tmp("fingerprint");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path, 100).unwrap();
            j.commit("a", "1").unwrap();
        }
        let err = Journal::open(&path, 200).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different configuration"));
        std::fs::remove_file(&path).unwrap();
    }
}

//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API:
//! `lock()`, `read()`, and `write()` return guards directly instead of
//! `Result`s. A poisoned std lock means a panic already happened under the
//! lock; propagating that panic (via `expect`) matches `parking_lot`'s
//! behavior closely enough for this workspace.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock that hands out guards without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned by a panicking holder")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned by a panicking holder")
    }
}

/// A reader-writer lock that hands out guards without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned by a panicking holder")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned by a panicking holder")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned by a panicking holder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses: a seedable
//! [`StdRng`] (xoshiro256++ with splitmix64 seeding), the [`RngExt`]
//! extension trait (`random`, `random_range`, `random_bool`), and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic per seed and
//! has no platform- or thread-dependent state, which is exactly the
//! contract the deterministic parallel runtime (`pas-par`) relies on.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed. Identical seeds yield identical
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256++.
///
/// Small, fast, passes BigCrush, and — unlike the upstream `StdRng` — its
/// output sequence is stable forever, so seeds embedded in tests and
/// experiment configs keep their meaning across toolchain updates.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through splitmix64, per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl StdRng {
    /// The full generator state, for checkpointing. Restoring it with
    /// [`StdRng::from_state`] continues the exact output sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`StdRng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from an RNG via [`RngExt::random`].
pub trait Random {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for f64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`RngExt::random_range`] can sample uniformly over a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from the half-open interval `[lo, hi)`; `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Width computed in wrapping u64 arithmetic so signed
                // ranges work; `lo < hi` keeps it in range.
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Unbiased draw by rejection from the widest multiple of span.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + f32::random(rng) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from. Generic over the
/// output type so the range literal's type is inferred from the call site,
/// matching upstream rand (`let x: u32 = rng.random_range(0..3)`).
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

/// Convenience draws over any [`RngCore`]; mirrors rand 0.9+'s `Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates walk over `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams nearly identical: {same}/64");
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum32 = 0.0f64;
        let mut sum64 = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.random();
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
            sum32 += x as f64;
            sum64 += y;
        }
        assert!((sum32 / n as f64 - 0.5).abs() < 0.02);
        assert!((sum64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[rng.random_range(0..7usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "value {i} drawn {c} times");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.random_range(3..3usize);
    }
}

//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*`, [`ProptestConfig::with_cases`],
//! range and regex-string strategies, `prop::collection::vec`, and
//! `.prop_map`. Cases are generated deterministically from the test name
//! and case index (no persistence files, no shrinking): a failing case
//! reproduces on every run, which for a fixed corpus of tests is the part
//! of proptest that matters.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-test configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one test case: seeded from the test name and the
/// case index, so reruns and `--test-threads` settings never change inputs.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.random_range(lo..hi) }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        self.start + rng.random::<f32>() * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

/// String literals act as regex-subset strategies generating matching
/// strings, e.g. `"[a-z ]{0,80}"` or `"[a-z]{1,10}( [a-z]{1,10}){0,8}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let nodes = regex::parse(self);
        let mut out = String::new();
        regex::render(&nodes, rng, &mut out);
        out
    }
}

mod regex {
    use rand::rngs::StdRng;
    use rand::RngExt;

    pub enum Node {
        Lit(char),
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        /// `.` — any printable character.
        Any,
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    pub fn parse(pattern: &str) -> Vec<Node> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let nodes = parse_seq(pattern, &chars, &mut pos, /*in_group=*/ false);
        assert!(pos == chars.len(), "proptest stub: trailing junk in regex {pattern:?}");
        nodes
    }

    fn parse_seq(pattern: &str, chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.get(*pos) {
            let atom = match c {
                ')' if in_group => break,
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(pattern, chars, pos, true);
                    assert!(
                        chars.get(*pos) == Some(&')'),
                        "proptest stub: unclosed group in {pattern:?}"
                    );
                    *pos += 1;
                    Node::Group(inner)
                }
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(pattern, chars, pos))
                }
                '.' => {
                    *pos += 1;
                    Node::Any
                }
                '\\' => {
                    *pos += 1;
                    let escaped = *chars
                        .get(*pos)
                        .unwrap_or_else(|| panic!("proptest stub: dangling \\ in {pattern:?}"));
                    *pos += 1;
                    Node::Lit(escaped)
                }
                '|' | '^' | '$' => {
                    panic!("proptest stub: unsupported regex feature {c:?} in {pattern:?}")
                }
                other => {
                    *pos += 1;
                    Node::Lit(other)
                }
            };
            nodes.push(apply_quantifier(pattern, chars, pos, atom));
        }
        nodes
    }

    fn parse_class(pattern: &str, chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        assert!(
            chars.get(*pos) != Some(&'^'),
            "proptest stub: negated classes unsupported in {pattern:?}"
        );
        while let Some(&c) = chars.get(*pos) {
            match c {
                ']' => {
                    *pos += 1;
                    assert!(!ranges.is_empty(), "proptest stub: empty class in {pattern:?}");
                    return ranges;
                }
                lo => {
                    *pos += 1;
                    if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                        let hi = chars[*pos + 1];
                        assert!(lo <= hi, "proptest stub: bad range {lo}-{hi} in {pattern:?}");
                        ranges.push((lo, hi));
                        *pos += 2;
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        panic!("proptest stub: unclosed class in {pattern:?}");
    }

    fn apply_quantifier(pattern: &str, chars: &[char], pos: &mut usize, atom: Node) -> Node {
        match chars.get(*pos) {
            Some('{') => {
                *pos += 1;
                let min = parse_number(pattern, chars, pos);
                let max = match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                        parse_number(pattern, chars, pos)
                    }
                    _ => min,
                };
                assert!(
                    chars.get(*pos) == Some(&'}'),
                    "proptest stub: unclosed quantifier in {pattern:?}"
                );
                *pos += 1;
                assert!(min <= max, "proptest stub: bad quantifier in {pattern:?}");
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('?') => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, 8)
            }
            _ => atom,
        }
    }

    fn parse_number(pattern: &str, chars: &[char], pos: &mut usize) -> u32 {
        let start = *pos;
        while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        assert!(*pos > start, "proptest stub: expected number in {pattern:?}");
        chars[start..*pos].iter().collect::<String>().parse().expect("digits")
    }

    /// Occasional non-ASCII output for `.`, to exercise unicode handling.
    const WIDE_POOL: &[char] = &['é', 'ß', 'λ', 'Ж', '雪', '界', '—', '🙂'];

    pub fn render(nodes: &[Node], rng: &mut StdRng, out: &mut String) {
        for node in nodes {
            match node {
                Node::Lit(c) => out.push(*c),
                Node::Class(ranges) => {
                    let total: u32 =
                        ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                    let mut pick = rng.random_range(0..total);
                    for (lo, hi) in ranges {
                        let width = *hi as u32 - *lo as u32 + 1;
                        if pick < width {
                            out.push(char::from_u32(*lo as u32 + pick).expect("class char"));
                            break;
                        }
                        pick -= width;
                    }
                }
                Node::Any => {
                    if rng.random_range(0..10u32) == 0 {
                        out.push(WIDE_POOL[rng.random_range(0..WIDE_POOL.len())]);
                    } else {
                        out.push(char::from_u32(rng.random_range(0x20..0x7fu32)).expect("ascii"));
                    }
                }
                Node::Group(inner) => render(inner, rng, out),
                Node::Repeat(inner, min, max) => {
                    let n = if min == max { *min } else { rng.random_range(*min..*max + 1) };
                    for _ in 0..n {
                        render(std::slice::from_ref(inner), rng, out);
                    }
                }
            }
        }
    }
}

/// Collection strategies, reachable as `prop::collection::*`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max + 1)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works as upstream.
pub mod prop {
    pub use super::collection;
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition; failures abort the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn word() -> impl Strategy<Value = String> {
        "[a-z]{1,5}"
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn regex_class_and_quantifier(s in "[a-c ]{2,6}") {
            prop_assert!((2..=6).contains(&s.chars().count()), "{s:?}");
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }

        #[test]
        fn groups_repeat_whole_units(s in "[ab]{1,3}( [ab]{1,3}){0,2}") {
            prop_assert!(!s.is_empty());
            for part in s.split(' ') {
                prop_assert!((1..=3).contains(&part.len()), "{s:?}");
            }
        }

        #[test]
        fn vec_sizes_and_ranges_hold(
            v in prop::collection::vec(0u64..50, 4..9),
            exact in prop::collection::vec(-1.0f32..1.0, 6),
            w in prop::collection::vec(word(), 2..4).prop_map(|ws| ws.join("-")),
        ) {
            prop_assert!((4..=8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 50));
            prop_assert_eq!(exact.len(), 6);
            prop_assert!(exact.iter().all(|&x| (-1.0..1.0).contains(&x)));
            prop_assert!(w.contains('-'));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a = <&str as Strategy>::generate(&".{0,40}", &mut super::test_rng("t", 3));
        let b = <&str as Strategy>::generate(&".{0,40}", &mut super::test_rng("t", 3));
        assert_eq!(a, b);
    }
}

//! Offline vendored stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable offline, so this crate walks the raw
//! `proc_macro::TokenStream` directly and emits impl source as a string.
//! It supports exactly the shapes the workspace derives on:
//!
//! - structs with named fields (`#[serde(skip)]`, `#[serde(rename = "...")]`)
//! - tuple structs (arity 1 serializes transparently, arity ≥ 2 as an array)
//! - enums of unit variants (serialized as the variant-name string)
//!
//! Generics and data-carrying enum variants are rejected with a panic at
//! compile time rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives `serde::Serialize` (the vendored Value-based trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, Mode::Ser).parse().expect("serde_derive emitted invalid Rust")
}

/// Derives `serde::Deserialize` (the vendored Value-based trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, Mode::De).parse().expect("serde_derive emitted invalid Rust")
}

#[derive(Clone, Copy)]
enum Mode {
    Ser,
    De,
}

struct Field {
    /// Field identifier (named structs only).
    name: String,
    /// Serialized key: the rename when given, else the identifier.
    key: String,
    /// `#[serde(skip)]`: omit when serializing, `Default::default()` back.
    skip: bool,
}

enum Item {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    Enum { name: String, variants: Vec<String> },
}

/// Serde options collected from one `#[serde(...)]` attribute list.
#[derive(Default)]
struct SerdeOpts {
    skip: bool,
    rename: Option<String>,
}

/// Consumes leading `#[...]` attributes, folding any `#[serde(...)]`
/// options together; leaves `iter` at the first non-attribute token.
fn take_attrs(tokens: &[TokenTree], idx: &mut usize) -> SerdeOpts {
    let mut opts = SerdeOpts::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*idx) {
        if p.as_char() != '#' {
            break;
        }
        *idx += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*idx) else {
            panic!("serde_derive: `#` not followed by an attribute group");
        };
        *idx += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(args.stream(), &mut opts);
            }
        }
    }
    opts
}

/// Parses the inside of `#[serde( ... )]`: `skip` and `rename = "..."`.
fn parse_serde_args(stream: TokenStream, opts: &mut SerdeOpts) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(ident) => match ident.to_string().as_str() {
                "skip" => {
                    opts.skip = true;
                    i += 1;
                }
                "rename" => {
                    let lit = match (tokens.get(i + 1), tokens.get(i + 2)) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            lit.to_string()
                        }
                        _ => panic!("serde_derive: rename expects `rename = \"...\"`"),
                    };
                    opts.rename = Some(unquote(&lit));
                    i += 3;
                }
                other => panic!("serde_derive: unsupported serde option `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive: unexpected token in serde attribute: {other}"),
        }
    }
}

/// Strips the quotes from a string literal's token text.
fn unquote(lit: &str) -> String {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive: expected string literal, got {lit}"));
    assert!(!inner.contains('\\'), "serde_derive: escapes in rename are unsupported");
    inner.to_string()
}

/// Skips `pub` / `pub(...)` if present.
fn skip_visibility(tokens: &[TokenTree], idx: &mut usize) {
    if matches!(tokens.get(*idx), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *idx += 1;
        if matches!(
            tokens.get(*idx),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *idx += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;

    // Item-level attributes (doc comments etc.) and visibility.
    take_attrs(&tokens, &mut idx);
    skip_visibility(&tokens, &mut idx);

    let kind = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    idx += 1;

    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    idx += 1;

    if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving {name})");
    }

    match (kind.as_str(), tokens.get(idx)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Named { name, fields: parse_named_fields(g.stream()) }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::Tuple { name, arity: tuple_arity(g.stream()) }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = parse_unit_variants(&name, g.stream());
            Item::Enum { name, variants }
        }
        _ => panic!("serde_derive: unsupported item shape for {name}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut idx = 0;
    let mut fields = Vec::new();
    while idx < tokens.len() {
        let opts = take_attrs(&tokens, &mut idx);
        if idx >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut idx);
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        idx += 1;
        assert!(
            matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field {name}"
        );
        idx += 1;
        // Skip the type: everything up to a comma outside angle brackets.
        // Parens/brackets arrive as atomic groups, so only `<>` needs depth.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(idx) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        idx += 1;
                        break;
                    }
                    _ => {}
                }
            }
            idx += 1;
        }
        let key = opts.rename.clone().unwrap_or_else(|| name.clone());
        fields.push(Field { name, key, skip: opts.skip });
    }
    fields
}

/// Counts tuple-struct fields: top-level commas + 1 (ignoring a trailing
/// comma), with angle-bracket depth tracking as above.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    assert!(!tokens.is_empty(), "serde_derive: empty tuple structs are unsupported");
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for (i, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 && i + 1 < tokens.len() => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut idx = 0;
    let mut variants = Vec::new();
    while idx < tokens.len() {
        take_attrs(&tokens, &mut idx);
        if idx >= tokens.len() {
            break;
        }
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name in {enum_name}, got {other:?}"),
        };
        idx += 1;
        match tokens.get(idx) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => idx += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next top-level comma.
                idx += 1;
                while let Some(tok) = tokens.get(idx) {
                    idx += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive: data-carrying variant {enum_name}::{name} is not supported")
            }
            Some(other) => panic!("serde_derive: unexpected token after variant: {other}"),
        }
        variants.push(name);
    }
    variants
}

fn render(item: &Item, mode: Mode) -> String {
    let mut out = String::new();
    match (item, mode) {
        (Item::Named { name, fields }, Mode::Ser) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let _ = writeln!(
                    pushes,
                    "entries.push(({key:?}.to_string(), \
                     serde::Serialize::to_value(&self.{field})));",
                    key = f.key,
                    field = f.name
                );
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut entries: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Map(entries)\n\
                 }}\n}}\n"
            );
        }
        (Item::Named { name, fields }, Mode::De) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    let _ = writeln!(inits, "{field}: Default::default(),", field = f.name);
                } else {
                    let _ = writeln!(
                        inits,
                        "{field}: serde::Deserialize::from_value(\
                         serde::field(entries, {key:?}))\
                         .map_err(|e| e.context(\"{name}.{field}\"))?,",
                        key = f.key,
                        field = f.name
                    );
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let entries = v.as_map()\
                 .ok_or_else(|| serde::Error::new(\"expected map for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            );
        }
        (Item::Tuple { name, arity: 1 }, Mode::Ser) => {
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Serialize::to_value(&self.0)\n\
                 }}\n}}\n"
            );
        }
        (Item::Tuple { name, arity: 1 }, Mode::De) => {
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 Ok({name}(serde::Deserialize::from_value(v)\
                 .map_err(|e| e.context(\"{name}\"))?))\n\
                 }}\n}}\n"
            );
        }
        (Item::Tuple { name, arity }, Mode::Ser) => {
            let elems: Vec<String> =
                (0..*arity).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Array(vec![{}])\n\
                 }}\n}}\n",
                elems.join(", ")
            );
        }
        (Item::Tuple { name, arity }, Mode::De) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(&items[{i}])\
                         .map_err(|e| e.context(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let items = v.as_array()\
                 .ok_or_else(|| serde::Error::new(\"expected array for {name}\"))?;\n\
                 if items.len() != {arity} {{\n\
                 return Err(serde::Error::new(format!(\
                 \"expected {arity} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))\n\
                 }}\n}}\n",
                elems.join(", ")
            );
        }
        (Item::Enum { name, variants }, Mode::Ser) => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{name}::{v} => {v:?}")).collect();
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Str(String::from(match self {{ {} }}))\n\
                 }}\n}}\n",
                arms.join(", ")
            );
        }
        (Item::Enum { name, variants }, Mode::De) => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("Some({v:?}) => Ok({name}::{v}),")).collect();
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match v.as_str() {{\n\
                 {}\n\
                 Some(other) => Err(serde::Error::new(\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 None => Err(serde::Error::new(\"expected string for enum {name}\")),\n\
                 }}\n\
                 }}\n}}\n",
                arms.join("\n")
            );
        }
    }
    out
}

//! Offline vendored stand-in for the `serde` crate.
//!
//! Real serde is a zero-copy visitor framework; this stand-in goes through
//! an owned [`Value`] tree instead, which is dramatically simpler and fast
//! enough for the snapshot/JSONL paths this workspace serializes. The
//! public surface mirrors what the workspace uses: `Serialize` /
//! `Deserialize` derives (from the companion `serde_derive` crate) with
//! `#[serde(skip)]` and `#[serde(rename = "...")]`, plus impls for the
//! primitive, container, and map types that appear in derived structs.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: everything a derived type can become.
///
/// Maps keep insertion order so serialized output is deterministic — a
/// requirement for the workspace's bit-identical snapshot tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values).
    I64(i64),
    /// Unsigned integer (all non-negative integers normalize here).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key-value map in insertion order.
    Map(Vec<(String, Value)>),
}

/// A shared null, for representing absent struct fields by reference.
pub const NULL: Value = Value::Null;

impl Value {
    /// Returns the map entries when this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements when this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string when this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a field by key in map entries, yielding [`NULL`] when absent so
/// `Option` fields deserialize to `None` and required fields report a type
/// error naming the missing field.
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// Prefixes the message with a location, e.g. a struct field path.
    pub fn context(self, at: &str) -> Error {
        Error(format!("{at}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {}", got.kind())))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return type_error("unsigned integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => {
                        i64::try_from(*n).map_err(|_| Error(format!("{n} overflows i64")))?
                    }
                    other => return type_error("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => type_error("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 is exact, so the round trip through JSON is lossless.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items.try_into().map_err(|_| Error(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return type_error("array (tuple)", other),
                };
                let arity = [$($i),+].len();
                if items.len() != arity {
                    return Err(Error(format!(
                        "expected tuple of {arity}, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys, which serialize as strings (the JSON object-key rule).
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error(format!("bad {} map key: {s:?}", stringify!($t))))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by rendered key: HashMap iteration order is nondeterministic,
        // and serialized output must be bit-identical across runs.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = match v {
            Value::Map(entries) => entries,
            other => return type_error("map", other),
        };
        entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // BTreeMap iterates in key order, but rendered keys may sort
        // differently than the native ordering (e.g. integer keys render
        // as strings), so re-sort by rendered key like HashMap does.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = match v {
            Value::Map(entries) => entries,
            other => return type_error("map", other),
        };
        entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("a"), String::from("b"))];
        assert_eq!(Vec::<(String, String)>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
        let arr = [1usize, 2, 3];
        assert_eq!(<[usize; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn hashmap_u64_keys_round_trip_in_sorted_order() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        m.insert(10, 1);
        m.insert(2, 2);
        let v = m.to_value();
        let keys: Vec<&str> = v.as_map().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["10", "2"]);
        assert_eq!(HashMap::<u64, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn btreemap_round_trips_sorted_by_rendered_key() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<u64, String> = BTreeMap::new();
        m.insert(10, "ten".into());
        m.insert(2, "two".into());
        let v = m.to_value();
        let keys: Vec<&str> = v.as_map().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["10", "2"], "rendered-key order, same as HashMap");
        assert_eq!(BTreeMap::<u64, String>::from_value(&v).unwrap(), m);
        let mut s: BTreeMap<String, u64> = BTreeMap::new();
        s.insert("b".into(), 1);
        s.insert("a".into(), 2);
        assert_eq!(BTreeMap::<String, u64>::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn missing_required_field_errors() {
        let v = Value::Map(vec![]);
        assert!(u32::from_value(field(v.as_map().unwrap(), "absent")).is_err());
        assert_eq!(Option::<u32>::from_value(field(v.as_map().unwrap(), "absent")).unwrap(), None);
    }
}

//! Offline vendored stand-in for the `serde_json` crate.
//!
//! JSON text over the vendored `serde::Value` data model: `to_string`,
//! `to_writer`, and `from_str`, plus the `Error` type callers surface.
//! Output is deterministic (struct fields in declaration order, map keys
//! sorted by the serde layer), which the workspace's bit-identical
//! snapshot and determinism tests rely on.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes()).map_err(|e| Error::new(format!("io error: {e}")))
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest round-trippable decimal.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect the low half next.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xd800) << 10)
                                    + lo.checked_sub(0xdc00)
                                        .ok_or_else(|| Error::new("bad low surrogate"))?;
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("bad \\u escape"))?);
                            // parse_hex4 advanced past the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. Validate only this scalar's
                    // bytes — validating the whole remaining input per char
                    // would make string parsing quadratic (journal resume
                    // reads multi-hundred-KB checkpoint payloads).
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let scalar = self
                        .bytes
                        .get(self.pos..self.pos + width)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| Error::new("invalid utf-8 in string"))?;
                    let c = scalar.chars().next().expect("non-empty by width");
                    out.push(c);
                    self.pos += width;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| Error::new("bad \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        let x = 0.1f32;
        assert_eq!(from_str::<f32>(&to_string(&x).unwrap()).unwrap(), x);
        let y = 1.5e-7f64;
        assert_eq!(from_str::<f64>(&to_string(&y).unwrap()).unwrap(), y);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a \"b\"\n\tc \\ d é 雪";
        assert_eq!(from_str::<String>(&to_string(s).unwrap()).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé😀""#).unwrap(), "Aé😀");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(String, u32)> = vec![("a".into(), 1), ("b".into(), 2)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",1],["b",2]]"#);
        assert_eq!(from_str::<Vec<(String, u32)>>(&json).unwrap(), v);

        let mut m: HashMap<u64, u64> = HashMap::new();
        m.insert(3, 9);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"3":9}"#);
        assert_eq!(from_str::<HashMap<u64, u64>>(&json).unwrap(), m);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u32>("[1] junk").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}

//! Offline vendored stand-in for the `criterion` crate.
//!
//! A wall-clock benchmark harness exposing the API surface the workspace's
//! benches use: [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, [`BenchmarkId`], and the
//! `criterion_group!`/`criterion_main!` macros. No statistical analysis or
//! HTML reports — each bench prints its median per-iteration time, and
//! [`Criterion::results`] exposes the numbers so callers can emit
//! machine-readable summaries.

use std::fmt;
use std::time::Instant;

/// Identifier for a parameterized benchmark, e.g. `from_parameter(64)`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the bench parameter alone.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full bench name (`group/function` for grouped benches).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
}

/// Measures one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples for the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and calibration: aim for ≥ ~20ms of work per sample so
        // short bodies aren't lost in timer noise.
        let start = Instant::now();
        std::hint::black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let iters = ((20_000_000.0 / once_ns) as u64).clamp(1, 100_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        if s.is_empty() {
            0.0
        } else {
            s[s.len() / 2]
        }
    }
}

/// The benchmark harness.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// All measurements recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, sample_size: usize, mut f: F) {
        let mut bencher = Bencher { sample_size, samples_ns: Vec::new() };
        f(&mut bencher);
        let median_ns = bencher.median_ns();
        println!("{name:<50} time: [{}]", format_ns(median_ns));
        self.results.push(BenchResult { name, median_ns });
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each bench records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput (printed alongside the time).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(name, self.sample_size, f);
        self.report_throughput();
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(name, self.sample_size, |b| f(b, input));
        self.report_throughput();
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}

    fn report_throughput(&self) {
        let Some(t) = self.throughput else { return };
        let Some(last) = self.criterion.results.last() else { return };
        if last.median_ns <= 0.0 {
            return;
        }
        let per_sec = |n: u64| n as f64 / (last.median_ns / 1e9);
        match t {
            Throughput::Bytes(n) => {
                println!("{:<50} thrpt: [{:.1} MiB/s]", "", per_sec(n) / (1024.0 * 1024.0));
            }
            Throughput::Elements(n) => {
                println!("{:<50} thrpt: [{:.1} elem/s]", "", per_sec(n));
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles bench functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given groups, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.throughput(Throughput::Elements(10));
            g.bench_function("a", |b| b.iter(|| std::hint::black_box(2 * 2)));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
                b.iter(|| std::hint::black_box(n * n))
            });
            g.finish();
        }
        let names: Vec<&str> = c.results().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["grp/a", "grp/7"]);
    }
}
